// evc_fuzz: fault-schedule consistency fuzzer for the simulation testbed.
//
// Runs N seeds of randomized nemesis schedules (partitions, crashes, message
// loss/duplication) against each selected store and checks the properties
// its consistency level claims (see verify/fuzz.h for the claims table).
//
// Usage:
//   evc_fuzz                          # default sweep: all stores, 25 seeds
//   evc_fuzz --seeds=200              # wider sweep
//   evc_fuzz --store=quorum-weak      # one store only
//   evc_fuzz --store=paxos --seed=42  # replay one seed (bit-identical)
//   evc_fuzz --amnesia                # crashes drop volatile state (WAL
//                                     # recovery on restart)
//   evc_fuzz --profile=crash-heavy    # schedule biased toward crash/restart
//                                     # churn (no loss/duplication ramps)
//   evc_fuzz --profile=gray-heavy     # gray failures: slow/flaky links and
//                                     # slow nodes mixed with crashes, no
//                                     # clean partitions
//   evc_fuzz --profile=edge-cache     # crash + gray interleavings tuned for
//                                     # the lease protocol (amnesia forced
//                                     # on: lease tables must be volatile)
//   evc_fuzz --store=quorum-elastic --profile=elastic
//                                     # membership churn: live add/remove +
//                                     # rolling restarts + gray degradation,
//                                     # no partitions or hard crashes
//   evc_fuzz --verbose                # per-seed summaries, not just failures
//
// Exit code: 0 when every store met its claims on every seed, 1 otherwise.
// A failing run prints the exact --store/--seed pair to reproduce it.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "verify/fuzz.h"

namespace {

struct CliOptions {
  uint64_t first_seed = 1;
  int seeds = 25;
  std::optional<evc::verify::FuzzStore> store;
  std::optional<uint64_t> single_seed;
  bool verbose = false;
  bool amnesia = false;
  // "" (default), "crash-heavy", "gray-heavy", "edge-cache", or "elastic"
  std::string profile;
};

/// Overlays a named schedule profile onto per-store default options.
/// "crash-heavy": faults arrive faster, are all partitions/crashes (no
/// loss/duplication ramps), so every store sees several amnesia
/// crash/recovery cycles per seed.
/// "gray-heavy": no clean partitions or loss ramps — slow links, flaky
/// links, and slow nodes (the failures the CanCommunicate oracle cannot
/// see) mixed with crashes, arriving fast.
/// "edge-cache": the lease protocol's two hard edges at once — crash
/// amnesia (volatile lease tables, recovery fences) and gray degradation
/// (an unreachable lease holder must be waited out, never served around).
/// Forces --amnesia: a durable lease table would make the fence dead code.
/// "overload": flash crowds and hot-key-shifting load spikes against the
/// quorum stores with the overload defenses armed — shedding is legal,
/// corrupting state or failing to converge afterward is not.
bool ApplyProfile(const std::string& profile,
                  evc::verify::FuzzOptions* options) {
  if (profile.empty()) return true;
  if (profile == "crash-heavy") {
    options->nemesis.allow_loss = false;
    options->nemesis.allow_duplication = false;
    options->nemesis.mean_fault_interval = evc::sim::kSecond;
    return true;
  }
  if (profile == "gray-heavy") {
    options->nemesis.allow_partitions = false;
    options->nemesis.allow_loss = false;
    options->nemesis.allow_duplication = false;
    options->nemesis.allow_slow_links = true;
    options->nemesis.allow_flaky_links = true;
    options->nemesis.allow_slow_nodes = true;
    options->nemesis.mean_fault_interval = evc::sim::kSecond;
    return true;
  }
  if (profile == "edge-cache") {
    options->amnesia = true;
    options->nemesis.allow_partitions = false;
    options->nemesis.allow_loss = false;
    options->nemesis.allow_duplication = false;
    options->nemesis.allow_slow_links = true;
    options->nemesis.allow_flaky_links = true;
    options->nemesis.allow_slow_nodes = true;
    options->nemesis.mean_fault_interval = evc::sim::kSecond;
    return true;
  }
  if (profile == "overload") {
    // Load is the fault under test: flash crowds and hot-key-shifting load
    // spikes drive offered load past capacity while the quorum stores run
    // with the overload defenses armed (admission control, retry budgets,
    // AIMD limits). Clean partitions/crashes/loss off so every shed or
    // failed op traces back to overload, never to an unreachable replica.
    // Shedding and failing fast are legal; corrupting state or failing to
    // converge after the load recedes is not.
    options->overload = true;
    options->nemesis.allow_load_spikes = true;
    options->nemesis.allow_partitions = false;
    options->nemesis.allow_crashes = false;
    options->nemesis.allow_loss = false;
    options->nemesis.allow_duplication = false;
    options->nemesis.mean_fault_interval = 2 * evc::sim::kSecond;
    return true;
  }
  if (profile == "elastic") {
    // Reconfiguration is the fault under test: live joins/removals and
    // rolling restarts over gray-degraded links, with clean partitions,
    // hard crashes, and loss ramps off so every anomaly traces back to a
    // membership boundary. Stores without a membership actuator log the
    // add/remove draws as skipped — pair with --store=quorum-elastic.
    options->nemesis.allow_partitions = false;
    options->nemesis.allow_crashes = false;
    options->nemesis.allow_loss = false;
    options->nemesis.allow_duplication = false;
    options->nemesis.allow_slow_links = true;
    options->nemesis.allow_flaky_links = true;
    options->nemesis.allow_slow_nodes = true;
    options->nemesis.allow_membership = true;
    options->nemesis.allow_rolling_restart = true;
    options->nemesis.mean_fault_interval = 2 * evc::sim::kSecond;
    return true;
  }
  return false;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds=N] [--first-seed=S] [--store=NAME] "
               "[--seed=S] [--amnesia] "
               "[--profile=crash-heavy|gray-heavy|edge-cache|elastic|"
               "overload] "
               "[--verbose]\n"
               "  stores:",
               argv0);
  for (evc::verify::FuzzStore s : evc::verify::AllFuzzStores()) {
    std::fprintf(stderr, " %s", evc::verify::ToString(s));
  }
  std::fprintf(stderr, "\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--seeds=")) {
      cli->seeds = std::atoi(v);
      if (cli->seeds <= 0) return false;
    } else if (const char* v = value_of("--first-seed=")) {
      cli->first_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--seed=")) {
      cli->single_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--store=")) {
      evc::verify::FuzzStore store;
      if (!evc::verify::ParseFuzzStore(v, &store)) {
        std::fprintf(stderr, "unknown store '%s'\n", v);
        return false;
      }
      cli->store = store;
    } else if (const char* v = value_of("--profile=")) {
      cli->profile = v;
    } else if (arg == "--amnesia") {
      cli->amnesia = true;
    } else if (arg == "--verbose" || arg == "-v") {
      cli->verbose = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    Usage(argv[0]);
    return 2;
  }

  std::vector<evc::verify::FuzzStore> stores =
      cli.store ? std::vector<evc::verify::FuzzStore>{*cli.store}
                : evc::verify::AllFuzzStores();

  int failures = 0;
  uint64_t anomalies_recorded = 0;
  for (evc::verify::FuzzStore store : stores) {
    for (int i = 0; i < cli.seeds; ++i) {
      const uint64_t seed =
          cli.single_seed ? *cli.single_seed
                          : cli.first_seed + static_cast<uint64_t>(i);
      evc::verify::FuzzOptions options =
          evc::verify::DefaultFuzzOptions(store, seed);
      options.amnesia = cli.amnesia;
      if (!ApplyProfile(cli.profile, &options)) {
        std::fprintf(stderr, "unknown profile '%s'\n", cli.profile.c_str());
        return 2;
      }
      const evc::verify::FuzzReport report = evc::verify::RunFuzzSeed(options);
      if (report.AnomalyDetected()) ++anomalies_recorded;
      std::string why;
      if (!report.MeetsClaims(&why)) {
        ++failures;
        std::printf("FAIL %s\n     %s\n     replay: %s --store=%s --seed=%llu\n",
                    why.c_str(), report.Summary().c_str(), argv[0],
                    evc::verify::ToString(store),
                    static_cast<unsigned long long>(seed));
      } else if (cli.verbose) {
        std::printf("ok   %s\n", report.Summary().c_str());
      }
      if (cli.single_seed) break;  // one seed per store in replay mode
    }
  }

  const int runs = static_cast<int>(stores.size()) *
                   (cli.single_seed ? 1 : cli.seeds);
  std::printf("%d run(s), %d claim failure(s), %llu run(s) with recorded "
              "anomalies (expected for weak stores)\n",
              runs, failures,
              static_cast<unsigned long long>(anomalies_recorded));
  return failures == 0 ? 0 : 1;
}
