// Fig. 10 — Edge cache: hit ratio vs client population, staleness vs TTL.
//
// Claim (tutorial §"rethinking" + Gray & Cheriton): a lease-based cache
// tier in front of the timeline store converts read flash crowds into
// local serves — hit ratio RISES with the client population, because a
// fixed set of edge nodes multiplexes the crowd and each invalidation's
// compulsory re-fetch is amortized over ever more reads — while the
// guarantee side never degrades: observed hit age stays bounded by the
// lease TTL, and no hit ever serves a version behind the master (the
// revoke-on-write gate makes that impossible, and this bench measures it
// with the omniscient VisibleSeqno oracle rather than trusting the proof).
//
// Setup: 3 timeline servers, 4 edge-cache nodes, one writer updating a
// hot key every ~200 ms. The population is N end-user request streams
// (80 % hot key / 20 % cold pool, ~30 ms think time) round-robined over
// the edges, for 10 s of virtual time. Grid: population {4, 16, 64} x
// lease TTL {50, 250, 1000} ms. Because the lease holders are the edges,
// not the users, write-side cost (revoke fan-out, gate latency) stays
// flat as the crowd grows — that is the point of a cache TIER over
// per-user leases.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/edge_cache.h"
#include "common/rng.h"
#include "common/stats.h"
#include "harness.h"
#include "replication/timeline_store.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr sim::Time kRunFor = 10 * kSecond;
constexpr int kEdges = 4;
constexpr int kColdKeys = 8;

struct CellResult {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bypasses = 0;
  uint64_t writes = 0;
  uint64_t revokes = 0;
  uint64_t version_stale_hits = 0;  ///< hits behind the master's seqno
  double hit_ratio = 0;
  double mean_read_ms = 0;
  double mean_write_ms = 0;
  double max_hit_age_ms = 0;
};

CellResult RunCell(int users, sim::Time ttl, uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 12 * kMillisecond));
  sim::Rpc rpc(&net);
  repl::TimelineOptions topt;
  topt.replication_factor = 3;
  // A gated write can legally wait out a full lease TTL; the write RPC
  // budget has to cover the largest TTL in the sweep.
  topt.rpc_timeout = 3 * kSecond;
  repl::TimelineCluster cluster(&rpc, topt);
  cluster.AddServers(3);
  cache::EdgeCacheOptions copt;
  copt.lease_ttl = ttl;
  cache::EdgeCacheTier tier(&rpc, &cluster, copt);

  std::vector<cache::EdgeCacheClient*> edges;
  for (int e = 0; e < kEdges; ++e) edges.push_back(tier.AddClient(net.AddNode()));

  const std::string hot = "hot";
  std::vector<std::string> cold;
  for (int i = 0; i < kColdKeys; ++i) cold.push_back("cold" + std::to_string(i));

  bool running = true;
  Rng root(seed ^ 0xf160caceULL);
  OnlineStats read_lat, write_lat;
  CellResult result;
  double max_hit_age = 0;

  // One Rng per user stream; user i sends through edge i % kEdges.
  std::vector<Rng> streams;
  streams.reserve(static_cast<size_t>(users));
  for (int i = 0; i < users; ++i) streams.push_back(root.Fork(static_cast<uint64_t>(i)));
  std::function<void(int)> read_loop = [&](int i) {
    if (!running) return;
    Rng& rng = streams[static_cast<size_t>(i)];
    const std::string key =
        rng.NextBool(0.8) ? hot : cold[rng.NextBounded(kColdKeys)];
    const sim::Time start = sim.Now();
    cache::EdgeCacheClient* edge = edges[static_cast<size_t>(i % kEdges)];
    edge->Get(key, 0, [&, i, key, start](Result<cache::CachedRead> r) {
      if (r.ok()) {
        read_lat.Add(static_cast<double>(sim.Now() - start));
        if (r->from_cache) {
          const double age = static_cast<double>(sim.Now() - r->fetched_at);
          max_hit_age = std::max(max_hit_age, age);
          // Omniscient staleness oracle: a hit is version-stale iff the
          // master has applied a seqno beyond the one served. The lease
          // protocol promises this never happens.
          if (cluster.VisibleSeqno(cluster.MasterOf(key), key) > r->seqno) {
            ++result.version_stale_hits;
          }
        }
      }
      sim.ScheduleAfter(
          static_cast<sim::Time>(streams[static_cast<size_t>(i)].NextExponential(
              30.0 * kMillisecond)) +
              1,
          [&, i] { read_loop(i); });
    });
  };
  for (int i = 0; i < users; ++i) {
    sim.ScheduleAfter(
        static_cast<sim::Time>(
            streams[static_cast<size_t>(i)].NextExponential(30.0 *
                                                            kMillisecond)) +
            1,
        [&, i] { read_loop(i); });
  }

  const sim::NodeId writer = net.AddNode();
  Rng wrng = root.Fork(0xfeedULL);
  int wn = 0;
  std::function<void()> write_loop = [&] {
    if (!running) return;
    const sim::Time start = sim.Now();
    const std::string value = "w" + std::to_string(wn++);
    // evc-lint: allow(discarded-status) reason=void callback API; name collides with Status Write() elsewhere
    cluster.Write(writer, hot, value, [&, start](Result<uint64_t> r) {
      if (r.ok()) {
        ++result.writes;
        write_lat.Add(static_cast<double>(sim.Now() - start));
      }
      sim.ScheduleAfter(
          static_cast<sim::Time>(wrng.NextExponential(200.0 * kMillisecond)) +
              1,
          [&] { write_loop(); });
    });
  };
  sim.ScheduleAfter(100 * kMillisecond, [&] { write_loop(); });

  sim.RunFor(kRunFor);
  running = false;
  sim.RunFor(5 * kSecond);  // drain in-flight ops and gated writes

  result.hits = tier.stats().hits;
  result.misses = tier.stats().misses;
  result.bypasses = tier.stats().bypasses;
  result.revokes = tier.stats().revokes_sent;
  const uint64_t lookups = result.hits + result.misses + result.bypasses;
  result.hit_ratio =
      lookups == 0 ? 0.0
                   : static_cast<double>(result.hits) /
                         static_cast<double>(lookups);
  result.mean_read_ms = read_lat.mean() / kMillisecond;
  result.mean_write_ms = write_lat.mean() / kMillisecond;
  result.max_hit_age_ms = max_hit_age / kMillisecond;
  return result;
}

}  // namespace

int main() {
  bench::Harness harness("fig10_edge_cache");
  harness.Table("grid", {"clients", "ttl_ms", "hit_ratio", "mean_read_ms",
                         "mean_write_ms", "revokes_per_write",
                         "max_hit_age_ms", "version_stale_hits"});
  std::printf(
      "=== Fig. 10: lease-based edge cache over the timeline store ===\n"
      "3 servers; %d edge nodes; hot-key writer every ~200ms; N user\n"
      "streams 80%% hot / 20%% cold; 10s virtual time per cell\n\n",
      kEdges);
  std::printf("%-9s %-8s %-10s %-9s %-9s %-9s %-12s %-6s\n", "clients",
              "ttl_ms", "hit_ratio", "read_ms", "write_ms", "rev/w",
              "max_age_ms", "stale");
  std::printf("--------------------------------------------------------------"
              "-----------\n");

  const int populations[] = {4, 16, 64};
  const sim::Time ttls[] = {50 * kMillisecond, 250 * kMillisecond,
                            1000 * kMillisecond};
  uint64_t stale_total = 0;
  double worst_age_over_ttl = 0;
  for (const sim::Time ttl : ttls) {
    for (const int clients : populations) {
      const uint64_t seed =
          1000 + static_cast<uint64_t>(clients) +
          static_cast<uint64_t>(ttl / kMillisecond) * 1000;
      const CellResult r = RunCell(clients, ttl, seed);
      const double ttl_ms = static_cast<double>(ttl) / kMillisecond;
      const double rev_per_write =
          r.writes == 0 ? 0.0
                        : static_cast<double>(r.revokes) /
                              static_cast<double>(r.writes);
      stale_total += r.version_stale_hits;
      worst_age_over_ttl =
          std::max(worst_age_over_ttl, r.max_hit_age_ms / ttl_ms);
      std::printf("%-9d %-8.0f %-10.3f %-9.2f %-9.2f %-9.2f %-12.1f %-6llu\n",
                  clients, ttl_ms, r.hit_ratio, r.mean_read_ms,
                  r.mean_write_ms, rev_per_write, r.max_hit_age_ms,
                  static_cast<unsigned long long>(r.version_stale_hits));
      harness.Row("grid",
                  {obs::Json(clients), obs::Json(ttl_ms),
                   obs::Json(r.hit_ratio), obs::Json(r.mean_read_ms),
                   obs::Json(r.mean_write_ms), obs::Json(rev_per_write),
                   obs::Json(r.max_hit_age_ms),
                   obs::Json(r.version_stale_hits)});
      if (ttl == 250 * kMillisecond) {
        harness.Metric("hit_ratio_c" + std::to_string(clients), r.hit_ratio);
      }
    }
  }
  // Guarantee-side headline numbers, gated in CI: a hit's age never exceeds
  // its lease TTL, and no hit is ever behind the master.
  harness.Metric("version_stale_hits_total",
                 static_cast<double>(stale_total));
  harness.Metric("worst_hit_age_over_ttl", worst_age_over_ttl);
  harness.Note("expectation",
               "hit_ratio rises with clients; max_hit_age_ms <= ttl_ms; "
               "version_stale_hits identically zero");
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: hit ratio rises with the client population (a\n"
      "larger crowd amortizes each invalidation's re-fetch over more\n"
      "reads at the edge) and with TTL; max hit age stays below the lease\n"
      "TTL and version-stale hits are identically zero — the cache never\n"
      "outlives the value it caches. Write latency stays flat as the\n"
      "crowd grows because leases are held per edge node, not per user.\n");
  return stale_total == 0 ? 0 : 1;
}
