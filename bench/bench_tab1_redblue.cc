// Table 1 — RedBlue consistency: cost as a function of the red fraction.
//
// Claim (tutorial, after Li et al.): the more operations can be labelled
// blue (commutative, invariant-safe), the closer the system runs to local
// latency; every red operation pays a WAN round trip to the serialization
// point. Mean latency and (closed-loop) throughput degrade smoothly as the
// red fraction rises from 0% to 100%.
//
// Setup: 3 sites on the WAN matrix, sequencer at site 0, one closed-loop
// client per site issuing 100 banking ops with the given red fraction
// (red = invariant-checked withdraw; blue = deposit).

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "harness.h"
#include "txn/redblue.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct MixResult {
  double mean_ms = 0;
  double p99_ms = 0;
  double ops_per_sec = 0;
  uint64_t aborts = 0;
};

MixResult RunMix(double red_fraction, uint64_t seed) {
  sim::Simulator sim(seed);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs());
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  txn::RedBlueBank bank(&rpc, 3);
  std::vector<sim::NodeId> clients;
  for (int i = 0; i < 3; ++i) {
    wan->AssignNode(bank.site_node(i), i);
    clients.push_back(net.AddNode());
    wan->AssignNode(clients.back(), i);
  }

  // Seed generous funds so red withdrawals rarely abort on balance.
  bool seeded = false;
  bank.Deposit(clients[0], 0, "acct", 1000000,
               [&](Result<int64_t> r) { seeded = r.ok(); });
  sim.RunFor(2 * kSecond);
  EVC_CHECK(seeded);
  sim.RunFor(2 * kSecond);

  Rng rng(seed * 31 + 7);
  Histogram latency_hist;
  const sim::Time bench_start = sim.Now();
  const int ops_per_client = 100;
  // Closed loop per client, interleaved round-robin.
  for (int i = 0; i < ops_per_client; ++i) {
    for (int site = 0; site < 3; ++site) {
      const sim::Time start = sim.Now();
      sim::Time done = -1;
      auto cb = [&](Result<int64_t>) { done = sim.Now(); };
      if (rng.NextBool(red_fraction)) {
        bank.WithdrawRed(clients[site], site, "acct", 1, cb);
      } else {
        bank.Deposit(clients[site], site, "acct", 1, cb);
      }
      // Closed loop: step the simulation only until this op completes, so
      // elapsed virtual time equals the op's true latency.
      while (done < 0 && sim.Step()) {
      }
      EVC_CHECK(done >= 0);
      latency_hist.Add(static_cast<double>(done - start));
    }
  }
  const double elapsed_s =
      static_cast<double>(sim.Now() - bench_start) / kSecond;

  MixResult result;
  result.mean_ms = latency_hist.mean() / kMillisecond;
  result.p99_ms = latency_hist.Percentile(0.99) / kMillisecond;
  result.ops_per_sec = (3.0 * ops_per_client) / elapsed_s;
  result.aborts = bank.stats().red_aborts;
  return result;
}

}  // namespace

int main() {
  bench::Harness harness("tab1_redblue");
  harness.Table("mixes", {"red_fraction", "mean_ms", "p99_ms", "ops_per_sec",
                          "aborts"});
  std::printf(
      "=== Table 1: RedBlue bank, latency/throughput vs red fraction ===\n"
      "(3 WAN sites, sequencer at US-East, closed-loop clients)\n\n");
  std::printf("%-12s %-12s %-12s %-14s %-8s\n", "red %", "mean ms", "p99 ms",
              "ops/s (virt)", "aborts");
  std::printf("----------------------------------------------------------\n");
  for (double red : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    const MixResult r = RunMix(red, 11 + static_cast<uint64_t>(red * 100));
    std::printf("%-12.0f %-12.2f %-12.2f %-14.1f %llu\n", red * 100,
                r.mean_ms, r.p99_ms, r.ops_per_sec,
                static_cast<unsigned long long>(r.aborts));
    harness.Row("mixes",
                {obs::Json(red), obs::Json(r.mean_ms), obs::Json(r.p99_ms),
                 obs::Json(r.ops_per_sec), obs::Json(r.aborts)});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: at 0%% red every op is local (sub-ms mean, high\n"
      "throughput); mean latency climbs roughly linearly with the red\n"
      "fraction toward the WAN round-trip at 100%% red; throughput falls\n"
      "correspondingly (closed loop). The invariant holds at every mix.\n");
  return 0;
}
