// Fig. 7 — CAP during a partition: the AP store serves (stale), the CP
// store refuses (unavailable), and both recover after healing.
//
// Claim (tutorial, after Brewer/Gilbert-Lynch): during a partition a system
// chooses between availability and consistency. We cut one datacenter off
// for 10 virtual seconds while a client on the minority side issues a
// read+write per 200 ms, then heal:
//   * eventual (Dynamo R=W=1, sloppy): 100% of minority ops succeed, reads
//     can be stale, replicas re-converge after healing (hints/anti-entropy);
//   * strong (Multi-Paxos): minority ops fail for the duration, zero stale
//     reads ever, minority catches up after healing.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "consensus/paxos.h"
#include "harness.h"
#include "obs/export.h"
#include "replication/anti_entropy.h"
#include "replication/quorum_store.h"
#include "sim/nemesis.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct PartitionResult {
  int ops_attempted = 0;
  int ops_succeeded = 0;
  int stale_reads = 0;
  double heal_to_converged_ms = -1;
};

PartitionResult RunEventual(uint64_t seed, bench::Harness* out) {
  sim::Simulator sim(seed);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs());
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  repl::QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = 1;
  config.write_quorum = 1;
  config.sloppy = true;
  repl::DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(3);
  std::vector<ReplicaStorage*> storages;
  for (int i = 0; i < 3; ++i) {
    wan->AssignNode(servers[i], i);
    storages.push_back(cluster.storage(servers[i]));
  }
  repl::AntiEntropyOptions ae_options;
  ae_options.interval = 200 * kMillisecond;
  repl::AntiEntropy ae(&net, servers, storages, ae_options);
  ae.Start();
  cluster.StartHintDelivery(200 * kMillisecond);

  const sim::NodeId majority_client = net.AddNode();
  wan->AssignNode(majority_client, 0);
  const sim::NodeId minority_client = net.AddNode();
  wan->AssignNode(minority_client, 2);

  // Seed a key everyone knows.
  bool seeded = false;
  cluster.Put(majority_client, servers[0], "status", "all-good", {},
              [&](Result<Version> r) { seeded = r.ok(); });
  sim.RunFor(2 * kSecond);
  EVC_CHECK(seeded);
  sim.RunFor(2 * kSecond);  // replicate everywhere

  // Partition DC2 (with its client) away for 10 s, declaratively.
  sim::Nemesis nemesis(&net, servers, seed);
  sim::FaultPlan plan;
  plan.PartitionAt(0, {{servers[0], servers[1], majority_client},
                       {servers[2], minority_client}})
      .HealAt(10 * kSecond);
  nemesis.Execute(plan);

  PartitionResult result;
  int op_counter = 0;
  const sim::Time partition_end = sim.Now() + 10 * kSecond;
  std::string last_majority_value = "all-good";
  while (sim.Now() < partition_end) {
    // Majority side keeps updating the key.
    ++op_counter;
    last_majority_value = "update" + std::to_string(op_counter);
    cluster.Put(majority_client, servers[0], "status", last_majority_value,
                {}, [](Result<Version>) {});
    // Minority client writes its own key and reads the shared one.
    ++result.ops_attempted;
    cluster.Put(minority_client, servers[2],
                "minority" + std::to_string(op_counter), "x", {},
                [&](Result<Version> r) {
                  if (r.ok()) ++result.ops_succeeded;
                });
    ++result.ops_attempted;
    const std::string expect = last_majority_value;
    cluster.Get(minority_client, servers[2], "status",
                [&](Result<repl::ReadResult> r) {
                  if (!r.ok()) return;
                  ++result.ops_succeeded;
                  bool current = false;
                  for (const auto& v : r->versions) {
                    current |= v.value == expect;
                  }
                  if (!current) ++result.stale_reads;
                });
    sim.RunFor(200 * kMillisecond);
  }

  // The plan's heal has fired; measure time to convergence of the key.
  const sim::Time heal_at = sim.Now();
  while (sim.Now() < heal_at + 30 * kSecond) {
    sim.RunFor(50 * kMillisecond);
    if (ae.Converged()) break;
  }
  result.heal_to_converged_ms =
      ae.Converged()
          ? static_cast<double>(sim.Now() - heal_at) / kMillisecond
          : -1;

  // Ship the eventual run's obs state with the bench JSON: the sim-wide
  // metrics registries under "sim", plus headline counters as metrics.
  out->AttachSim(sim);
  obs::MetricsRegistry& g = sim.metrics().global();
  out->Metric("eventual_rpc_calls",
              static_cast<double>(g.CounterFor("rpc.calls").value()));
  out->Metric("eventual_rpc_timeouts",
              static_cast<double>(g.CounterFor("rpc.timeouts").value()));
  out->Metric("eventual_net_delivered",
              static_cast<double>(g.CounterFor("net.delivered").value()));
  if (const char* dir = std::getenv("EVC_TRACE_OUT");
      dir != nullptr && dir[0] != '\0') {
    const std::string path = std::string(dir) + "/TRACE_fig7_eventual.json";
    EVC_CHECK_OK(obs::WriteFile(
        path, obs::TraceToJson(sim.tracer()).Dump(2) + "\n"));
    std::fprintf(stderr, "bench harness: wrote %s\n", path.c_str());
  }
  return result;
}

PartitionResult RunStrong(uint64_t seed) {
  sim::Simulator sim(seed);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs());
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  consensus::PaxosCluster cluster(&rpc, consensus::PaxosOptions{});
  auto servers = cluster.AddServers(3);
  for (int i = 0; i < 3; ++i) wan->AssignNode(servers[i], i);
  const sim::NodeId majority_client = net.AddNode();
  wan->AssignNode(majority_client, 0);
  const sim::NodeId minority_client = net.AddNode();
  wan->AssignNode(minority_client, 2);
  consensus::PaxosKvClient majority(&cluster, &sim, majority_client, servers);
  consensus::PaxosKvClient minority(&cluster, &sim, minority_client,
                                    {servers[2]});  // only its local server
  cluster.Start();
  sim.RunFor(3 * kSecond);

  bool seeded = false;
  majority.Put("status", "all-good", [&](Result<uint64_t> r) {
    seeded = r.ok();
  });
  sim.RunFor(10 * kSecond);
  EVC_CHECK(seeded);

  // 3 s of re-election slack + 10 s of partitioned operation, then heal.
  sim::Nemesis nemesis(&net, servers, seed);
  sim::FaultPlan plan;
  plan.PartitionAt(0, {{servers[0], servers[1], majority_client},
                       {servers[2], minority_client}})
      .HealAt(13 * kSecond);
  nemesis.Execute(plan);
  sim.RunFor(3 * kSecond);  // give the majority time to (re)elect

  PartitionResult result;
  const sim::Time partition_end = sim.Now() + 10 * kSecond;
  int op_counter = 0;
  while (sim.Now() < partition_end) {
    ++op_counter;
    majority.Put("status", "update" + std::to_string(op_counter),
                 [](Result<uint64_t>) {});
    ++result.ops_attempted;
    minority.Put("minority" + std::to_string(op_counter), "x",
                 [&](Result<uint64_t> r) {
                   if (r.ok()) ++result.ops_succeeded;
                 });
    ++result.ops_attempted;
    minority.Get("status", [&](Result<std::string> r) {
      if (r.ok()) {
        ++result.ops_succeeded;
        // Linearizable reads can never be stale; nothing to count.
      }
    });
    sim.RunFor(200 * kMillisecond);
  }

  // The plan's heal has fired by now.
  const sim::Time heal_at = sim.Now();
  // Convergence: minority replica applies the majority's last chosen slot.
  while (sim.Now() < heal_at + 60 * kSecond) {
    sim.RunFor(100 * kMillisecond);
    const uint64_t a = cluster.AppliedIndex(servers[0]);
    if (a > 0 && cluster.AppliedIndex(servers[2]) >= a) break;
  }
  result.heal_to_converged_ms =
      static_cast<double>(sim.Now() - heal_at) / kMillisecond;
  return result;
}

}  // namespace

int main() {
  bench::Harness harness("fig7_partition_cap");
  harness.Table("partition", {"system", "ops_attempted", "ops_succeeded",
                              "stale_reads", "heal_to_converged_ms"});
  std::printf(
      "=== Fig. 7: 10-second partition, client on the minority side ===\n\n");
  std::printf("%-10s %-12s %-12s %-14s %-18s\n", "system", "attempted",
              "succeeded", "stale reads", "heal->converged");
  std::printf("--------------------------------------------------------------"
              "----\n");
  const PartitionResult ap = RunEventual(5, &harness);
  std::printf("%-10s %-12d %-12d %-14d %12.0f ms\n", "eventual",
              ap.ops_attempted, ap.ops_succeeded, ap.stale_reads,
              ap.heal_to_converged_ms);
  harness.Row("partition",
              {obs::Json("eventual"), obs::Json(ap.ops_attempted),
               obs::Json(ap.ops_succeeded), obs::Json(ap.stale_reads),
               obs::Json(ap.heal_to_converged_ms)});
  const PartitionResult cp = RunStrong(6);
  std::printf("%-10s %-12d %-12d %-14d %12.0f ms\n", "strong",
              cp.ops_attempted, cp.ops_succeeded, cp.stale_reads,
              cp.heal_to_converged_ms);
  harness.Row("partition",
              {obs::Json("strong"), obs::Json(cp.ops_attempted),
               obs::Json(cp.ops_succeeded), obs::Json(cp.stale_reads),
               obs::Json(cp.heal_to_converged_ms)});
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: the eventual store accepts ~100%% of minority-side\n"
      "operations but many of its reads are stale (it cannot see the\n"
      "majority's updates); the strong store rejects essentially all\n"
      "minority-side operations (no quorum) and never serves a stale read.\n"
      "Both converge shortly after the partition heals.\n");
  return 0;
}
