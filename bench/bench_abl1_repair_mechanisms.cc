// Ablation 1 — which repair mechanism does the work?
//
// Dynamo-style stores layer three redundant convergence mechanisms:
// hinted handoff (proactive, write-time), read repair (reactive, on the
// read path), and anti-entropy (background, catches everything else).
// DESIGN.md calls for an ablation: knock each out and measure how a
// replica that missed 50 writes (crashed) regains them.
//
// Metric: after the replica restarts, (a) how long until it converges,
// (b) how many of 100 subsequent R=1 reads would have been stale.

#include <cstdio>
#include <memory>
#include <vector>

#include "harness.h"
#include "replication/anti_entropy.h"
#include "replication/quorum_store.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct AblationResult {
  double converge_ms = -1;  // restart -> all preference lists converged
  int stale_window_reads = 0;
};

AblationResult Run(bool hints, bool read_repair, bool anti_entropy,
                   uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 15 * kMillisecond));
  sim::Rpc rpc(&net);
  repl::QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = 1;
  config.write_quorum = 1;
  config.sloppy = hints;  // sloppy quorums are what generate hints
  config.read_repair = read_repair;
  repl::DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(5);
  const sim::NodeId client = net.AddNode();

  std::vector<ReplicaStorage*> storages;
  for (const auto s : servers) storages.push_back(cluster.storage(s));
  repl::AntiEntropyOptions ae_options;
  ae_options.interval = 250 * kMillisecond;
  repl::AntiEntropy ae(&net, servers, storages, ae_options);
  if (anti_entropy) ae.Start();
  if (hints) cluster.StartHintDelivery(250 * kMillisecond);

  // The victim replica serves key "hot" and crashes before the writes.
  const auto pref = cluster.PreferenceList("hot");
  const sim::NodeId victim = pref[1];
  net.SetNodeUp(victim, false);

  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    // Find a live coordinator.
    sim::NodeId coordinator = pref[0];
    cluster.Put(client, coordinator, "hot", "v" + std::to_string(i), {},
                [&](Result<Version> r) {
                  if (r.ok()) ++completed;
                });
    sim.RunFor(300 * kMillisecond);
  }

  net.SetNodeUp(victim, true);
  const sim::Time restart_at = sim.Now();

  // Issue periodic reads (they drive read repair when enabled) and watch
  // for convergence.
  AblationResult result;
  int reads_done = 0;
  while (sim.Now() < restart_at + 60 * kSecond) {
    if (reads_done < 100) {
      ++reads_done;
      // Ground truth staleness of the victim before this read.
      const bool victim_stale = !cluster.ReplicasConverged("hot");
      if (victim_stale) ++result.stale_window_reads;
      cluster.Get(client, pref[0], "hot", [](Result<repl::ReadResult>) {});
    }
    sim.RunFor(100 * kMillisecond);
    if (cluster.ReplicasConverged("hot")) {
      result.converge_ms =
          static_cast<double>(sim.Now() - restart_at) / kMillisecond;
      break;
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::Harness harness("abl1_repair_mechanisms");
  harness.Table("ablation",
                {"hints", "read_repair", "anti_entropy", "converge_ms",
                 "stale_window_reads"});
  std::printf(
      "=== Ablation 1: repair mechanisms for a replica that missed 50 "
      "writes ===\n\n");
  std::printf("%-10s %-12s %-14s | %-16s %-18s\n", "hints", "read-repair",
              "anti-entropy", "converge (ms)", "stale-window reads");
  std::printf("--------------------------------------------+---------------"
              "---------------------\n");
  struct Config {
    bool hints, repair, ae;
  };
  const Config configs[] = {
      {false, false, false}, {true, false, false}, {false, true, false},
      {false, false, true},  {true, true, true},
  };
  uint64_t seed = 91;
  for (const Config& c : configs) {
    const AblationResult r = Run(c.hints, c.repair, c.ae, seed++);
    char converge[32];
    if (r.converge_ms < 0) {
      std::snprintf(converge, sizeof(converge), "never (>60s)");
    } else {
      std::snprintf(converge, sizeof(converge), "%.0f", r.converge_ms);
    }
    std::printf("%-10s %-12s %-14s | %-16s %-18d\n",
                c.hints ? "on" : "off", c.repair ? "on" : "off",
                c.ae ? "on" : "off", converge, r.stale_window_reads);
    harness.Row("ablation",
                {obs::Json(c.hints), obs::Json(c.repair), obs::Json(c.ae),
                 obs::Json(r.converge_ms),
                 obs::Json(r.stale_window_reads)});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: with everything off the replica never converges\n"
      "(nothing re-sends the missed writes). Hints alone fix it quickly\n"
      "(handoff replays buffered writes on restart). Read repair alone\n"
      "fixes it only when reads happen to touch the stale replica within\n"
      "the first R repliers. Anti-entropy alone fixes it within a few\n"
      "gossip rounds. All three together converge fastest.\n");
  return 0;
}
