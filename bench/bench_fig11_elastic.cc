// Fig. 11 — Elastic reconfiguration: availability through a live join and a
// live departure.
//
// Claim (paper §7 "rethinking" + the membership design in DESIGN.md §4.4):
// a Paxos-backed configuration service lets the quorum store change
// membership WHILE serving traffic — moved ranges stream in the background,
// the epoch commits only after catch-up, and the only client-visible cost
// is the occasional stale-epoch retry when a request races a commit. The
// availability floor gated in CI says exactly that: during the migration
// windows, at least 95 % of attempted operations still succeed.
//
// Setup: 4 strict-quorum servers (N=3 R=2 W=2 over the consistent-hash
// ring), config service on 3 dedicated Paxos nodes, 8 closed-loop client
// sessions (50/50 put/get over 32 keys, ~10 ms think time) for 20 s of
// virtual time. A 5th server live-joins at t=5 s; one founding server is
// live-removed at t=12 s. The per-second table shows the availability dip
// (if any) lining up with the two migration windows.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "consensus/paxos.h"
#include "harness.h"
#include "membership/config_service.h"
#include "replication/anti_entropy.h"
#include "replication/quorum_store.h"
#include "sim/latency.h"
#include "sim/rpc.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr uint64_t kSeed = 1100;
constexpr int kInitialServers = 4;
constexpr int kSessions = 8;
constexpr int kKeyspace = 32;
constexpr sim::Time kRunFor = 20 * kSecond;
constexpr sim::Time kJoinAt = 5 * kSecond;
constexpr sim::Time kLeaveAt = 12 * kSecond;

struct SecondBucket {
  uint64_t ok = 0;
  uint64_t failed = 0;
  bool migrating = false;  ///< any migration in flight during this second
};

}  // namespace

int main() {
  sim::Simulator sim(kSeed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             1 * kMillisecond, 8 * kMillisecond));
  sim::Rpc rpc(&net);

  // Config core on its own nodes: its availability is a design assumption,
  // the data plane is what the experiment measures.
  consensus::PaxosCluster paxos(&rpc, consensus::PaxosOptions{});
  const std::vector<sim::NodeId> paxos_servers = paxos.AddServers(3);
  paxos.Start();
  membership::ConfigService config(&rpc, &paxos, paxos_servers);

  repl::QuorumConfig cfg;
  cfg.replication_factor = 3;
  cfg.read_quorum = 2;
  cfg.write_quorum = 2;
  cfg.sloppy = false;
  cfg.read_repair = true;
  cfg.use_hash_ring = true;
  repl::DynamoCluster cluster(&rpc, cfg);
  const std::vector<sim::NodeId> servers = cluster.AddServers(kInitialServers);
  cluster.StartHintDelivery(500 * kMillisecond);
  cluster.StartFailureDetection();

  std::vector<ReplicaStorage*> storages;
  for (sim::NodeId srv : servers) storages.push_back(cluster.storage(srv));
  repl::AntiEntropyOptions ae_options;
  ae_options.interval = 250 * kMillisecond;
  ae_options.peer_usable = [&cluster](sim::NodeId self, sim::NodeId peer) {
    return cluster.PeerUsable(self, peer);
  };
  repl::AntiEntropy ae(&net, servers, storages, ae_options);
  ae.Start();
  cluster.SetServerCreatedCallback(
      [&](sim::NodeId node, ReplicaStorage* storage) {
        ae.AddMember(node, storage);
      });
  cluster.SetCommitCallback([&](const membership::MembershipView& view) {
    for (sim::NodeId srv : servers) {
      if (!view.Contains(srv)) ae.MarkDeparted(srv);
    }
  });

  sim.RunFor(2 * kSecond);  // config group leader election
  bool bootstrapped = false;
  config.Bootstrap(servers, [&](Status st) {
    EVC_CHECK_OK(st);
    bootstrapped = true;
  });
  while (!bootstrapped) sim.RunFor(100 * kMillisecond);
  cluster.EnableElastic(&config);

  // Workload: closed-loop sessions measuring per-op availability, bucketed
  // by second and by whether a migration was in flight at issue time.
  const sim::Time t0 = sim.Now();
  bool running = true;
  uint64_t steady_attempted = 0, steady_ok = 0;
  uint64_t migr_attempted = 0, migr_ok = 0;
  OnlineStats op_latency;
  std::vector<SecondBucket> per_second(
      static_cast<size_t>(kRunFor / kSecond) + 1);

  auto bucket_at = [&](sim::Time t) -> SecondBucket& {
    const size_t idx = std::min(per_second.size() - 1,
                                static_cast<size_t>((t - t0) / kSecond));
    return per_second[idx];
  };

  Rng root(kSeed ^ 0xe1a5ULL);
  std::vector<Rng> streams;
  std::vector<sim::NodeId> clients;
  for (int i = 0; i < kSessions; ++i) {
    streams.push_back(root.Fork(static_cast<uint64_t>(i)));
    clients.push_back(net.AddNode());
  }
  int wn = 0;
  std::function<void(int)> next = [&](int i) {
    if (!running) return;
    Rng& rng = streams[static_cast<size_t>(i)];
    const std::string key = "k" + std::to_string(rng.NextBounded(kKeyspace));
    const std::vector<sim::NodeId> members = cluster.CommittedMembers();
    const sim::NodeId coord = members[rng.NextBounded(members.size())];
    const sim::Time issue = sim.Now();
    const bool during_migration = cluster.Migrating();
    (during_migration ? migr_attempted : steady_attempted) += 1;
    auto done = [&, i, issue, during_migration](bool ok) {
      if (ok) {
        (during_migration ? migr_ok : steady_ok) += 1;
        ++bucket_at(issue).ok;
        op_latency.Add(static_cast<double>(sim.Now() - issue));
      } else {
        ++bucket_at(issue).failed;
      }
      sim.ScheduleAfter(
          static_cast<sim::Time>(
              streams[static_cast<size_t>(i)].NextExponential(
                  10.0 * kMillisecond)) +
              1,
          [&, i] { next(i); });
    };
    if (rng.NextBool(0.5)) {
      cluster.Put(clients[static_cast<size_t>(i)], coord, key,
                  "v" + std::to_string(wn++), VersionVector{},
                  [done](Result<Version> r) { done(r.ok()); });
    } else {
      cluster.Get(clients[static_cast<size_t>(i)], coord, key,
                  [done](Result<repl::ReadResult> r) { done(r.ok()); });
    }
  };
  for (int i = 0; i < kSessions; ++i) {
    sim.ScheduleAfter(
        static_cast<sim::Time>(streams[static_cast<size_t>(i)].NextExponential(
            10.0 * kMillisecond)) +
            1,
        [&, i] { next(i); });
  }

  // Mark per-second migration flags by sampling every 100 ms.
  std::function<void()> sample = [&] {
    if (!running) return;
    if (cluster.Migrating()) bucket_at(sim.Now()).migrating = true;
    sim.ScheduleAfter(100 * kMillisecond, [&] { sample(); });
  };
  sim.ScheduleAfter(1, [&] { sample(); });

  // The reconfigurations under test.
  sim::NodeId joined = 0;
  sim.ScheduleAfter(kJoinAt, [&] {
    Result<sim::NodeId> r = cluster.AddServerLive([](Status) {});
    EVC_CHECK_OK(r.status());
    joined = *r;
  });
  sim.ScheduleAfter(kLeaveAt, [&] {
    EVC_CHECK_OK(cluster.RemoveServerLive(servers[1], [](Status) {}));
  });

  sim.RunFor(kRunFor);
  running = false;
  sim.RunFor(10 * kSecond);  // drain in-flight ops and the final catch-up

  const uint64_t attempted = steady_attempted + migr_attempted;
  const uint64_t ok = steady_ok + migr_ok;
  const double avail_total =
      attempted == 0 ? 0.0
                     : static_cast<double>(ok) / static_cast<double>(attempted);
  const double avail_steady =
      steady_attempted == 0
          ? 0.0
          : static_cast<double>(steady_ok) /
                static_cast<double>(steady_attempted);
  const double avail_migration =
      migr_attempted == 0 ? 1.0
                          : static_cast<double>(migr_ok) /
                                static_cast<double>(migr_attempted);

  bench::Harness harness("fig11_elastic");
  harness.Table("per_second", {"t_s", "ops_ok", "ops_failed", "migrating"});
  std::printf(
      "=== Fig. 11: availability through live membership changes ===\n"
      "%d servers N=3 R=2 W=2 on the hash ring; join at t=%llds, removal\n"
      "at t=%llds; %d closed-loop sessions, ~10ms think time, 20s virtual\n\n",
      kInitialServers, static_cast<long long>(kJoinAt / kSecond),
      static_cast<long long>(kLeaveAt / kSecond), kSessions);
  std::printf("%-5s %-8s %-8s %-10s\n", "t_s", "ok", "failed", "migrating");
  std::printf("----------------------------------\n");
  for (size_t t = 0; t < per_second.size(); ++t) {
    const SecondBucket& b = per_second[t];
    if (b.ok + b.failed == 0 && !b.migrating) continue;
    std::printf("%-5zu %-8llu %-8llu %-10s\n", t,
                static_cast<unsigned long long>(b.ok),
                static_cast<unsigned long long>(b.failed),
                b.migrating ? "yes" : "");
    harness.Row("per_second",
                {obs::Json(static_cast<uint64_t>(t)), obs::Json(b.ok),
                 obs::Json(b.failed), obs::Json(b.migrating)});
  }

  const auto& st = cluster.stats();
  std::printf(
      "\navailability: total=%.4f steady=%.4f during_migration=%.4f\n"
      "epoch=%llu keys_migrated=%llu stale_epoch_rejects=%llu "
      "hints_redirected=%llu\nmean op latency %.2f ms\n",
      avail_total, avail_steady, avail_migration,
      static_cast<unsigned long long>(cluster.committed_epoch()),
      static_cast<unsigned long long>(st.keys_migrated),
      static_cast<unsigned long long>(st.stale_epoch_rejects),
      static_cast<unsigned long long>(st.hints_redirected),
      op_latency.mean() / kMillisecond);

  harness.Metric("availability_total", avail_total);
  harness.Metric("availability_steady", avail_steady);
  harness.Metric("availability_during_migration", avail_migration);
  harness.Metric("ops_during_migration",
                 static_cast<double>(migr_attempted));
  harness.Metric("keys_migrated", static_cast<double>(st.keys_migrated));
  harness.Metric("stale_epoch_rejects",
                 static_cast<double>(st.stale_epoch_rejects));
  harness.Metric("final_epoch",
                 static_cast<double>(cluster.committed_epoch()));
  harness.Metric("mean_op_latency_ms", op_latency.mean() / kMillisecond);
  harness.Note("expectation",
               "availability_during_migration >= 0.95: migration streams in "
               "the background and the epoch commits only after catch-up, so "
               "the only client-visible cost is a stale-epoch retry racing "
               "the commit");
  harness.AttachSim(sim);
  EVC_CHECK_OK(harness.Write());

  // Sanity: both reconfigurations must actually have happened (bootstrap is
  // epoch 1, join makes 2, removal makes 3) and data must have moved —
  // otherwise the availability number above is vacuous.
  const bool exercised = cluster.committed_epoch() >= 3 &&
                         st.keys_migrated > 0 && migr_attempted > 0;
  if (!exercised) {
    std::printf("\nERROR: reconfiguration did not complete (epoch=%llu)\n",
                static_cast<unsigned long long>(cluster.committed_epoch()));
  }
  std::printf(
      "\nExpected shape: the failed column stays near zero even in the\n"
      "migrating seconds; availability_during_migration stays above the\n"
      "0.95 CI floor because catch-up happens off the request path.\n");
  return exercised ? 0 : 1;
}
