// Fig. 2 — Probabilistically Bounded Staleness (PBS) curves.
//
// Claim (tutorial, citing Bailis et al.): partial quorums are "mostly
// consistent, most of the time": P(consistent read) starts high even at
// t=0, rises steeply within milliseconds, and the (R, W) choice shifts the
// whole curve; strict quorums (R+W>N) pin it at 1.0.
//
// Output: t-visibility curves for N=3 with every interesting (R, W), the
// 99.9%-visibility latency, and a k-staleness table.

#include <cstdio>

#include "harness.h"
#include "stale/pbs.h"

using namespace evc;
using stale::PbsConfig;
using stale::PbsEstimator;
using stale::ShiftedExponential;

namespace {

PbsConfig Config(int r, int w) {
  PbsConfig c;
  c.n = 3;
  c.r = r;
  c.w = w;
  // LAN-style WARS fit: ~0.5 ms base one-way; write path has a heavier
  // tail than the read path (matches the PBS paper's production fits).
  c.w_latency = ShiftedExponential(500, 2500);
  c.a_latency = ShiftedExponential(500, 1000);
  c.r_latency = ShiftedExponential(500, 500);
  c.s_latency = ShiftedExponential(500, 500);
  return c;
}

}  // namespace

int main() {
  bench::Harness harness("fig2_pbs_staleness");
  harness.Table("t_visibility",
                {"r", "w", "t_ms", "p_consistent"});
  harness.Table("t999", {"r", "w", "t999_ms"});
  harness.Table("k_staleness", {"r", "w", "k", "p_within_k"});
  std::printf("=== Fig. 2: PBS t-visibility, N=3 (WARS Monte-Carlo) ===\n\n");
  const double ts_ms[] = {0, 1, 2, 5, 10, 20, 50, 100};
  std::printf("%-10s", "(R,W)");
  for (double t : ts_ms) std::printf("  t=%-4.0fms", t);
  std::printf("   t99.9(ms)\n");
  std::printf("-------------------------------------------------------------"
              "-----------------------\n");

  const std::pair<int, int> configs[] = {{1, 1}, {1, 2}, {2, 1},
                                         {2, 2}, {1, 3}, {3, 1}};
  for (const auto& [r, w] : configs) {
    PbsEstimator pbs(Config(r, w), 1234);
    std::printf("R=%d, W=%d ", r, w);
    for (double t : ts_ms) {
      const double p = pbs.ProbConsistent(t * 1000, 20000);
      std::printf("  %7.4f", p);
      harness.Row("t_visibility",
                  {obs::Json(r), obs::Json(w), obs::Json(t), obs::Json(p)});
    }
    const double t999 = pbs.TVisibility(0.999, 1e6, 64, 8000);
    std::printf("   %8.2f\n", t999 / 1000.0);
    harness.Row("t999",
                {obs::Json(r), obs::Json(w), obs::Json(t999 / 1000.0)});
  }

  std::printf("\n--- k-staleness: P(read within k newest), writes every "
              "10 ms ---\n");
  std::printf("%-10s  k=1      k=2      k=3      k=5\n", "(R,W)");
  for (const auto& [r, w] : std::vector<std::pair<int, int>>{{1, 1}, {2, 1}}) {
    PbsEstimator pbs(Config(r, w), 99);
    std::printf("R=%d, W=%d ", r, w);
    for (int k : {1, 2, 3, 5}) {
      const double p = pbs.ProbKStaleness(k, 10000, 20000);
      std::printf("  %7.4f", p);
      harness.Row("k_staleness",
                  {obs::Json(r), obs::Json(w), obs::Json(k), obs::Json(p)});
    }
    std::printf("\n");
  }
  EVC_CHECK_OK(harness.Write());

  std::printf(
      "\nExpected shape: R=W=1 starts ~0.5-0.8 at t=0 and exceeds 0.999\n"
      "within tens of ms; raising R or W shifts curves up; R+W>3 rows are\n"
      "identically 1.0 (quorum intersection); k-staleness rises with k.\n");
  return 0;
}
