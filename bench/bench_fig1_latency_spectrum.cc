// Fig. 1 — The latency/consistency spectrum under geo-replication.
//
// Claim (tutorial): operation latency grows as the consistency guarantee
// strengthens: local-commit protocols (eventual, causal) complete at
// intra-DC latency; quorum protocols pay one WAN round trip; primary-copy
// writes pay the trip to the master; consensus pays a full WAN consensus
// round. The *ratios* (~1-2 orders of magnitude between the ends of the
// dial) are the reproduction target, not absolute numbers.
//
// Setup: 3-datacenter WAN (US-East, EU, Asia), one storage server per DC,
// a closed-loop YCSB-B client in each DC, 200 ops per (level, client-DC).

#include <cstdio>
#include <optional>

#include "core/replicated_store.h"
#include "harness.h"
#include "workload/workload.h"

using namespace evc;
using core::ConsistencyLevel;
using core::ConsistencyLevelToString;
using core::ReplicatedStore;
using core::StoreOptions;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Row {
  double put_p50, put_p99, get_p50, get_p99;
  uint64_t failures;
};

Row RunCell(ConsistencyLevel level, int client_dc) {
  StoreOptions options;
  options.level = level;
  options.datacenters = 3;
  options.seed = 42 + static_cast<uint64_t>(client_dc);
  ReplicatedStore store(options);
  const sim::NodeId client = store.AddClient(client_dc);

  workload::WorkloadConfig wl = workload::WorkloadConfig::YcsbB();
  wl.record_count = 100;
  wl.value_size = 64;
  workload::WorkloadGenerator gen(wl, 7);

  // Preload a few records so reads hit.
  for (int i = 0; i < 20; ++i) {
    bool done = false;
    store.Put(client, gen.KeyFor(i), "seed", [&](Status) { done = true; });
    store.RunFor(10 * kSecond);
    EVC_CHECK(done);
  }

  for (int i = 0; i < 200; ++i) {
    const workload::Op op = gen.Next();
    bool done = false;
    if (op.type == workload::OpType::kRead) {
      store.Get(client, op.key,
                [&](Result<std::string>) { done = true; });
    } else {
      store.Put(client, op.key, op.value, [&](Status) { done = true; });
    }
    store.RunFor(10 * kSecond);
    EVC_CHECK(done);
  }

  return Row{store.put_latency().Percentile(0.50),
             store.put_latency().Percentile(0.99),
             store.get_latency().Percentile(0.50),
             store.get_latency().Percentile(0.99),
             store.puts_failed() + store.gets_failed()};
}

}  // namespace

int main() {
  bench::Harness harness("fig1_latency_spectrum");
  harness.Note("setup", "3-DC WAN, YCSB-B, 200 ops per (level, client DC)");
  harness.Table("latency", {"level", "client_dc", "put_p50_ms", "put_p99_ms",
                            "get_p50_ms", "get_p99_ms", "failures"});
  std::printf(
      "=== Fig. 1: latency vs consistency level (3-DC WAN, YCSB-B) ===\n");
  std::printf(
      "latencies in ms of virtual time; client closed-loop in its home DC\n\n");
  std::printf(
      "%-9s %-8s | %10s %10s | %10s %10s | %s\n", "level", "clientDC",
      "put p50", "put p99", "get p50", "get p99", "fail");
  std::printf(
      "--------------------+-----------------------+---------------------"
      "--+-----\n");

  const ConsistencyLevel levels[] = {
      ConsistencyLevel::kEventual, ConsistencyLevel::kCausal,
      ConsistencyLevel::kTimeline, ConsistencyLevel::kQuorum,
      ConsistencyLevel::kStrong};
  const char* dc_names[] = {"US-East", "EU", "Asia"};
  for (const ConsistencyLevel level : levels) {
    for (int dc = 0; dc < 3; ++dc) {
      const Row row = RunCell(level, dc);
      std::printf("%-9s %-8s | %10.2f %10.2f | %10.2f %10.2f | %llu\n",
                  ConsistencyLevelToString(level), dc_names[dc],
                  row.put_p50 / kMillisecond, row.put_p99 / kMillisecond,
                  row.get_p50 / kMillisecond, row.get_p99 / kMillisecond,
                  static_cast<unsigned long long>(row.failures));
      harness.Row("latency",
                  {obs::Json(ConsistencyLevelToString(level)),
                   obs::Json(dc_names[dc]),
                   obs::Json(row.put_p50 / kMillisecond),
                   obs::Json(row.put_p99 / kMillisecond),
                   obs::Json(row.get_p50 / kMillisecond),
                   obs::Json(row.get_p99 / kMillisecond),
                   obs::Json(row.failures)});
    }
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: eventual/causal ~ sub-ms to low ms everywhere;\n"
      "quorum ~ one WAN RTT; timeline writes depend on distance to the\n"
      "record master (reads stay local); strong ~ client->leader + one\n"
      "consensus round (worst from DCs far from the leader).\n");
  return 0;
}
