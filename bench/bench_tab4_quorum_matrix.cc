// Table 4 — The quorum configuration matrix (N=3).
//
// Claim (tutorial): the (R, W) choice is a three-way dial among latency,
// availability, and consistency:
//   * latency: an operation waits for the max over its quorum, so bigger
//     quorums inherit the WAN tail;
//   * availability: an operation survives f replica failures iff its
//     quorum fits in the remaining N-f replicas;
//   * consistency: reads see the latest completed write iff R+W > N.
// One row per (R, W), all three columns measured.

#include <cstdio>
#include <memory>
#include <optional>

#include "common/stats.h"
#include "harness.h"
#include "replication/quorum_store.h"
#include "stale/pbs.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct MatrixRow {
  double put_p50_ms = 0;
  double get_p50_ms = 0;
  bool write_survives_one_failure = false;
  bool read_survives_one_failure = false;
  double prob_fresh_read_at_0 = 0;  // PBS, immediately after commit
};

MatrixRow RunConfig(int r, int w, uint64_t seed) {
  MatrixRow row;
  // --- latency + availability on the simulated geo cluster ---------------
  {
    sim::Simulator sim(seed);
    auto latency = std::make_unique<sim::WanMatrixLatency>(
        sim::WanMatrixLatency::ThreeRegionBaseUs());
    auto* wan = latency.get();
    sim::Network net(&sim, std::move(latency));
    sim::Rpc rpc(&net);
    repl::QuorumConfig config;
    config.replication_factor = 3;
    config.read_quorum = r;
    config.write_quorum = w;
    config.sloppy = false;
    repl::DynamoCluster cluster(&rpc, config);
    auto servers = cluster.AddServers(3);
    for (int i = 0; i < 3; ++i) wan->AssignNode(servers[i], i);
    const sim::NodeId client = net.AddNode();
    wan->AssignNode(client, 0);

    Histogram put_hist, get_hist;
    for (int i = 0; i < 30; ++i) {
      const std::string key = "key" + std::to_string(i);
      sim::Time done = -1;
      sim::Time start = sim.Now();
      cluster.Put(client, servers[0], key, "v", {},
                  [&](Result<Version> res) {
                    if (res.ok()) done = sim.Now();
                  });
      sim.RunFor(5 * kSecond);
      if (done >= 0) put_hist.Add(static_cast<double>(done - start));
      start = sim.Now();
      done = -1;
      cluster.Get(client, servers[0], key, [&](Result<repl::ReadResult> res) {
        if (res.ok()) done = sim.Now();
      });
      sim.RunFor(5 * kSecond);
      if (done >= 0) get_hist.Add(static_cast<double>(done - start));
    }
    row.put_p50_ms = put_hist.Percentile(0.5) / kMillisecond;
    row.get_p50_ms = get_hist.Percentile(0.5) / kMillisecond;

    // Availability probe: crash one non-coordinator preference replica.
    const auto pref = cluster.PreferenceList("probe");
    net.SetNodeUp(pref[0] == servers[0] ? pref[1] : pref[0], false);
    std::optional<bool> write_ok, read_ok;
    cluster.Put(client, servers[0], "probe", "v", {},
                [&](Result<Version> res) { write_ok = res.ok(); });
    sim.RunFor(10 * kSecond);
    cluster.Get(client, servers[0], "probe",
                [&](Result<repl::ReadResult> res) { read_ok = res.ok(); });
    sim.RunFor(10 * kSecond);
    row.write_survives_one_failure = write_ok.value_or(false);
    row.read_survives_one_failure = read_ok.value_or(false);
  }
  // --- consistency via the PBS model --------------------------------------
  {
    stale::PbsConfig pbs_config;
    pbs_config.n = 3;
    pbs_config.r = r;
    pbs_config.w = w;
    stale::PbsEstimator pbs(pbs_config, seed);
    row.prob_fresh_read_at_0 = pbs.ProbConsistent(0, 20000);
  }
  return row;
}

}  // namespace

int main() {
  bench::Harness harness("tab4_quorum_matrix");
  harness.Table("matrix",
                {"r", "w", "put_p50_ms", "get_p50_ms", "write_survives_f1",
                 "read_survives_f1", "p_fresh_at_0", "classification"});
  std::printf(
      "=== Table 4: N=3 quorum matrix — latency / availability(f=1) / "
      "consistency ===\n\n");
  std::printf("%-8s %-10s %-10s %-12s %-12s %-14s %s\n", "(R,W)", "put p50",
              "get p50", "write ok?", "read ok?", "P(fresh@t=0)",
              "classification");
  std::printf("---------------------------------------------------------------"
              "---------------\n");
  for (int r = 1; r <= 3; ++r) {
    for (int w = 1; w <= 3; ++w) {
      const MatrixRow row = RunConfig(r, w, 50 + static_cast<uint64_t>(r * 3 + w));
      const char* klass =
          (r + w > 3) ? "strict (read-latest)"
                      : "partial (eventual)";
      std::printf("(%d,%d)    %-10.1f %-10.1f %-12s %-12s %-14.4f %s\n", r, w,
                  row.put_p50_ms, row.get_p50_ms,
                  row.write_survives_one_failure ? "yes" : "NO",
                  row.read_survives_one_failure ? "yes" : "NO",
                  row.prob_fresh_read_at_0, klass);
      harness.Row("matrix",
                  {obs::Json(r), obs::Json(w), obs::Json(row.put_p50_ms),
                   obs::Json(row.get_p50_ms),
                   obs::Json(row.write_survives_one_failure),
                   obs::Json(row.read_survives_one_failure),
                   obs::Json(row.prob_fresh_read_at_0), obs::Json(klass)});
    }
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: latency grows with quorum size (W or R of 3 waits\n"
      "for the farthest replica); any quorum of 3 dies with one failure\n"
      "(availability NO); P(fresh)=1.0 exactly when R+W>3, and rises with\n"
      "R and W below that. Pick your row: that is the tutorial's point.\n");
  return 0;
}
