// Fig. 3 — Anti-entropy: epidemic convergence and Merkle sync cost.
//
// Claims (tutorial):
//   (a) gossip spreads an update epidemically — convergence time grows
//       ~logarithmically with cluster size and shrinks with fanout;
//   (b) Merkle-tree sync moves work proportional to the *divergence*
//       between replicas, not the database size.
//
// Output: (a) virtual time to full convergence for cluster sizes 4..64 and
// fanouts 1..3; (b) digests/keys shipped to reconcile d dirty keys out of a
// 20k-key database.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.h"
#include "replication/anti_entropy.h"
#include "sim/rpc.h"

using namespace evc;
using repl::AntiEntropy;
using repl::AntiEntropyOptions;
using sim::kMillisecond;
using sim::kSecond;

namespace {

LamportTimestamp Ts(uint64_t c, uint32_t node = 0) {
  return LamportTimestamp{c, node};
}

sim::Time MeasureConvergence(int replicas, int fanout, uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             kMillisecond, 10 * kMillisecond));
  std::vector<sim::NodeId> nodes;
  std::vector<std::unique_ptr<ReplicaStorage>> storages;
  std::vector<ReplicaStorage*> raw;
  ReplicaStorageOptions storage_options;
  storage_options.durable = false;
  for (int i = 0; i < replicas; ++i) {
    nodes.push_back(net.AddNode());
    storages.push_back(std::make_unique<ReplicaStorage>(
        static_cast<uint32_t>(i), storage_options));
    raw.push_back(storages.back().get());
  }
  AntiEntropyOptions options;
  options.interval = 100 * kMillisecond;
  options.fanout = fanout;
  AntiEntropy ae(&net, nodes, raw, options);
  // Seed 100 fresh keys at replica 0 ("rumor source").
  for (int k = 0; k < 100; ++k) {
    storages[0]->Put("key" + std::to_string(k), "v", {}, Ts(k + 1));
  }
  ae.Start();
  // Poll for convergence.
  const sim::Time poll = 10 * kMillisecond;
  while (sim.Now() < 120 * kSecond) {
    sim.RunFor(poll);
    if (ae.Converged()) return sim.Now();
  }
  return -1;
}

}  // namespace

int main() {
  bench::Harness harness("fig3_antientropy");
  harness.Table("convergence",
                {"replicas", "fanout", "median_converge_s"});
  harness.Table("merkle_cost", {"dirty_keys", "digests_compared",
                                "keys_shipped", "shipped_fraction"});
  std::printf("=== Fig. 3a: gossip convergence time vs cluster size ===\n");
  std::printf("(100 keys seeded at one replica; round interval 100 ms;\n");
  std::printf(" median of 5 seeds, virtual seconds to all-equal roots)\n\n");
  std::printf("%-10s", "replicas");
  for (int fanout : {1, 2, 3}) std::printf("  fanout=%d", fanout);
  std::printf("\n----------------------------------------\n");
  for (int replicas : {4, 8, 16, 32, 64}) {
    std::printf("%-10d", replicas);
    for (int fanout : {1, 2, 3}) {
      std::vector<sim::Time> times;
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        times.push_back(MeasureConvergence(replicas, fanout, seed));
      }
      std::sort(times.begin(), times.end());
      std::printf("  %7.2fs",
                  static_cast<double>(times[2]) / kSecond);
      harness.Row("convergence",
                  {obs::Json(replicas), obs::Json(fanout),
                   obs::Json(static_cast<double>(times[2]) / kSecond)});
    }
    std::printf("\n");
  }

  std::printf("\n=== Fig. 3b: Merkle sync cost vs divergence ===\n");
  std::printf("(two replicas sharing 20000 keys, d extra keys on one side,\n");
  std::printf(" depth-14 Merkle tree: cost of one interactive sync)\n\n");
  std::printf("%-12s %-16s %-14s %-12s\n", "dirty keys", "digests compared",
              "keys shipped", "of 20000+d");
  std::printf("------------------------------------------------------\n");
  for (int dirty : {1, 10, 100, 1000, 5000}) {
    sim::Simulator sim(7);
    sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(
                               kMillisecond));
    std::vector<sim::NodeId> nodes = {net.AddNode(), net.AddNode()};
    ReplicaStorageOptions storage_options;
    storage_options.durable = false;
    storage_options.merkle_depth = 14;
    ReplicaStorage a(0, storage_options), b(1, storage_options);
    for (int k = 0; k < 20000; ++k) {
      const std::string key = "key" + std::to_string(k);
      a.Put(key, "v", {}, Ts(k + 1));
      b.MergeRemote(key, a.GetRaw(key));
    }
    for (int k = 0; k < dirty; ++k) {
      a.Put("dirty" + std::to_string(k), "v", {}, Ts(100000 + k));
    }
    AntiEntropy ae(&net, nodes, {&a, &b}, AntiEntropyOptions{});
    ae.SyncPair(0, 1);
    EVC_CHECK(ae.Converged());
    std::printf("%-12d %-16llu %-14llu %.4f\n", dirty,
                static_cast<unsigned long long>(ae.stats().digests_shipped),
                static_cast<unsigned long long>(ae.stats().keys_shipped),
                static_cast<double>(ae.stats().keys_shipped) /
                    (20000.0 + dirty));
    harness.Row("merkle_cost",
                {obs::Json(dirty), obs::Json(ae.stats().digests_shipped),
                 obs::Json(ae.stats().keys_shipped),
                 obs::Json(static_cast<double>(ae.stats().keys_shipped) /
                           (20000.0 + dirty))});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: (a) time grows roughly with log(replicas) and\n"
      "drops as fanout rises; (b) keys shipped tracks the divergence d\n"
      "(plus same-bucket collateral), a tiny fraction of the database.\n");
  return 0;
}
