// Fig. 9 — Hedged requests cut the gray-failure tail.
//
// Claim ("The Tail at Scale", reused by the tutorial's availability
// discussion): when one replica is slow rather than dead — the kSlowNode
// gray failure, invisible to a connectivity oracle — issuing a hedged copy
// of a slow read to another coordinator after a fixed brief delay collapses
// the p99 tail while leaving the median untouched. Two same-seed runs of
// the identical workload, hedging off vs on, under one slow node.

#include <cstdio>
#include <memory>
#include <string>

#include "common/stats.h"
#include "harness.h"
#include "replication/quorum_store.h"
#include "sim/latency.h"
#include "sim/nemesis.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr int kServers = 5;
constexpr int kKeys = 40;
constexpr int kReads = 400;
constexpr sim::Time kSlowNodeDelay = 100 * kMillisecond;
constexpr sim::Time kHedgeDelay = 50 * kMillisecond;

struct RunResult {
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t hedges_issued = 0;
  uint64_t hedges_won = 0;
  uint64_t hedges_lost = 0;
  uint64_t reads_ok = 0;
};

RunResult RunOnce(bool hedging, uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim,
                   std::make_unique<sim::ConstantLatency>(5 * kMillisecond));
  sim::Rpc rpc(&net);

  repl::QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = 2;
  config.write_quorum = 2;
  config.hedge_reads = hedging;
  // Fixed-delay hedging: keep the trigger below the percentile-estimation
  // threshold so both runs hedge after the same deterministic 50ms.
  config.resilience.hedge.default_delay = kHedgeDelay;
  config.resilience.hedge.min_samples = 1u << 20;
  repl::DynamoCluster cluster(&rpc, config);
  const auto servers = cluster.AddServers(kServers);
  const sim::NodeId client = net.AddNode();

  // Seed the keyspace before the gray failure lands.
  for (int k = 0; k < kKeys; ++k) {
    cluster.Put(client, servers[1], "key" + std::to_string(k),
                "v" + std::to_string(k), {}, [](Result<Version>) {});
    sim.RunFor(2 * kSecond);
  }

  // One server turns slow (not dead): every message it sends or receives
  // eats an extra processing delay. CanCommunicate still reports it fine.
  sim::Nemesis nemesis(&net, servers, seed);
  sim::FaultPlan plan;
  plan.SlowNodeAt(sim.Now() + kMillisecond, servers[0], kSlowNodeDelay);
  nemesis.Execute(plan);
  sim.RunFor(10 * kMillisecond);

  // Round-robin reads across all coordinators: 1-in-5 reads lands on the
  // slow coordinator and inherits its tail unless the hedge escapes it.
  Histogram latency;
  RunResult result;
  for (int i = 0; i < kReads; ++i) {
    const std::string key = "key" + std::to_string(i % kKeys);
    const sim::NodeId coordinator = servers[i % kServers];
    const sim::Time start = sim.Now();
    sim::Time done = -1;
    cluster.Get(client, coordinator, key, [&](Result<repl::ReadResult> r) {
      if (r.ok()) done = sim.Now();
    });
    sim.RunFor(5 * kSecond);
    if (done >= 0) {
      latency.Add(static_cast<double>(done - start));
      ++result.reads_ok;
    }
  }

  result.p50_ms = latency.Percentile(0.5) / kMillisecond;
  result.p99_ms = latency.Percentile(0.99) / kMillisecond;
  auto& obs = sim.metrics().global();
  result.hedges_issued = obs.CounterFor("resilience.hedges_issued").value();
  result.hedges_won = obs.CounterFor("resilience.hedges_won").value();
  result.hedges_lost = obs.CounterFor("resilience.hedges_lost").value();
  return result;
}

}  // namespace

int main() {
  bench::Harness harness("fig9_hedging");
  harness.Table("tail", {"mode", "p50_ms", "p99_ms", "hedges_issued",
                         "hedges_won", "hedges_lost", "reads_ok"});

  std::printf(
      "=== Fig. 9: hedged reads vs a slow node (+%lldms processing) ===\n\n",
      static_cast<long long>(kSlowNodeDelay / kMillisecond));
  std::printf("%-14s %-10s %-10s %-10s %-10s %-10s\n", "mode", "p50 ms",
              "p99 ms", "hedged", "won", "lost");
  std::printf("--------------------------------------------------------------\n");

  const uint64_t kSeed = 90;
  RunResult off{};
  RunResult on{};
  for (const bool hedging : {false, true}) {
    const RunResult r = RunOnce(hedging, kSeed);
    (hedging ? on : off) = r;
    const char* mode = hedging ? "hedging-on" : "hedging-off";
    std::printf("%-14s %-10.1f %-10.1f %-10llu %-10llu %-10llu\n", mode,
                r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.hedges_issued),
                static_cast<unsigned long long>(r.hedges_won),
                static_cast<unsigned long long>(r.hedges_lost));
    harness.Row("tail",
                {std::string(mode), r.p50_ms, r.p99_ms,
                 static_cast<double>(r.hedges_issued),
                 static_cast<double>(r.hedges_won),
                 static_cast<double>(r.hedges_lost),
                 static_cast<double>(r.reads_ok)});
  }

  std::printf(
      "\nhedging cut p99 by %.1fx (%.1fms -> %.1fms); p50 moved %.1fms\n",
      on.p99_ms > 0 ? off.p99_ms / on.p99_ms : 0.0, off.p99_ms, on.p99_ms,
      on.p50_ms - off.p50_ms);

  harness.Metric("p99_ms_hedging_off", off.p99_ms);
  harness.Metric("p99_ms_hedging_on", on.p99_ms);
  harness.Metric("p50_ms_hedging_off", off.p50_ms);
  harness.Metric("p50_ms_hedging_on", on.p50_ms);
  harness.Metric("hedges_won", static_cast<double>(on.hedges_won));
  harness.Note("claim",
               "with one kSlowNode gray failure, hedged reads complete at "
               "hedge_delay + fast round trip instead of riding the slow "
               "coordinator; p99 drops, p50 unchanged, hedges_won > 0");
  harness.Note("config",
               "N=3 R=2 W=2, 5 servers, 1-in-5 reads coordinated by the "
               "slow node, fixed 50ms hedge delay");
  const Status st = harness.Write();
  if (!st.ok()) return 1;
  return 0;
}
