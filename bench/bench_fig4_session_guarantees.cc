// Fig. 4 — Session guarantees: anomalies prevented, and at what cost.
//
// Claim (tutorial, after Bayou): eventual consistency breaks per-session
// promises (read-your-writes, monotonic reads) at measurable rates; the
// session-guarantee mechanism eliminates those anomalies entirely for the
// modest price of occasionally retrying against a fresher server.
//
// Setup: N=3 R=1 W=1 quorum store; every write leaves one replica stale
// (crash-during-write), every read races the stale replica. 300 write+read
// pairs per configuration.

#include <cstdio>
#include <memory>
#include <optional>

#include "common/stats.h"
#include "harness.h"
#include "session/session.h"

using namespace evc;
using session::Session;
using session::SessionOptions;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct CellResult {
  uint64_t ryw_violations = 0;
  uint64_t mr_violations = 0;
  uint64_t retries = 0;
  double mean_read_ms = 0;
  int stale_values_served = 0;
};

CellResult RunCell(bool guarantees_on, uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 30 * kMillisecond));
  sim::Rpc rpc(&net);
  repl::QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = 1;
  config.write_quorum = 1;
  config.sloppy = false;
  repl::DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(3);
  const sim::NodeId client = net.AddNode();

  SessionOptions opts;
  opts.read_your_writes = guarantees_on;
  opts.monotonic_reads = guarantees_on;
  opts.monotonic_writes = guarantees_on;
  opts.writes_follow_reads = guarantees_on;
  opts.retry_interval = 20 * kMillisecond;
  Session session(&cluster, &sim, client, servers, opts);

  CellResult result;
  OnlineStats read_latency;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "key" + std::to_string(i % 10);
    const std::string value = "v" + std::to_string(i);
    // Crash a non-coordinator preference replica around the write so it
    // stays stale.
    const auto pref = cluster.PreferenceList(key);
    const sim::NodeId victim = pref[2] == servers[0] ? pref[1] : pref[2];
    net.SetNodeUp(victim, false);
    bool put_ok = false;
    session.Put(key, value, [&](Result<Version> r) { put_ok = r.ok(); });
    sim.RunFor(5 * kSecond);
    net.SetNodeUp(victim, true);
    if (!put_ok) continue;

    const sim::Time start = sim.Now();
    sim::Time done_at = -1;
    bool saw_own_write = false;
    bool read_ok = false;
    session.Get(key, [&](Result<repl::ReadResult> r) {
      done_at = sim.Now();
      read_ok = r.ok();
      if (r.ok()) {
        for (const auto& v : r->versions) saw_own_write |= v.value == value;
      }
    });
    sim.RunFor(30 * kSecond);
    if (read_ok) {
      read_latency.Add(static_cast<double>(done_at - start));
      if (!saw_own_write) ++result.stale_values_served;
    }
  }
  result.ryw_violations = session.stats().ryw_violations_detected;
  result.mr_violations = session.stats().mr_violations_detected;
  result.retries = session.stats().guarantee_retries;
  result.mean_read_ms = read_latency.mean() / kMillisecond;
  return result;
}

}  // namespace

int main() {
  bench::Harness harness("fig4_session_guarantees");
  harness.Table("cells", {"guarantees", "ryw_anomalies", "mr_anomalies",
                          "retries", "stale_served", "mean_read_ms"});
  std::printf(
      "=== Fig. 4: session guarantees on an N=3, R=W=1 store ===\n"
      "300 write-then-read pairs; one replica left stale per write\n\n");
  std::printf("%-22s %-14s %-14s %-10s %-14s %-12s\n", "configuration",
              "RYW anomalies", "MR anomalies", "retries", "stale served",
              "read ms");
  std::printf("----------------------------------------------------------"
              "------------------------\n");
  for (const bool on : {false, true}) {
    CellResult r = RunCell(on, on ? 21 : 22);
    std::printf("%-22s %-14llu %-14llu %-10llu %-14d %-12.2f\n",
                on ? "guarantees ENFORCED" : "guarantees OFF",
                static_cast<unsigned long long>(r.ryw_violations),
                static_cast<unsigned long long>(r.mr_violations),
                static_cast<unsigned long long>(r.retries),
                r.stale_values_served, r.mean_read_ms);
    harness.Row("cells",
                {obs::Json(on ? "enforced" : "off"),
                 obs::Json(r.ryw_violations), obs::Json(r.mr_violations),
                 obs::Json(r.retries), obs::Json(r.stale_values_served),
                 obs::Json(r.mean_read_ms)});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: OFF serves a visible fraction of stale reads\n"
      "(anomalies detected, never prevented). ENFORCED serves zero stale\n"
      "reads; the price is the retry count and a higher mean read latency\n"
      "(each retry waits for a fresher replica).\n");
  return 0;
}
