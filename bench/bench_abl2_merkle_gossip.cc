// Ablation 2 — anti-entropy design knobs: Merkle depth and push vs
// push-pull gossip.
//
// (a) Merkle tree depth trades digest-exchange volume against key-transfer
//     precision: too shallow and every sync ships whole buckets of clean
//     keys; too deep and the digest list itself dominates. The sweet spot
//     depends on database size.
// (b) Push-pull gossip converges roughly twice as fast as push-only for
//     the same round budget (rumors travel both directions per pairing).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.h"
#include "replication/anti_entropy.h"
#include "sim/rpc.h"

using namespace evc;
using repl::AntiEntropy;
using repl::AntiEntropyOptions;
using sim::kMillisecond;
using sim::kSecond;

namespace {

LamportTimestamp Ts(uint64_t c, uint32_t node = 0) {
  return LamportTimestamp{c, node};
}

void MerkleDepthSweep(bench::Harness* out) {
  std::printf("--- (a) Merkle depth sweep: 50k-key DB, 50 dirty keys ---\n");
  std::printf("%-8s %-18s %-14s %-16s\n", "depth", "digests compared",
              "keys shipped", "cost proxy (sum)");
  std::printf("--------------------------------------------------------\n");
  for (int depth : {6, 8, 10, 12, 14, 16}) {
    sim::Simulator sim(7);
    sim::Network net(&sim,
                     std::make_unique<sim::ConstantLatency>(kMillisecond));
    std::vector<sim::NodeId> nodes = {net.AddNode(), net.AddNode()};
    ReplicaStorageOptions options;
    options.durable = false;
    options.merkle_depth = depth;
    ReplicaStorage a(0, options), b(1, options);
    for (int k = 0; k < 50000; ++k) {
      const std::string key = "key" + std::to_string(k);
      a.Put(key, "v", {}, Ts(k + 1));
      b.MergeRemote(key, a.GetRaw(key));
    }
    for (int k = 0; k < 50; ++k) {
      a.Put("dirty" + std::to_string(k), "v", {}, Ts(100000 + k));
    }
    AntiEntropy ae(&net, nodes, {&a, &b}, AntiEntropyOptions{});
    ae.SyncPair(0, 1);
    EVC_CHECK(ae.Converged());
    const auto& s = ae.stats();
    std::printf("%-8d %-18llu %-14llu %-16llu\n", depth,
                static_cast<unsigned long long>(s.digests_shipped),
                static_cast<unsigned long long>(s.keys_shipped),
                static_cast<unsigned long long>(s.digests_shipped +
                                                s.keys_shipped * 8));
    out->Row("merkle_depth",
             {obs::Json(depth),
              obs::Json(static_cast<uint64_t>(s.digests_shipped)),
              obs::Json(static_cast<uint64_t>(s.keys_shipped)),
              obs::Json(static_cast<uint64_t>(s.digests_shipped +
                                              s.keys_shipped * 8))});
  }
}

double MeasureConvergence(bool push_pull, int replicas, uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             kMillisecond, 10 * kMillisecond));
  std::vector<sim::NodeId> nodes;
  std::vector<std::unique_ptr<ReplicaStorage>> storages;
  std::vector<ReplicaStorage*> raw;
  ReplicaStorageOptions options;
  options.durable = false;
  for (int i = 0; i < replicas; ++i) {
    nodes.push_back(net.AddNode());
    storages.push_back(std::make_unique<ReplicaStorage>(
        static_cast<uint32_t>(i), options));
    raw.push_back(storages.back().get());
  }
  AntiEntropyOptions ae_options;
  ae_options.interval = 100 * kMillisecond;
  ae_options.push_pull = push_pull;
  AntiEntropy ae(&net, nodes, raw, ae_options);
  for (int k = 0; k < 50; ++k) {
    storages[0]->Put("key" + std::to_string(k), "v", {}, Ts(k + 1));
  }
  ae.Start();
  while (sim.Now() < 300 * kSecond) {
    sim.RunFor(20 * kMillisecond);
    if (ae.Converged()) return static_cast<double>(sim.Now()) / kSecond;
  }
  return -1;
}

void PushPullSweep(bench::Harness* out) {
  std::printf("\n--- (b) push vs push-pull gossip (median of 7 seeds) ---\n");
  std::printf("%-10s %-14s %-14s\n", "replicas", "push-only (s)",
              "push-pull (s)");
  std::printf("--------------------------------------\n");
  for (int replicas : {8, 16, 32, 64}) {
    std::vector<double> push, pp;
    for (uint64_t seed = 1; seed <= 7; ++seed) {
      push.push_back(MeasureConvergence(false, replicas, seed));
      pp.push_back(MeasureConvergence(true, replicas, seed * 100));
    }
    std::sort(push.begin(), push.end());
    std::sort(pp.begin(), pp.end());
    std::printf("%-10d %-14.2f %-14.2f\n", replicas, push[3], pp[3]);
    out->Row("gossip", {obs::Json(replicas), obs::Json(push[3]),
                        obs::Json(pp[3])});
  }
}

}  // namespace

int main() {
  bench::Harness harness("abl2_merkle_gossip");
  harness.Table("merkle_depth",
                {"depth", "digests_shipped", "keys_shipped", "cost_proxy"});
  harness.Table("gossip", {"replicas", "push_only_s", "push_pull_s"});
  std::printf("=== Ablation 2: anti-entropy design knobs ===\n\n");
  MerkleDepthSweep(&harness);
  PushPullSweep(&harness);
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: (a) shallow trees ship few digests but many clean\n"
      "keys; deep trees the reverse; the combined proxy bottoms out at a\n"
      "moderate depth. (b) push-pull beats push-only at every cluster\n"
      "size, by roughly 1.5-2x.\n");
  return 0;
}
