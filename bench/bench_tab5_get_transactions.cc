// Table 5 — Get-transactions (COPS-GT): consistent multi-key reads.
//
// Claim (after COPS-GT): per-key causal reads do not compose — two reads
// issued back-to-back can return a value together with a *pre-dependency*
// version of another key. The two-round get-transaction closes that gap,
// paying a second (local) round only when the first round actually caught
// an inconsistency.
//
// Setup: writer in the EU updates "photo" then (causally) "comment"; a
// reader in Asia repeatedly fetches the pair with plain sequential Gets and
// with GetTransaction, under increasing WAN jitter.

#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "causal/causal_store.h"
#include "harness.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct TrialStats {
  int trials = 0;
  int plain_violations = 0;
  int gt_violations = 0;
  int gt_second_rounds = 0;
};

TrialStats Run(double jitter, int trials, uint64_t seed) {
  sim::Simulator sim(seed);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs(), jitter);
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  causal::CausalCluster cluster(&rpc, causal::CausalOptions{});
  auto dcs = cluster.AddDatacenters(3);
  for (int i = 0; i < 3; ++i) wan->AssignNode(dcs[i], i);
  const sim::NodeId writer_node = net.AddNode();
  wan->AssignNode(writer_node, 1);  // EU
  const sim::NodeId reader_node = net.AddNode();
  wan->AssignNode(reader_node, 2);  // Asia
  causal::CausalClient writer(&cluster, writer_node, dcs[1]);

  auto step_until = [&](const bool& flag) {
    while (!flag && sim.Step()) {
    }
    EVC_CHECK(flag);
  };
  auto violates = [](const causal::CausalRead& photo,
                     const causal::CausalRead& comment) {
    if (!comment.found) return false;
    for (const causal::Dependency& dep : comment.deps) {
      if (dep.key == "photo" && (!photo.found || photo.id < dep.id)) {
        return true;
      }
    }
    return false;
  };

  TrialStats stats;
  for (int t = 0; t < trials; ++t) {
    ++stats.trials;
    bool ok = false;
    writer.Put("photo", "img" + std::to_string(t),
               [&](Result<causal::WriteId> r) { ok = r.ok(); });
    step_until(ok);
    ok = false;
    writer.Get("photo", [&](Result<causal::CausalRead> r) { ok = r.ok(); });
    step_until(ok);
    ok = false;
    writer.Put("comment", "c" + std::to_string(t),
               [&](Result<causal::WriteId> r) { ok = r.ok(); });
    step_until(ok);

    // Sample the replication window: 8 paired fetches spaced 25 ms, with
    // plain sequential gets and a get-transaction at each sample point.
    bool plain_violated = false;
    bool any_would_violate = false;
    for (int probe = 0; probe < 8; ++probe) {
      std::optional<causal::CausalRead> photo, comment;
      bool got = false;
      cluster.Get(reader_node, dcs[2], "photo",
                  [&](Result<causal::CausalRead> r) {
                    got = true;
                    if (r.ok()) photo = *r;
                  });
      step_until(got);
      got = false;
      cluster.Get(reader_node, dcs[2], "comment",
                  [&](Result<causal::CausalRead> r) {
                    got = true;
                    if (r.ok()) comment = *r;
                  });
      step_until(got);
      const bool v = photo && comment && violates(*photo, *comment);
      plain_violated |= v;
      any_would_violate |= v;

      bool gt_got = false;
      std::vector<causal::CausalRead> gt;
      cluster.GetTransaction(reader_node, dcs[2], {"photo", "comment"},
                             [&](Result<std::vector<causal::CausalRead>> r) {
                               gt_got = true;
                               if (r.ok()) gt = std::move(*r);
                             });
      step_until(gt_got);
      if (gt.size() == 2 && violates(gt[0], gt[1])) ++stats.gt_violations;
      sim.RunFor(25 * kMillisecond);
    }
    if (plain_violated) ++stats.plain_violations;
    // Round 2 fires when round-1 caught an inconsistency — same condition
    // the plain reads expose.
    if (any_would_violate) ++stats.gt_second_rounds;
    sim.RunFor(50 * kMillisecond);
  }
  return stats;
}

}  // namespace

int main() {
  bench::Harness harness("tab5_get_transactions");
  harness.Table("jitter_sweep", {"jitter", "trials", "plain_violations",
                                 "gt_violations", "gt_second_rounds"});
  std::printf(
      "=== Table 5: plain pair-reads vs get-transactions (COPS-GT) ===\n"
      "writer EU -> photo then comment; reader Asia fetches the pair\n\n");
  std::printf("%-10s %-8s %-18s %-16s %-18s\n", "jitter", "trials",
              "plain violations", "GT violations", "~2nd rounds");
  std::printf("----------------------------------------------------------"
              "-----\n");
  for (double jitter : {0.05, 0.50, 1.00, 2.00}) {
    const TrialStats s =
        Run(jitter, 150, 100 + static_cast<uint64_t>(jitter * 10));
    std::printf("%-10.2f %-8d %-18d %-16d %-18d\n", jitter, s.trials,
                s.plain_violations, s.gt_violations, s.gt_second_rounds);
    harness.Row("jitter_sweep",
                {obs::Json(jitter), obs::Json(s.trials),
                 obs::Json(s.plain_violations), obs::Json(s.gt_violations),
                 obs::Json(s.gt_second_rounds)});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: plain pair-reads return causally inconsistent\n"
      "pairs once WAN jitter makes arrivals straddle the read window;\n"
      "get-transactions return ZERO inconsistent\n"
      "pairs at every jitter level, paying a second local round roughly as\n"
      "often as the plain reads would have erred.\n");
  return 0;
}
