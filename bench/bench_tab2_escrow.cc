// Table 2 — Escrow vs naive replicated counter under contention.
//
// Claim (tutorial, after O'Neil): a replicated counter maintained by local
// check-then-decrement oversells under concurrency (the classic flash-sale
// bug); escrow reservations keep the invariant with almost entirely local
// work, coordinating only to rebalance shares.
//
// Setup: 4 replicas, stock of 500 units, B concurrent buyers each grabbing
// one unit, all in flight simultaneously. Sweep B.

#include <cstdio>
#include <memory>

#include "harness.h"
#include "txn/escrow.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Outcome {
  int ok = 0;
  int aborted = 0;
  int64_t oversold = 0;
  uint64_t transfers = 0;
};

Outcome RunEscrow(int buyers, uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             5 * kMillisecond, 50 * kMillisecond));
  sim::Rpc rpc(&net);
  txn::EscrowCluster escrow(&rpc, 4, 500);
  const sim::NodeId client = net.AddNode();
  Rng rng(seed);
  Outcome out;
  for (int b = 0; b < buyers; ++b) {
    // Skewed routing (60% of buyers hit replica 0): the hot replica's
    // share drains first and escrow must rebalance from its peers.
    const int replica = rng.NextBool(0.6) ? 0 : 1 + b % 3;
    escrow.Acquire(client, replica, 1, [&](Result<int64_t> r) {
      r.ok() ? ++out.ok : ++out.aborted;
    });
  }
  sim.RunFor(120 * kSecond);
  out.oversold = escrow.total_acquired() > 500
                     ? escrow.total_acquired() - 500
                     : 0;
  out.transfers = escrow.stats().transfers;
  return out;
}

Outcome RunNaive(int buyers, uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             5 * kMillisecond, 50 * kMillisecond));
  sim::Rpc rpc(&net);
  txn::NaiveCounterCluster naive(&rpc, 4, 500);
  const sim::NodeId client = net.AddNode();
  Outcome out;
  for (int b = 0; b < buyers; ++b) {
    naive.Acquire(client, b % 4, 1, [&](Result<int64_t> r) {
      r.ok() ? ++out.ok : ++out.aborted;
    });
  }
  sim.RunFor(120 * kSecond);
  out.oversold = naive.Oversold();
  return out;
}

}  // namespace

int main() {
  bench::Harness harness("tab2_escrow");
  harness.Table("contention",
                {"buyers", "naive_sold", "naive_aborted", "naive_oversold",
                 "escrow_sold", "escrow_aborted", "escrow_transfers"});
  std::printf(
      "=== Table 2: selling 500 units from 4 replicas, B concurrent "
      "buyers ===\n\n");
  std::printf("%-8s | %-28s | %-28s\n", "", "naive counter", "escrow");
  std::printf("%-8s | %-8s %-8s %-10s | %-8s %-8s %-10s\n", "buyers", "sold",
              "aborted", "OVERSOLD", "sold", "aborted", "transfers");
  std::printf("---------+------------------------------+------------------"
              "-----------\n");
  for (int buyers : {100, 400, 600, 1000, 2000}) {
    const Outcome naive = RunNaive(buyers, 17 + buyers);
    const Outcome escrow = RunEscrow(buyers, 23 + buyers);
    std::printf("%-8d | %-8d %-8d %-10lld | %-8d %-8d %-10llu\n", buyers,
                naive.ok, naive.aborted,
                static_cast<long long>(naive.oversold), escrow.ok,
                escrow.aborted,
                static_cast<unsigned long long>(escrow.transfers));
    EVC_CHECK(escrow.oversold == 0);
    harness.Row("contention",
                {obs::Json(buyers), obs::Json(naive.ok),
                 obs::Json(naive.aborted), obs::Json(naive.oversold),
                 obs::Json(escrow.ok), obs::Json(escrow.aborted),
                 obs::Json(escrow.transfers)});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: once buyers exceed the stock, the naive counter\n"
      "oversells (sold > 500) — more so at higher concurrency, because all\n"
      "4 replicas sell against stale caches. Escrow never exceeds 500;\n"
      "its only coordination is the handful of share transfers.\n");
  return 0;
}
