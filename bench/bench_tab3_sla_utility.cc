// Table 3 — Consistency SLAs (Pileus): utility adapts to client placement.
//
// Claim (tutorial, after Terry et al.): with a (latency, consistency,
// utility) SLA, the client library delivers the best consistency each
// client's position affords: near the primary it serves strong reads at
// full utility; far away it degrades to bounded-staleness or eventual
// reads instead of failing or stalling. Mean delivered utility per client
// placement is the reproduced table.
//
// Setup: primary in US-East, secondary in Asia; clients in US-East, EU,
// Asia; writer keeps the key warm; 50 SLA reads per client.

#include <cstdio>
#include <memory>
#include <vector>

#include "harness.h"
#include "sla/pileus.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

sla::Sla StandardSla() {
  return sla::Sla{
      {50 * kMillisecond, sla::ReadConsistency::kStrong, 0, 1.0},
      {120 * kMillisecond, sla::ReadConsistency::kBounded,
       800 * kMillisecond, 0.6},
      {kSecond, sla::ReadConsistency::kEventual, 0, 0.2},
  };
}

struct PlacementResult {
  double mean_utility = 0;
  double mean_latency_ms = 0;
  uint64_t row0 = 0, row1 = 0, row2 = 0, row_none = 0;
};

PlacementResult RunPlacement(int client_dc, uint64_t seed) {
  sim::Simulator sim(seed);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs());
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  sla::PileusOptions options;
  options.sync_interval = 200 * kMillisecond;
  sla::PileusCluster cluster(&rpc, options);
  const sim::NodeId primary = cluster.AddPrimary();
  wan->AssignNode(primary, 0);  // US-East
  const sim::NodeId secondary = cluster.AddSecondary();
  wan->AssignNode(secondary, 2);  // Asia
  cluster.Start();

  const sim::NodeId writer = net.AddNode();
  wan->AssignNode(writer, 0);
  const sim::NodeId client_node = net.AddNode();
  wan->AssignNode(client_node, client_dc);
  sla::PileusClient client(&cluster, &sim, client_node, StandardSla());

  // Warm the key and the client's monitors.
  bool ok = false;
  cluster.Put(writer, "item", "v0", [&](Result<uint64_t> r) { ok = r.ok(); });
  sim.RunFor(2 * kSecond);
  EVC_CHECK(ok);
  bool probed = false;
  client.Probe("item", [&] { probed = true; });
  sim.RunFor(2 * kSecond);
  EVC_CHECK(probed);

  PlacementResult result;
  OnlineStats latency_stats;
  for (int i = 0; i < 50; ++i) {
    // Keep the data warm: a write every other read, so staleness at the
    // secondary reflects the sync interval.
    if (i % 2 == 0) {
      cluster.Put(writer, "item", "v" + std::to_string(i),
                  [](Result<uint64_t>) {});
    }
    bool done = false;
    client.Get("item", [&](Result<sla::SlaReadResult> r) {
      done = true;
      if (!r.ok()) return;
      latency_stats.Add(static_cast<double>(r->observed_latency));
      switch (r->delivered_row) {
        case 0: ++result.row0; break;
        case 1: ++result.row1; break;
        case 2: ++result.row2; break;
        default: ++result.row_none; break;
      }
    });
    sim.RunFor(2 * kSecond);
    EVC_CHECK(done);
  }
  result.mean_utility = client.stats().delivered_utility.mean();
  result.mean_latency_ms = latency_stats.mean() / kMillisecond;
  return result;
}

}  // namespace

int main() {
  bench::Harness harness("tab3_sla_utility");
  harness.Table("placements",
                {"client_dc", "mean_utility", "mean_latency_ms",
                 "reads_strong", "reads_bounded", "reads_eventual",
                 "reads_missed"});
  std::printf(
      "=== Table 3: Pileus SLA — delivered utility by client placement ===\n"
      "SLA: [strong@50ms -> 1.0 | bounded(800ms)@120ms -> 0.6 | "
      "eventual@1s -> 0.2]\n"
      "primary: US-East; secondary: Asia\n\n");
  std::printf("%-10s %-14s %-14s %-24s\n", "client", "mean utility",
              "mean lat ms", "reads/row (strong|bnd|ev|miss)");
  std::printf("----------------------------------------------------------"
              "------\n");
  const char* names[] = {"US-East", "EU", "Asia"};
  for (int dc = 0; dc < 3; ++dc) {
    const PlacementResult r = RunPlacement(dc, 71 + static_cast<uint64_t>(dc));
    std::printf("%-10s %-14.3f %-14.1f %llu | %llu | %llu | %llu\n",
                names[dc], r.mean_utility, r.mean_latency_ms,
                static_cast<unsigned long long>(r.row0),
                static_cast<unsigned long long>(r.row1),
                static_cast<unsigned long long>(r.row2),
                static_cast<unsigned long long>(r.row_none));
    harness.Row("placements",
                {obs::Json(names[dc]), obs::Json(r.mean_utility),
                 obs::Json(r.mean_latency_ms), obs::Json(r.row0),
                 obs::Json(r.row1), obs::Json(r.row2),
                 obs::Json(r.row_none)});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: the US-East client earns ~1.0 (strong row, local\n"
      "primary); the Asia client earns ~0.2-0.6 from its local secondary\n"
      "(bounded when fresh enough, else eventual) — far better than the 0\n"
      "a fixed strong-only policy would deliver within its latency bound;\n"
      "the EU client lands in between, picking whichever side wins.\n");
  return 0;
}
