// Simcore throughput — the tentpole measurement for the calendar-queue
// scheduler rebuild.
//
// A synthetic event-churn workload modeled on what the protocol layers
// actually put through the scheduler (message deliveries fanning out to
// random peers, plus the timer complement a resilient RPC call arms on
// every hop — timeout, retry deadline, hedge trigger — all cancelled by the
// next delivery, the pattern that dominates real runs) executes at
// N = 10 / 100 / 1000 nodes under BOTH schedulers:
//
//   * SchedulerKind::kCalendar — timing wheel + slab-backed closures;
//   * SchedulerKind::kLegacyHeap — the seed's binary heap + per-event heap
//     allocation + hash-set cancellation, kept exactly for this comparison.
//
// Both run the identical event sequence (the differential harness in
// tests/simcore_diff_test.cc proves the ordering contract; this bench
// EVC_CHECKs the executed-event counts agree), so the wall-clock ratio is a
// pure scheduler/allocator measurement. Headline metrics:
//
//   events_per_sec_n<N>_{calendar,legacy}   raw scheduler throughput
//   sim_x_realtime_n<N>_{calendar,legacy}   sim-seconds per wall-second
//   calendar_speedup_n<N>                   calendar / legacy events-per-sec
//
// CI gates on calendar_speedup_n1000 via evc_bench_check --floor: the
// acceptance bar is >= 3x, and the floor is set 20% under the bar so a
// throughput regression fails the bench-smoke job without making CI
// sensitive to absolute machine speed.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr uint64_t kSeed = 42;
constexpr int kChainsPerNode = 2;
// Every hop arms the timer complement a resilient RPC call does — overall
// timeout, retry deadline, and hedge trigger — and the next delivery
// disarms all of them. Almost every scheduled timer is cancelled before it
// fires, the dominant pattern real protocol runs feed the scheduler.
constexpr int kTimersPerHop = 4;
constexpr sim::Time kTimeout = 250 * kMillisecond;

// Wall-clock timing is the entire point of a throughput bench; nothing read
// here ever feeds back into simulation state, so determinism is preserved.
double WallSeconds(const std::function<void()>& fn) {
  // evc-lint: allow(wall-clock) reason=throughput bench timing; never sim-visible
  const auto start = std::chrono::steady_clock::now();
  fn();
  // evc-lint: allow(wall-clock) reason=throughput bench timing; never sim-visible
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

struct RunResult {
  uint64_t events = 0;
  double wall_s = 0;
  double sim_s = 0;
  double events_per_sec = 0;
  double sim_x_realtime = 0;
};

// Virtual-time horizon per cluster size, tuned so every configuration pushes
// a six-figure event count through the queue without the legacy baseline
// blowing the CI time budget.
sim::Time HorizonFor(int n) {
  if (n <= 10) return 60 * kSecond;
  if (n <= 100) return 10 * kSecond;
  return 2 * kSecond;
}

RunResult RunChurn(int n, sim::SchedulerKind kind) {
  sim::Simulator sim(kSeed, kind);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             1 * kMillisecond, 20 * kMillisecond));

  std::vector<sim::NodeId> nodes;
  nodes.reserve(n);
  for (int i = 0; i < n; ++i) nodes.push_back(net.AddNode());
  const sim::MsgType ping = net.InternType("perf.ping");

  // Shared workload RNG: both schedulers execute events in the identical
  // (when, seq) order, so the draw sequence — and therefore the whole event
  // graph — is the same in both runs.
  auto rng = std::make_shared<Rng>(kSeed * 31);
  auto timers = std::make_shared<std::vector<sim::EventId>>(
      static_cast<size_t>(n) * kTimersPerHop, 0);

  for (int i = 0; i < n; ++i) {
    net.RegisterHandler(nodes[i], ping, [&sim, &net, &nodes, rng, timers, i,
                                         ping](sim::Message msg) {
      // The previous hop's timers are disarmed by this delivery.
      for (int t = 0; t < kTimersPerHop; ++t) {
        sim::EventId& slot = (*timers)[static_cast<size_t>(i) * kTimersPerHop +
                                       static_cast<size_t>(t)];
        if (slot != 0) sim.Cancel(slot);
        slot = sim.ScheduleAfter(kTimeout + t * 17 * kMillisecond, [] {});
      }
      const auto next = static_cast<size_t>(rng->NextBounded(nodes.size()));
      net.Send(msg.to, nodes[next], ping, msg.sent_at);
    });
  }

  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < kChainsPerNode; ++c) {
      const auto next = static_cast<size_t>(rng->NextBounded(nodes.size()));
      net.Send(nodes[i], nodes[next], ping, sim::Time{0});
    }
  }

  const sim::Time horizon = HorizonFor(n);
  RunResult r;
  r.wall_s = WallSeconds([&] { sim.RunUntil(horizon); });
  r.events = sim.events_executed();
  r.sim_s = static_cast<double>(horizon) / kSecond;
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  r.sim_x_realtime = r.sim_s / r.wall_s;
  return r;
}

}  // namespace

int main() {
  bench::Harness h("perf_simcore");
  h.Note("workload",
         "2 ping chains/node, random peer fan-out, 4 staggered 250-300ms "
         "timers armed per hop and cancelled on the next delivery; uniform "
         "1-20ms latency");
  h.Note("expected",
         "calendar queue >= 3x legacy events/sec at N=1000; CI floors the "
         "speedup at 2.4 (bar minus 20%)");
  h.Table("throughput",
          {"nodes", "scheduler", "events", "wall_s", "events_per_sec",
           "sim_x_realtime"});

  std::printf("%6s %10s %12s %10s %14s %14s\n", "nodes", "scheduler",
              "events", "wall_s", "events/sec", "sim x realtime");
  for (int n : {10, 100, 1000}) {
    const RunResult cal = RunChurn(n, sim::SchedulerKind::kCalendar);
    const RunResult leg = RunChurn(n, sim::SchedulerKind::kLegacyHeap);
    // Same seed + same ordering contract => identical event graphs. A
    // mismatch means the schedulers diverged and the comparison is invalid.
    EVC_CHECK(cal.events == leg.events);

    for (const auto& [name, r] :
         {std::pair<const char*, const RunResult&>{"calendar", cal},
          std::pair<const char*, const RunResult&>{"legacy", leg}}) {
      std::printf("%6d %10s %12llu %10.3f %14.0f %14.1f\n", n, name,
                  static_cast<unsigned long long>(r.events), r.wall_s,
                  r.events_per_sec, r.sim_x_realtime);
      const std::string suffix =
          "_n" + std::to_string(n) + "_" + name;
      h.Metric("events_per_sec" + suffix, r.events_per_sec);
      h.Metric("sim_x_realtime" + suffix, r.sim_x_realtime);
      h.Row("throughput", {obs::Json(static_cast<double>(n)),
                           obs::Json(std::string(name)),
                           obs::Json(static_cast<double>(r.events)),
                           obs::Json(r.wall_s), obs::Json(r.events_per_sec),
                           obs::Json(r.sim_x_realtime)});
    }
    const double speedup = cal.events_per_sec / leg.events_per_sec;
    h.Metric("calendar_speedup_n" + std::to_string(n), speedup);
    std::printf("%6d %10s %12s %10s %14.2fx\n", n, "speedup", "", "",
                speedup);
  }

  const Status st = h.Write();
  if (!st.ok()) {
    std::fprintf(stderr, "bench output write failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
