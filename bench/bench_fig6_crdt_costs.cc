// Fig. 6 — CRDT costs: throughput, state growth, delta vs full-state.
//
// Claims (tutorial): CRDT operations are cheap (local data-structure work);
// the costs hide in *state*: tombstoned OR-sets grow without bound under
// churn while the optimized representation stays proportional to the live
// set, and delta replication ships orders of magnitude less than full
// state. google-benchmark microbenchmarks + a state-size table.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "clock/lamport.h"
#include "crdt/delta_orset.h"
#include "crdt/gcounter.h"
#include "crdt/orset.h"
#include "crdt/registers.h"
#include "crdt/rga.h"
#include "harness.h"

namespace {

using namespace evc;
using namespace evc::crdt;

void BM_GCounterIncrement(benchmark::State& state) {
  GCounter counter;
  uint32_t replica = 0;
  for (auto _ : state) {
    counter.Increment(replica++ % 16);
  }
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_GCounterIncrement);

void BM_GCounterMerge(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  GCounter a, b;
  for (int i = 0; i < replicas; ++i) {
    a.Increment(static_cast<uint32_t>(i), 5);
    b.Increment(static_cast<uint32_t>(i + replicas / 2), 7);
  }
  for (auto _ : state) {
    GCounter merged = a;
    merged.Merge(b);
    benchmark::DoNotOptimize(merged.Value());
  }
}
BENCHMARK(BM_GCounterMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_LwwRegisterSet(benchmark::State& state) {
  LwwRegister reg;
  uint64_t ts = 0;
  for (auto _ : state) {
    reg.Set("value", LamportTimestamp{++ts, 0});
  }
  benchmark::DoNotOptimize(reg.has_value());
}
BENCHMARK(BM_LwwRegisterSet);

void BM_OrSetAdd(benchmark::State& state) {
  OrSet set(0);
  uint64_t i = 0;
  for (auto _ : state) {
    set.Add("element" + std::to_string(i++ % 64));
  }
  benchmark::DoNotOptimize(set.size());
}
BENCHMARK(BM_OrSetAdd);

void BM_OrSwotAdd(benchmark::State& state) {
  OrSwot set(0);
  uint64_t i = 0;
  for (auto _ : state) {
    set.Add("element" + std::to_string(i++ % 64));
  }
  benchmark::DoNotOptimize(set.size());
}
BENCHMARK(BM_OrSwotAdd);

template <typename SetT>
void MergeBenchBody(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  SetT a(0), b(1);
  for (int i = 0; i < elements; ++i) {
    a.Add("a" + std::to_string(i));
    b.Add("b" + std::to_string(i));
    if (i % 3 == 0) {
      a.Remove("a" + std::to_string(i));
      b.Remove("b" + std::to_string(i));
    }
  }
  for (auto _ : state) {
    SetT merged = a;
    merged.Merge(b);
    benchmark::DoNotOptimize(merged.size());
  }
}

void BM_OrSetMerge(benchmark::State& state) { MergeBenchBody<OrSet>(state); }
BENCHMARK(BM_OrSetMerge)->Arg(64)->Arg(512)->Arg(4096);

void BM_OrSwotMerge(benchmark::State& state) { MergeBenchBody<OrSwot>(state); }
BENCHMARK(BM_OrSwotMerge)->Arg(64)->Arg(512)->Arg(4096);

void BM_RgaAppend(benchmark::State& state) {
  Rga doc(0);
  for (auto _ : state) {
    doc.PushBack("x");
  }
  benchmark::DoNotOptimize(doc.live_size());
}
BENCHMARK(BM_RgaAppend);

void BM_RgaMergeDivergentEdits(benchmark::State& state) {
  const int edits = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rga a(0), b(1);
    for (int i = 0; i < 50; ++i) a.PushBack("s");
    b.MergeFrom(a);
    for (int i = 0; i < edits; ++i) {
      a.PushBack("a");
      b.PushBack("b");
    }
    state.ResumeTiming();
    a.MergeFrom(b);
    benchmark::DoNotOptimize(a.live_size());
  }
}
BENCHMARK(BM_RgaMergeDivergentEdits)->Arg(16)->Arg(128);

}  // namespace

// Custom epilogue after the microbenchmarks: the state-size table.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  evc::bench::Harness harness("fig6_crdt_costs");
  harness.Note("microbench",
               "google-benchmark timings print to stdout only (wall-clock, "
               "not deterministic); the JSON keeps the state-size tables");
  harness.Table("state_growth", {"churn_ops", "tombstoned_bytes",
                                 "optimized_bytes", "ratio"});
  harness.Table("gcounter_delta",
                {"increments", "full_state_bytes", "delta_bytes"});
  harness.Table("orset_delta", {"live_items", "full_state_bytes",
                                "delta_bytes"});

  std::printf("\n=== Fig. 6b: OR-set state bytes after add/remove churn ===\n");
  std::printf("(each round adds then removes one of 16 hot items)\n\n");
  std::printf("%-12s %-18s %-18s %-8s\n", "churn ops", "tombstoned OrSet",
              "optimized OrSwot", "ratio");
  std::printf("------------------------------------------------------\n");
  for (int churn : {100, 1000, 10000, 50000}) {
    evc::crdt::OrSet tombstoned(0);
    evc::crdt::OrSwot optimized(0);
    for (int i = 0; i < churn; ++i) {
      const std::string item = "item" + std::to_string(i % 16);
      tombstoned.Add(item);
      tombstoned.Remove(item);
      optimized.Add(item);
      optimized.Remove(item);
    }
    const double ratio = static_cast<double>(tombstoned.StateBytes()) /
                         static_cast<double>(optimized.StateBytes());
    std::printf("%-12d %-18zu %-18zu %-8.1fx\n", churn,
                tombstoned.StateBytes(), optimized.StateBytes(), ratio);
    harness.Row("state_growth",
                {evc::obs::Json(churn),
                 evc::obs::Json(static_cast<uint64_t>(tombstoned.StateBytes())),
                 evc::obs::Json(static_cast<uint64_t>(optimized.StateBytes())),
                 evc::obs::Json(ratio)});
  }

  std::printf("\n=== Fig. 6c: delta vs full-state replication bytes ===\n");
  std::printf("(GCounter across 16 replicas, 1 increment shipped per sync)\n\n");
  std::printf("%-12s %-18s %-18s\n", "increments", "full-state bytes",
              "delta bytes");
  std::printf("--------------------------------------------\n");
  for (int increments : {10, 100, 1000, 10000}) {
    evc::crdt::GCounter full;
    size_t full_bytes = 0, delta_bytes = 0;
    for (int i = 0; i < increments; ++i) {
      const evc::crdt::GCounter delta =
          full.Increment(static_cast<uint32_t>(i % 16));
      full_bytes += full.StateBytes();   // shipping the whole state each time
      delta_bytes += delta.StateBytes(); // shipping only the delta
    }
    std::printf("%-12d %-18zu %-18zu\n", increments, full_bytes, delta_bytes);
    harness.Row("gcounter_delta",
                {evc::obs::Json(increments),
                 evc::obs::Json(static_cast<uint64_t>(full_bytes)),
                 evc::obs::Json(static_cast<uint64_t>(delta_bytes))});
  }

  std::printf("\n=== Fig. 6d: delta vs full-state OR-set (dot-cloud deltas) "
              "===\n");
  std::printf("(replica with L live items syncing one add to a peer)\n\n");
  std::printf("%-12s %-18s %-18s\n", "live items", "full-state bytes",
              "delta bytes");
  std::printf("--------------------------------------------\n");
  for (int live : {10, 100, 1000, 10000}) {
    evc::crdt::DeltaOrSet set(0);
    for (int i = 0; i < live; ++i) set.Add("item" + std::to_string(i));
    const evc::crdt::DeltaOrSet delta = set.Add("one-more");
    std::printf("%-12d %-18zu %-18zu\n", live, set.StateBytes(),
                delta.StateBytes());
    harness.Row("orset_delta",
                {evc::obs::Json(live),
                 evc::obs::Json(static_cast<uint64_t>(set.StateBytes())),
                 evc::obs::Json(static_cast<uint64_t>(delta.StateBytes()))});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: tombstoned state grows linearly with churn while\n"
      "the optimized set stays flat (ratio grows unboundedly); delta\n"
      "replication bytes stay ~constant per op while full-state grows\n"
      "with the replica count represented in the counter.\n");
  return 0;
}
