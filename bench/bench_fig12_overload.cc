// Fig. 12 — Overload defenses turn a metastable collapse into a bounded dip.
//
// The trigger (Bronson et al., "Metastable Failures in Distributed
// Systems", HotOS '21): a 5x flash crowd whose hot keys also shift lands on
// a quorum store running at ~65% utilization. Two same-seed arms:
//
//   defenses-off: effectively unbounded server queues, no sojourn shedding,
//     retry-happy clients (4 attempts, narrow-band jitter, no budgets, no
//     concurrency limits). The spike fills the queues past the point where
//     every served request has already been abandoned by its caller; after
//     the crowd leaves, retry amplification alone keeps arrival above
//     capacity, so goodput stays collapsed — the metastable state.
//
//   defenses-on: the same crowd against bounded priority queues with
//     CoDel-style sojourn drops and kResourceExhausted+retry-after sheds,
//     and clients with per-destination retry budgets, AIMD concurrency
//     limits, and full-jitter backoff. Excess load is shed while it lasts;
//     within the recovery window goodput is back to >= 90% of the warm
//     baseline (the CI-floored claim: goodput_recovery >= 0.90).
//
// Both arms share the identical capacity model (admission gates installed,
// 2 slots x 2ms service time per node) so the only variable is the defense.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/distributions.h"
#include "common/rng.h"
#include "common/stats.h"
#include "harness.h"
#include "replication/quorum_store.h"
#include "sim/latency.h"
#include "workload/shapes.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr uint64_t kSeed = 120;
constexpr int kServers = 5;
constexpr int kClients = 4;
constexpr int kKeyspace = 64;
// 4 clients x one op per 5ms = 800 ops/s offered. Each op crosses ~4 gated
// requests (client RPC + N=3 replica legs) against 5 nodes x 2 slots / 2ms
// = 5000 requests/s of capacity: ~65% utilization before the spike.
constexpr sim::Time kNominalGap = 5 * kMillisecond;
constexpr double kSpikeMultiplier = 5.0;
constexpr sim::Time kArrivalsStart = 1 * kSecond;
constexpr sim::Time kSpikeStart = 5 * kSecond;
constexpr sim::Time kSpikeEnd = 10 * kSecond;
constexpr sim::Time kWarmStart = 2 * kSecond;   // goodput baseline window
constexpr sim::Time kRecoveryStart = 12 * kSecond;  // 2s of post-spike slack
constexpr sim::Time kArrivalsEnd = 20 * kSecond;
constexpr sim::Time kRunUntil = 21 * kSecond;

struct ArmResult {
  std::vector<uint64_t> ok_per_sec;
  std::vector<uint64_t> offered_per_sec;
  double warm_goodput = 0;      // ops/s completing OK, [2s, 5s)
  double spike_goodput = 0;     // [5s, 10s)
  double recovery_goodput = 0;  // [12s, 20s)
  double warm_p99_ms = 0;
  double recovery_p99_ms = 0;
  uint64_t shed_total = 0;
  uint64_t shed_sojourn = 0;
  uint64_t shed_background = 0;
  uint64_t budget_exhausted = 0;
  uint64_t limit_rejects = 0;
  uint64_t resource_exhausted = 0;
  uint64_t late_replies = 0;
};

double WindowRate(const std::vector<uint64_t>& per_sec, sim::Time begin,
                  sim::Time end) {
  uint64_t total = 0;
  for (sim::Time s = begin / kSecond; s < end / kSecond; ++s) {
    total += per_sec[static_cast<size_t>(s)];
  }
  return static_cast<double>(total) /
         (static_cast<double>(end - begin) / kSecond);
}

ArmResult RunArm(bool defenses, uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim,
                   std::make_unique<sim::ConstantLatency>(2 * kMillisecond));
  sim::Rpc rpc(&net);

  repl::QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = 2;
  config.write_quorum = 2;
  config.sloppy = false;  // strict quorum: every failure is overload-caused
  config.client_attempts = 4;
  // Identical capacity model in both arms; only the defenses differ.
  config.admission_enabled = true;
  config.admission.max_concurrent = 2;
  config.admission.service_time = 2 * kMillisecond;
  // The breaker stays off in both arms so recovery (or collapse) is
  // attributable to the queue discipline and retry policy alone.
  config.resilience.breaker_enabled = false;
  if (defenses) {
    config.resilience.retry_budget.enabled = true;
    config.resilience.aimd.enabled = true;
    // Bounded queues + sojourn shed + retry-after are the AdmissionOptions
    // defaults; full-jitter backoff is the RetryOptions default.
  } else {
    // The "naive" server: a queue so deep it never rejects, no sojourn
    // bound — queueing delay is unbounded, which is what sustains the
    // collapsed state.
    config.admission.foreground_queue_limit = 100000;
    config.admission.background_queue_limit = 100000;
    config.admission.sojourn_target = 0;
    config.resilience.retry.jitter_mode =
        resilience::JitterMode::kEqual;  // the synchronized-wave legacy
  }

  repl::DynamoCluster cluster(&rpc, config);
  const auto servers = cluster.AddServers(kServers);

  Rng root(seed ^ 0xf1a5c0ULL);
  std::vector<Rng> streams;
  std::vector<sim::NodeId> clients;
  for (int c = 0; c < kClients; ++c) {
    streams.push_back(root.Fork(static_cast<uint64_t>(c)));
    clients.push_back(net.AddNode());
  }

  // Preload the keyspace before measurement starts.
  for (int k = 0; k < kKeyspace; ++k) {
    cluster.Put(clients[0], servers[static_cast<size_t>(k) % kServers],
                "k" + std::to_string(k), "v0", {}, [](Result<Version>) {});
    sim.RunFor(10 * kMillisecond);
  }

  // The trigger: load multiplies AND the hot set moves.
  workload::FlashCrowd crowd({/*base_multiplier=*/1.0, kSpikeMultiplier,
                              kSpikeStart, kSpikeEnd - kSpikeStart,
                              /*ramp=*/0});
  workload::HotKeyShift keys(
      std::make_unique<ZipfianDistribution>(kKeyspace), seed ^ 0x5117ULL);
  sim.ScheduleAfter(kSpikeStart - sim.Now(), [&] { keys.Shift(); });

  ArmResult result;
  result.ok_per_sec.assign(static_cast<size_t>(kRunUntil / kSecond) + 1, 0);
  result.offered_per_sec = result.ok_per_sec;
  Histogram warm_latency, recovery_latency;

  std::function<void(int)> arrive = [&](int c) {
    const sim::Time now = sim.Now();
    if (now >= kArrivalsEnd) return;
    sim.ScheduleAfter(crowd.GapAt(now, kNominalGap), [&, c] { arrive(c); });

    Rng& rng = streams[static_cast<size_t>(c)];
    const std::string key = "k" + std::to_string(keys.Next(rng));
    const sim::NodeId coord = servers[rng.NextBounded(kServers)];
    ++result.offered_per_sec[static_cast<size_t>(now / kSecond)];
    auto done = [&, issued = now](bool ok) {
      if (!ok) return;
      const sim::Time at = sim.Now();
      ++result.ok_per_sec[std::min(result.ok_per_sec.size() - 1,
                                   static_cast<size_t>(at / kSecond))];
      const double latency = static_cast<double>(at - issued);
      if (issued >= kWarmStart && issued < kSpikeStart) {
        warm_latency.Add(latency);
      } else if (issued >= kRecoveryStart && issued < kArrivalsEnd) {
        recovery_latency.Add(latency);
      }
    };
    if (rng.NextBool(0.5)) {
      cluster.Put(clients[static_cast<size_t>(c)], coord, key,
                  "v" + std::to_string(now), {},
                  [done](Result<Version> r) { done(r.ok()); });
    } else {
      cluster.Get(clients[static_cast<size_t>(c)], coord, key,
                  [done](Result<repl::ReadResult> r) { done(r.ok()); });
    }
  };
  for (int c = 0; c < kClients; ++c) {
    sim.ScheduleAfter(kArrivalsStart - sim.Now() +
                          static_cast<sim::Time>(c) * kMillisecond + 1,
                      [&, c] { arrive(c); });
  }

  sim.RunFor(kRunUntil - sim.Now());

  result.warm_goodput = WindowRate(result.ok_per_sec, kWarmStart, kSpikeStart);
  result.spike_goodput = WindowRate(result.ok_per_sec, kSpikeStart, kSpikeEnd);
  result.recovery_goodput =
      WindowRate(result.ok_per_sec, kRecoveryStart, kArrivalsEnd);
  result.warm_p99_ms = warm_latency.Percentile(0.99) / kMillisecond;
  result.recovery_p99_ms = recovery_latency.Percentile(0.99) / kMillisecond;
  for (sim::NodeId node : servers) {
    const resilience::AdmissionStats& a = cluster.admission(node)->stats();
    result.shed_total += a.total_shed();
    result.shed_sojourn += a.shed_sojourn;
    result.shed_background += a.shed_background;
  }
  auto& obs = sim.metrics().global();
  result.budget_exhausted =
      obs.CounterFor("resilience.budget_exhausted").value();
  result.limit_rejects = obs.CounterFor("resilience.limit_rejects").value();
  result.resource_exhausted =
      obs.CounterFor("resilience.resource_exhausted_replies").value();
  result.late_replies = obs.CounterFor("rpc.late_replies").value();
  return result;
}

}  // namespace

int main() {
  bench::Harness harness("fig12_overload");
  harness.Table("goodput_per_sec", {"second", "offered_off", "ok_off",
                                    "offered_on", "ok_on"});
  harness.Table("arms",
                {"mode", "warm_ops_s", "spike_ops_s", "recovery_ops_s",
                 "shed_total", "budget_exhausted", "limit_rejects"});

  std::printf("=== Fig. 12: %.0fx flash crowd + hot-key shift, defenses "
              "off vs on ===\n\n",
              kSpikeMultiplier);

  const ArmResult off = RunArm(/*defenses=*/false, kSeed);
  const ArmResult on = RunArm(/*defenses=*/true, kSeed);

  std::printf("%-14s %-12s %-12s %-14s %-10s %-10s\n", "mode", "warm op/s",
              "spike op/s", "recover op/s", "shed", "late");
  std::printf(
      "------------------------------------------------------------------\n");
  for (const auto* arm : {&off, &on}) {
    const char* mode = arm == &off ? "defenses-off" : "defenses-on";
    std::printf("%-14s %-12.0f %-12.0f %-14.0f %-10llu %-10llu\n", mode,
                arm->warm_goodput, arm->spike_goodput, arm->recovery_goodput,
                static_cast<unsigned long long>(arm->shed_total),
                static_cast<unsigned long long>(arm->late_replies));
    harness.Row("arms",
                {std::string(mode), arm->warm_goodput, arm->spike_goodput,
                 arm->recovery_goodput, static_cast<double>(arm->shed_total),
                 static_cast<double>(arm->budget_exhausted),
                 static_cast<double>(arm->limit_rejects)});
  }
  for (size_t s = 0; s < off.ok_per_sec.size(); ++s) {
    harness.Row("goodput_per_sec",
                {static_cast<double>(s),
                 static_cast<double>(off.offered_per_sec[s]),
                 static_cast<double>(off.ok_per_sec[s]),
                 static_cast<double>(on.offered_per_sec[s]),
                 static_cast<double>(on.ok_per_sec[s])});
  }

  // The two headline ratios. goodput_recovery is CI-floored at 0.90;
  // collapse_depth_off documents that the off arm really collapsed and
  // STAYED collapsed after the crowd left (floored at 0.50 = lost more
  // than half its goodput, measured ~1.0 = total collapse).
  const double recovery_ratio =
      off.warm_goodput > 0 && on.warm_goodput > 0
          ? on.recovery_goodput / on.warm_goodput
          : 0.0;
  const double collapse_depth =
      off.warm_goodput > 0 ? 1.0 - off.recovery_goodput / off.warm_goodput
                           : 0.0;
  std::printf(
      "\ndefenses-off kept only %.0f%% of warm goodput after the crowd left "
      "(metastable); defenses-on recovered %.0f%% (p99 %.1fms -> %.1fms)\n",
      100.0 * (1.0 - collapse_depth), 100.0 * recovery_ratio, on.warm_p99_ms,
      on.recovery_p99_ms);

  harness.Metric("goodput_recovery", recovery_ratio);
  harness.Metric("collapse_depth_off", collapse_depth);
  harness.Metric("warm_ops_s_on", on.warm_goodput);
  harness.Metric("spike_ops_s_on", on.spike_goodput);
  harness.Metric("recovery_ops_s_on", on.recovery_goodput);
  harness.Metric("warm_ops_s_off", off.warm_goodput);
  harness.Metric("recovery_ops_s_off", off.recovery_goodput);
  harness.Metric("shed_total_on", static_cast<double>(on.shed_total));
  harness.Metric("shed_sojourn_on", static_cast<double>(on.shed_sojourn));
  harness.Metric("budget_exhausted_on",
                 static_cast<double>(on.budget_exhausted));
  harness.Metric("limit_rejects_on", static_cast<double>(on.limit_rejects));
  harness.Metric("resource_exhausted_on",
                 static_cast<double>(on.resource_exhausted));
  harness.Metric("late_replies_off", static_cast<double>(off.late_replies));
  harness.Metric("warm_p99_ms_on", on.warm_p99_ms);
  harness.Metric("recovery_p99_ms_on", on.recovery_p99_ms);
  harness.Note("claim",
               "a 5x flash crowd with a hot-key shift collapses the "
               "undefended store and retry amplification keeps it collapsed "
               "after load recedes; admission control + retry budgets + "
               "AIMD + full jitter shed the excess and restore >= 90% of "
               "warm goodput within 2s of the crowd leaving");
  harness.Note("config",
               "N=3 R=W=2 strict quorum, 5 servers x 2 slots x 2ms service "
               "(~1250 op/s capacity), 4 open-loop clients at 800 op/s, "
               "spike over [5s,10s), recovery window [12s,20s)");
  const Status st = harness.Write();
  if (!st.ok()) return 1;
  return 0;
}
