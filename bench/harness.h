// Shared result harness for the bench binaries.
//
// Every bench keeps its human-readable stdout tables, and additionally
// registers its numbers here so the run also produces a machine-readable
// `BENCH_<name>.json` (schema `evc-bench-v1`). The export is deterministic:
// same binary + same seeds => byte-identical JSON (no wall-clock timestamps,
// sorted keys, fixed float formatting), which lets CI diff bench output
// across commits.
//
// Schema `evc-bench-v1`:
//   {
//     "schema":  "evc-bench-v1",
//     "name":    "<bench name>",
//     "metrics": { "<metric>": <number>, ... },
//     "notes":   { "<key>": "<string>", ... },
//     "tables":  { "<table>": { "columns": ["c1", ...],
//                               "rows": [[v, ...], ...] }, ... },
//     "sim":     { <evc-metrics-v1 document> }        // optional, AttachSim
//   }
//
// Output location: `$EVC_BENCH_OUT/BENCH_<name>.json` when the environment
// variable is set (CI points it at the artifact directory), else the
// current working directory.

#ifndef EVC_BENCH_HARNESS_H_
#define EVC_BENCH_HARNESS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace evc::sim {
class Simulator;
}  // namespace evc::sim

namespace evc::bench {

class Harness {
 public:
  /// `name` names the output file: BENCH_<name>.json.
  explicit Harness(std::string name);

  /// Records a scalar headline metric (overwrites on re-record).
  void Metric(const std::string& metric, double value);

  /// Records a free-form string annotation (config, expected shape, ...).
  void Note(const std::string& key, std::string value);

  /// Declares a table and its column names. Must precede Row() for `table`.
  void Table(const std::string& table, std::vector<std::string> columns);

  /// Appends one row; `values.size()` must equal the declared column count.
  void Row(const std::string& table, std::vector<obs::Json> values);

  /// Snapshots a simulator's metrics registries into the "sim" section
  /// (evc-metrics-v1). Last call wins; benches that run many simulators
  /// typically attach the final/representative one or none at all.
  void AttachSim(const sim::Simulator& sim);

  /// The full evc-bench-v1 document.
  std::string ToJson() const;

  /// Writes BENCH_<name>.json (see file comment for where). Logs and
  /// returns the error on failure; benches treat that as fatal.
  Status Write() const;

 private:
  struct TableData {
    std::vector<std::string> columns;
    std::vector<std::vector<obs::Json>> rows;
  };

  std::string name_;
  std::map<std::string, double> metrics_;
  std::map<std::string, std::string> notes_;
  std::map<std::string, TableData> tables_;
  obs::Json sim_;  // null until AttachSim
};

}  // namespace evc::bench

#endif  // EVC_BENCH_HARNESS_H_
