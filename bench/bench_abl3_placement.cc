// Ablation 3 — key placement: modulo walk vs consistent hashing w/ vnodes.
//
// The tutorial's partitioning discussion motivates Dynamo's consistent-hash
// ring: (a) load balance across servers, tunable by virtual-node count, and
// (b) minimal key movement when membership changes (modulo placement
// remaps nearly everything).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/hash.h"
#include "harness.h"
#include "replication/hash_ring.h"

using namespace evc;
using repl::HashRing;

namespace {

// Primary ownership imbalance: hottest server's share / fair share.
double Imbalance(const std::map<sim::NodeId, int>& owned, int keys,
                 int servers) {
  int max_owned = 0;
  for (const auto& [node, count] : owned) {
    max_owned = std::max(max_owned, count);
  }
  return static_cast<double>(max_owned) / (static_cast<double>(keys) / servers);
}

void BalanceSweep(bench::Harness* out) {
  std::printf("--- (a) primary-load imbalance, 8 servers, 50k keys ---\n");
  std::printf("%-16s %-12s\n", "placement", "max/fair");
  std::printf("------------------------------\n");
  const int keys = 50000;
  const int servers = 8;
  // Modulo placement is perfectly balanced by construction over a uniform
  // keyspace — its problem is remapping, shown in (b).
  {
    std::map<sim::NodeId, int> owned;
    for (int i = 0; i < keys; ++i) {
      owned[Fnv1a64("key" + std::to_string(i)) % servers]++;
    }
    const double imbalance = Imbalance(owned, keys, servers);
    std::printf("%-16s %-12.3f\n", "modulo", imbalance);
    out->Row("balance", {obs::Json("modulo"), obs::Json(imbalance)});
  }
  for (int vnodes : {1, 4, 16, 64, 256}) {
    HashRing ring(vnodes);
    for (sim::NodeId n = 0; n < servers; ++n) ring.AddServer(n);
    std::map<sim::NodeId, int> owned;
    for (int i = 0; i < keys; ++i) {
      owned[ring.PrimaryFor("key" + std::to_string(i))]++;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "ring vnodes=%d", vnodes);
    const double imbalance = Imbalance(owned, keys, servers);
    std::printf("%-16s %-12.3f\n", label, imbalance);
    out->Row("balance", {obs::Json(label), obs::Json(imbalance)});
  }
}

void RemapSweep(bench::Harness* out) {
  std::printf("\n--- (b) keys remapped when adding server #9 (50k keys) ---\n");
  std::printf("%-16s %-14s\n", "placement", "moved");
  std::printf("------------------------------\n");
  const int keys = 50000;
  {
    int moved = 0;
    for (int i = 0; i < keys; ++i) {
      const uint64_t h = Fnv1a64("key" + std::to_string(i));
      if (h % 8 != h % 9) ++moved;
    }
    std::printf("%-16s %6d (%.1f%%)\n", "modulo", moved, 100.0 * moved / keys);
    out->Row("remap", {obs::Json("modulo"), obs::Json(moved),
                       obs::Json(100.0 * moved / keys)});
  }
  {
    HashRing ring(64);
    for (sim::NodeId n = 0; n < 8; ++n) ring.AddServer(n);
    std::vector<sim::NodeId> before(keys);
    for (int i = 0; i < keys; ++i) {
      before[i] = ring.PrimaryFor("key" + std::to_string(i));
    }
    ring.AddServer(8);
    int moved = 0;
    for (int i = 0; i < keys; ++i) {
      if (ring.PrimaryFor("key" + std::to_string(i)) != before[i]) ++moved;
    }
    std::printf("%-16s %6d (%.1f%%)\n", "ring vnodes=64", moved,
                100.0 * moved / keys);
    out->Row("remap", {obs::Json("ring vnodes=64"), obs::Json(moved),
                       obs::Json(100.0 * moved / keys)});
  }
}

}  // namespace

int main() {
  bench::Harness harness("abl3_placement");
  harness.Table("balance", {"placement", "max_over_fair"});
  harness.Table("remap", {"placement", "moved", "moved_pct"});
  std::printf("=== Ablation 3: key placement schemes ===\n\n");
  BalanceSweep(&harness);
  RemapSweep(&harness);
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: (a) 1 vnode leaves some server ~2-3x overloaded;\n"
      "imbalance falls toward 1.0 as vnodes grow (modulo is balanced by\n"
      "construction). (b) modulo remaps ~8/9 of all keys when a server\n"
      "joins; the ring moves only ~1/9 — the reason Dynamo-style systems\n"
      "can scale elastically without mass data migration.\n");
  return 0;
}
