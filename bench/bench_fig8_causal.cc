// Fig. 8 — Causal consistency: local latency, bounded dep-wait.
//
// Claims (tutorial, after COPS): causal+ gives anomaly-free reads at
// essentially eventual-consistency latency — clients commit locally — and
// the cost shows up only as *dependency wait* at remote datacenters: a
// write that overtakes its causal parent on a faster/luckier WAN path is
// buffered (never shown early). We measure:
//   (a) client write latency (always local, chain-depth independent);
//   (b) time from the last write of a reply chain until the whole chain is
//       visible at every datacenter (bounded by ~one WAN delay);
//   (c) how often replication overtakes causality on a jittery WAN and how
//       long the dependency check buffers those writes.

#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "causal/causal_store.h"
#include "common/stats.h"
#include "harness.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

struct Harness {
  explicit Harness(uint64_t seed, double jitter = 0.05) : sim(seed) {
    auto latency = std::make_unique<sim::WanMatrixLatency>(
        sim::WanMatrixLatency::ThreeRegionBaseUs(), jitter);
    wan = latency.get();
    net = std::make_unique<sim::Network>(&sim, std::move(latency));
    rpc = std::make_unique<sim::Rpc>(net.get());
    cluster = std::make_unique<causal::CausalCluster>(rpc.get(),
                                                      causal::CausalOptions{});
    dcs = cluster->AddDatacenters(3);
    for (int i = 0; i < 3; ++i) wan->AssignNode(dcs[i], i);
    for (int i = 0; i < 3; ++i) {
      const sim::NodeId node = net->AddNode();
      wan->AssignNode(node, i);
      clients.emplace_back(cluster.get(), node, dcs[i]);
    }
  }

  // Runs the simulation until `flag` turns true (completion-driven).
  void StepUntil(const bool& flag) {
    while (!flag && sim.Step()) {
    }
    EVC_CHECK(flag);
  }

  sim::Simulator sim;
  sim::WanMatrixLatency* wan = nullptr;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<sim::Rpc> rpc;
  std::unique_ptr<causal::CausalCluster> cluster;
  std::vector<sim::NodeId> dcs;
  std::vector<causal::CausalClient> clients;
};

struct ChainResult {
  double mean_write_ms = 0;
  double chain_visible_ms = 0;  // last local commit -> chain fully visible
};

ChainResult RunChain(int depth, uint64_t seed) {
  Harness h(seed);
  OnlineStats write_latency;
  sim::Time last_commit = 0;
  for (int d = 0; d < depth; ++d) {
    causal::CausalClient& author = h.clients[d % 3];
    if (d > 0) {
      // Read the parent first (establishes the dependency); it may not
      // have replicated to this DC yet, so poll like a refreshing user.
      const std::string parent = "msg" + std::to_string(d - 1);
      bool found = false;
      while (!found) {
        bool replied = false;
        author.Get(parent, [&](Result<causal::CausalRead> r) {
          replied = true;
          found = r.ok() && r->found;
        });
        h.StepUntil(replied);
        if (!found) h.sim.RunFor(10 * kMillisecond);
      }
    }
    const sim::Time start = h.sim.Now();
    bool committed = false;
    author.Put("msg" + std::to_string(d), "reply " + std::to_string(d),
               [&](Result<causal::WriteId> r) {
                 EVC_CHECK(r.ok());
                 committed = true;
               });
    h.StepUntil(committed);
    write_latency.Add(static_cast<double>(h.sim.Now() - start));
    last_commit = h.sim.Now();
  }

  // Poll at 1 ms until the deepest message is visible at every DC.
  const std::string last_key = "msg" + std::to_string(depth - 1);
  sim::Time visible_at = -1;
  while (h.sim.Now() < last_commit + 300 * kSecond) {
    bool everywhere = true;
    for (const sim::NodeId dc : h.dcs) {
      everywhere &= h.cluster->LocalRead(dc, last_key).found;
    }
    if (everywhere) {
      visible_at = h.sim.Now();
      break;
    }
    h.sim.RunFor(kMillisecond);
  }
  EVC_CHECK(visible_at >= 0);

  ChainResult result;
  result.mean_write_ms = write_latency.mean() / kMillisecond;
  result.chain_visible_ms =
      static_cast<double>(visible_at - last_commit) / kMillisecond;
  return result;
}

// Overtaking study: EU posts, US-East replies immediately; Asia receives
// both over a jittery WAN, so the reply often arrives first and must wait.
void RunOvertakingStudy(int trials, double jitter, bench::Harness* out) {
  Harness h(1234, jitter);
  int violations = 0;
  for (int t = 0; t < trials; ++t) {
    const std::string photo = "photo" + std::to_string(t);
    const std::string comment = "comment" + std::to_string(t);
    bool committed = false;
    h.clients[1].Put(photo, "img", [&](Result<causal::WriteId> r) {
      EVC_CHECK(r.ok());
      committed = true;
    });
    h.StepUntil(committed);
    // US-East reads the photo as soon as it lands there, then comments.
    bool found = false;
    while (!found) {
      bool replied = false;
      h.clients[0].Get(photo, [&](Result<causal::CausalRead> r) {
        replied = true;
        found = r.ok() && r->found;
      });
      h.StepUntil(replied);
      if (!found) h.sim.RunFor(5 * kMillisecond);
    }
    bool commented = false;
    h.clients[0].Put(comment, "nice!", [&](Result<causal::WriteId> r) {
      EVC_CHECK(r.ok());
      commented = true;
    });
    h.StepUntil(commented);
    // Watch Asia until both are visible; any comment-without-photo instant
    // is a causality violation (there must be none).
    for (;;) {
      const bool p = h.cluster->LocalRead(h.dcs[2], photo).found;
      const bool c = h.cluster->LocalRead(h.dcs[2], comment).found;
      if (c && !p) ++violations;
      if (p && c) break;
      h.sim.RunFor(kMillisecond);
    }
  }
  const auto& stats = h.cluster->stats();
  const double mean_wait_ms =
      stats.dep_wait_us.count() ? stats.dep_wait_us.mean() / kMillisecond
                                : 0.0;
  std::printf(
      "  jitter=%.2f: %d trials, %llu writes deferred by the dep check "
      "(mean wait %.1f ms), causality violations: %d\n",
      jitter, trials,
      static_cast<unsigned long long>(stats.remote_deferred),
      mean_wait_ms, violations);
  out->Row("overtaking",
           {obs::Json(jitter), obs::Json(trials),
            obs::Json(stats.remote_deferred), obs::Json(mean_wait_ms),
            obs::Json(violations)});
}

}  // namespace

int main() {
  bench::Harness results("fig8_causal");
  results.Table("chains", {"depth", "mean_write_ms", "chain_visible_ms"});
  results.Table("overtaking", {"jitter", "trials", "deferred",
                               "mean_dep_wait_ms", "violations"});
  std::printf("=== Fig. 8: causal+ comment threads across 3 DCs ===\n\n");
  std::printf("%-8s %-18s %-22s\n", "depth", "write mean (ms)",
              "chain visible (ms)");
  std::printf("------------------------------------------------\n");
  for (int depth : {1, 2, 4, 8, 16}) {
    const ChainResult r = RunChain(depth, 40 + static_cast<uint64_t>(depth));
    std::printf("%-8d %-18.2f %-22.1f\n", depth, r.mean_write_ms,
                r.chain_visible_ms);
    results.Row("chains", {obs::Json(depth), obs::Json(r.mean_write_ms),
                           obs::Json(r.chain_visible_ms)});
  }

  std::printf(
      "\n--- overtaking on a jittery WAN (EU posts, US comments, Asia "
      "watches) ---\n");
  for (double jitter : {0.05, 0.50, 1.00}) {
    RunOvertakingStudy(100, jitter, &results);
  }
  EVC_CHECK_OK(results.Write());

  std::printf(
      "\nExpected shape: writes commit at local latency (<1 ms) at every\n"
      "depth; the whole chain becomes visible within ~one WAN delay of the\n"
      "last write (earlier links replicated while the thread grew). As WAN\n"
      "jitter grows, more replies overtake their parents and get buffered\n"
      "(deferred > 0, dep-wait tens of ms) — yet violations stay at zero.\n");
  return 0;
}
