#include "harness.h"

#include <cstdio>
#include <cstdlib>

#include "common/status.h"
#include "obs/export.h"
#include "sim/simulator.h"

namespace evc::bench {

Harness::Harness(std::string name) : name_(std::move(name)) {
  EVC_CHECK(!name_.empty());
}

void Harness::Metric(const std::string& metric, double value) {
  metrics_[metric] = value;
}

void Harness::Note(const std::string& key, std::string value) {
  notes_[key] = std::move(value);
}

void Harness::Table(const std::string& table,
                    std::vector<std::string> columns) {
  EVC_CHECK(!columns.empty());
  TableData& data = tables_[table];
  data.columns = std::move(columns);
  data.rows.clear();
}

void Harness::Row(const std::string& table, std::vector<obs::Json> values) {
  auto it = tables_.find(table);
  EVC_CHECK(it != tables_.end());
  EVC_CHECK(values.size() == it->second.columns.size());
  it->second.rows.push_back(std::move(values));
}

void Harness::AttachSim(const sim::Simulator& sim) {
  sim_ = obs::MetricsToJson(sim.metrics());
}

std::string Harness::ToJson() const {
  obs::Json::Object root;
  root["schema"] = obs::Json("evc-bench-v1");
  root["name"] = obs::Json(name_);

  obs::Json::Object metrics;
  for (const auto& [k, v] : metrics_) metrics[k] = obs::Json(v);
  root["metrics"] = obs::Json(std::move(metrics));

  obs::Json::Object notes;
  for (const auto& [k, v] : notes_) notes[k] = obs::Json(v);
  root["notes"] = obs::Json(std::move(notes));

  obs::Json::Object tables;
  for (const auto& [name, data] : tables_) {
    obs::Json::Object table;
    obs::Json::Array columns;
    for (const auto& c : data.columns) columns.push_back(obs::Json(c));
    table["columns"] = obs::Json(std::move(columns));
    obs::Json::Array rows;
    for (const auto& row : data.rows) {
      obs::Json::Array cells;
      for (const auto& cell : row) cells.push_back(cell);
      rows.push_back(obs::Json(std::move(cells)));
    }
    table["rows"] = obs::Json(std::move(rows));
    tables[name] = obs::Json(std::move(table));
  }
  root["tables"] = obs::Json(std::move(tables));

  if (!sim_.is_null()) root["sim"] = sim_;
  return obs::Json(std::move(root)).Dump(2) + "\n";
}

Status Harness::Write() const {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("EVC_BENCH_OUT");
      dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  Status status = obs::WriteFile(path, ToJson());
  if (!status.ok()) {
    std::fprintf(stderr, "bench harness: failed to write %s: %s\n",
                 path.c_str(), status.ToString().c_str());
  } else {
    std::fprintf(stderr, "bench harness: wrote %s\n", path.c_str());
  }
  return status;
}

}  // namespace evc::bench
