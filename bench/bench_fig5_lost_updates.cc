// Fig. 5 — Lost updates under contention: LWW vs siblings vs CRDT.
//
// Claim (tutorial): under concurrent writes, last-writer-wins silently
// drops updates at a rate that grows with contention; multi-value siblings
// preserve every update but push merge work to the application; a CRDT
// (OR-Set cart) loses nothing and needs no application merge.
//
// Setup: C concurrent clients each add one distinct item to a shared cart
// through different coordinators (all writes concurrent), then the system
// converges. Metric: fraction of added items still present.

#include <cstdio>
#include <memory>
#include <vector>

#include "crdt/orset.h"
#include "harness.h"
#include "replication/quorum_store.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

// Runs C concurrent blind cart-adds under the given conflict policy.
// Returns (items surviving, sibling count at read time).
std::pair<int, size_t> RunQuorumCart(ConflictPolicy policy, int concurrency,
                                     uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 20 * kMillisecond));
  sim::Rpc rpc(&net);
  repl::QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = 3;  // full read so we see the converged state
  config.write_quorum = 1;
  config.sloppy = false;
  config.storage.store.conflict_policy = policy;
  repl::DynamoCluster cluster(&rpc, config);
  const int servers_count = std::max(3, concurrency);
  auto servers = cluster.AddServers(servers_count);

  // Every client reads the (empty) cart, then writes "cart + its item":
  // read-modify-write without coordination — the update-in-place idiom.
  std::vector<sim::NodeId> clients;
  for (int c = 0; c < concurrency; ++c) clients.push_back(net.AddNode());
  int completed = 0;
  for (int c = 0; c < concurrency; ++c) {
    const std::string item = "item" + std::to_string(c);
    cluster.Put(clients[c], servers[c % servers_count], "cart", item, {},
                [&](Result<Version> r) {
                  if (r.ok()) ++completed;
                });
  }
  sim.RunFor(10 * kSecond);
  EVC_CHECK(completed == concurrency);

  // Converge via full read + read repair, twice.
  repl::ReadResult merged;
  for (int round = 0; round < 2; ++round) {
    cluster.Get(clients[0], servers[0], "cart",
                [&](Result<repl::ReadResult> r) {
                  if (r.ok()) merged = *r;
                });
    sim.RunFor(5 * kSecond);
  }
  int survivors = 0;
  for (int c = 0; c < concurrency; ++c) {
    const std::string item = "item" + std::to_string(c);
    for (const auto& v : merged.versions) {
      if (v.value == item) {
        ++survivors;
        break;
      }
    }
  }
  return {survivors, merged.versions.size()};
}

// The CRDT cart: one OrSwot replica per client, merged pairwise.
int RunCrdtCart(int concurrency) {
  std::vector<crdt::OrSwot> replicas;
  for (int c = 0; c < concurrency; ++c) {
    replicas.emplace_back(static_cast<uint32_t>(c));
    replicas.back().Add("item" + std::to_string(c));
  }
  for (int round = 0; round < 2; ++round) {
    for (auto& a : replicas) {
      for (auto& b : replicas) a.Merge(b);
    }
  }
  int survivors = 0;
  for (int c = 0; c < concurrency; ++c) {
    if (replicas[0].Contains("item" + std::to_string(c))) ++survivors;
  }
  return survivors;
}

}  // namespace

int main() {
  bench::Harness harness("fig5_lost_updates");
  harness.Table("survivors",
                {"concurrency", "lww_survivors", "lww_siblings",
                 "siblings_survivors", "siblings_siblings", "crdt_survivors"});
  std::printf(
      "=== Fig. 5: surviving updates after C concurrent cart adds ===\n\n");
  std::printf("%-12s | %-22s | %-22s | %-10s\n", "concurrency",
              "LWW survivors (sib.)", "siblings survivors (sib.)",
              "OR-Set");
  std::printf("-------------+------------------------+---------------------"
              "---+-----------\n");
  for (int c : {2, 4, 8, 16, 32}) {
    auto [lww_survivors, lww_siblings] =
        RunQuorumCart(ConflictPolicy::kLastWriterWins, c, 100 + c);
    auto [sib_survivors, sib_siblings] =
        RunQuorumCart(ConflictPolicy::kSiblings, c, 200 + c);
    const int crdt_survivors = RunCrdtCart(c);
    std::printf("%-12d | %3d/%-3d (%2zu siblings)  | %3d/%-3d (%2zu siblings)"
                "  | %3d/%-3d\n",
                c, lww_survivors, c, lww_siblings, sib_survivors, c,
                sib_siblings, crdt_survivors, c);
    harness.Row("survivors",
                {obs::Json(c), obs::Json(lww_survivors),
                 obs::Json(static_cast<uint64_t>(lww_siblings)),
                 obs::Json(sib_survivors),
                 obs::Json(static_cast<uint64_t>(sib_siblings)),
                 obs::Json(crdt_survivors)});
  }
  EVC_CHECK_OK(harness.Write());
  std::printf(
      "\nExpected shape: LWW keeps exactly ONE of C concurrent updates\n"
      "(loss rate (C-1)/C, worsening with contention); the siblings policy\n"
      "keeps all C as siblings for the app to merge; the OR-Set keeps all\n"
      "C with no application merge at all.\n");
  return 0;
}
