// Quickstart: the consistency dial.
//
// Builds the same geo-replicated key-value store at five consistency levels
// and issues the same little workload against each, printing what each
// level costs (latency from the client's local datacenter) and what it
// gives you. This is the 5-minute tour of the library's central API,
// evc::core::ReplicatedStore.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <optional>
#include <string>

#include "core/replicated_store.h"

using evc::core::ConsistencyLevel;
using evc::core::ConsistencyLevelToString;
using evc::core::ReplicatedStore;
using evc::core::StoreOptions;
using evc::sim::kMillisecond;
using evc::sim::kSecond;

namespace {

void RunLevel(ConsistencyLevel level) {
  StoreOptions options;
  options.level = level;
  options.datacenters = 3;  // US-East, EU, Asia
  options.seed = 2026;
  ReplicatedStore store(options);

  // One client in Europe (DC 1), far from any US-East primary/leader.
  const evc::sim::NodeId client = store.AddClient(1);

  // A tiny read-your-own-profile workload.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "profile:" + std::to_string(i % 5);
    bool put_done = false;
    store.Put(client, key, "displayName=Ada,location=EU",
              [&](evc::Status s) {
                put_done = true;
                if (!s.ok()) {
                  std::printf("    put failed: %s\n", s.ToString().c_str());
                }
              });
    store.RunFor(5 * kSecond);
    if (!put_done) std::printf("    put did not complete!\n");

    std::optional<std::string> value;
    store.Get(client, key, [&](evc::Result<std::string> r) {
      if (r.ok()) value = *r;
    });
    store.RunFor(5 * kSecond);
  }

  std::printf("  %-9s | put p50 %8.2f ms | get p50 %8.2f ms | failures %llu\n",
              ConsistencyLevelToString(level),
              store.put_latency().Percentile(0.5) / kMillisecond,
              store.get_latency().Percentile(0.5) / kMillisecond,
              static_cast<unsigned long long>(store.puts_failed() +
                                              store.gets_failed()));
}

}  // namespace

int main() {
  std::printf(
      "evc quickstart: one API, five consistency levels\n"
      "client in the EU datacenter; 3 geo-replicated datacenters\n\n");
  std::printf("  level     | write latency      | read latency       |\n");
  std::printf("  ----------+--------------------+--------------------+\n");
  RunLevel(ConsistencyLevel::kEventual);
  RunLevel(ConsistencyLevel::kQuorum);
  RunLevel(ConsistencyLevel::kCausal);
  RunLevel(ConsistencyLevel::kTimeline);
  RunLevel(ConsistencyLevel::kStrong);
  std::printf(
      "\nReading the table: eventual and causal complete in the local DC;\n"
      "quorum pays a WAN round trip; timeline writes go to the record's\n"
      "master; strong (Paxos) pays a consensus round from the leader's DC.\n"
      "That spread IS the tutorial's latency/consistency tradeoff.\n");
  return 0;
}
