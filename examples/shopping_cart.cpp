// The Dynamo shopping cart, three ways.
//
// The tutorial's signature anecdote: a shopper's cart is updated from two
// devices during a network partition between datacenters. What happens to
// the cart depends entirely on the conflict-handling policy:
//   1. last-writer-wins      -> one device's items silently vanish;
//   2. multi-value siblings  -> both versions survive; the app merges;
//   3. OR-Set CRDT           -> the cart merges itself, removals respected.
//
//   $ ./examples/shopping_cart

#include <cstdio>
#include <memory>
#include <optional>

#include "crdt/orset.h"
#include "replication/quorum_store.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

namespace {

void PrintCart(const char* label, const std::vector<std::string>& items) {
  std::printf("  %-28s [", label);
  for (size_t i = 0; i < items.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", items[i].c_str());
  }
  std::printf("]\n");
}

// Runs the two-device partition scenario against a DynamoCluster configured
// with the given conflict policy; returns the final sibling values.
std::vector<std::vector<std::string>> RunPartitionScenario(
    ConflictPolicy policy) {
  sim::Simulator sim(7);
  sim::Network net(&sim,
                   std::make_unique<sim::ConstantLatency>(5 * kMillisecond));
  sim::Rpc rpc(&net);
  repl::QuorumConfig config;
  config.replication_factor = 2;
  config.read_quorum = 1;
  config.write_quorum = 1;
  config.sloppy = false;
  config.storage.store.conflict_policy = policy;
  repl::DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(2);
  const sim::NodeId phone = net.AddNode();
  const sim::NodeId laptop = net.AddNode();

  auto put = [&](sim::NodeId client, sim::NodeId coordinator,
                 const std::string& value, const VersionVector& ctx) {
    bool done = false;
    cluster.Put(client, coordinator, "cart", value, ctx,
                [&](Result<Version> r) { done = r.ok(); });
    sim.RunFor(kSecond);
    return done;
  };

  // Both devices read the shared cart (initially "bread").
  put(phone, servers[0], "bread", {});
  sim.RunFor(kSecond);

  repl::ReadResult initial;
  cluster.Get(phone, servers[0], "cart", [&](Result<repl::ReadResult> r) {
    if (r.ok()) initial = *r;
  });
  sim.RunFor(kSecond);

  // Partition: each device reaches only its side's server.
  net.Partition({{servers[0], phone}, {servers[1], laptop}});
  put(phone, servers[0], "bread,milk", initial.context);
  put(laptop, servers[1], "bread,eggs", initial.context);

  // Heal, let anti-entropy-equivalent (read repair via R=2) reconcile.
  net.Heal();
  sim.RunFor(kSecond);
  repl::ReadResult merged;
  repl::QuorumConfig read_all = config;
  (void)read_all;
  // Read with the full quorum view by asking the coordinator directly.
  cluster.Get(phone, servers[0], "cart", [&](Result<repl::ReadResult> r) {
    if (r.ok()) merged = *r;
  });
  sim.RunFor(kSecond);
  // Second read after repair propagates.
  cluster.Get(phone, servers[0], "cart", [&](Result<repl::ReadResult> r) {
    if (r.ok()) merged = *r;
  });
  sim.RunFor(kSecond);

  std::vector<std::vector<std::string>> out;
  for (const auto& v : merged.versions) {
    out.push_back({v.value});
  }
  return out;
}

}  // namespace

int main() {
  std::printf("The partitioned shopping cart (Dynamo anecdote)\n");
  std::printf("phone adds milk, laptop adds eggs, during a partition\n\n");

  std::printf("1) last-writer-wins:\n");
  auto lww = RunPartitionScenario(ConflictPolicy::kLastWriterWins);
  for (const auto& v : lww) PrintCart("surviving cart:", v);
  std::printf("   -> one device's update was silently discarded.\n\n");

  std::printf("2) multi-value siblings:\n");
  auto siblings = RunPartitionScenario(ConflictPolicy::kSiblings);
  for (const auto& v : siblings) PrintCart("sibling:", v);
  std::printf(
      "   -> both updates survive as siblings; the app must merge them.\n\n");

  std::printf("3) OR-Set CRDT (the cart merges itself):\n");
  {
    crdt::OrSwot phone_cart(0), laptop_cart(1);
    phone_cart.Add("bread");
    laptop_cart.Merge(phone_cart);  // both devices synced before partition

    // During the partition:
    phone_cart.Add("milk");
    phone_cart.Remove("bread");  // phone also removed bread!
    laptop_cart.Add("eggs");

    // After healing:
    phone_cart.Merge(laptop_cart);
    laptop_cart.Merge(phone_cart);
    PrintCart("phone after merge:", phone_cart.Elements());
    PrintCart("laptop after merge:", laptop_cart.Elements());
    std::printf(
        "   -> adds from both sides kept, the observed remove of 'bread'\n"
        "      honored, no coordination, both replicas identical: %s\n",
        phone_cart == laptop_cart ? "yes" : "NO (bug!)");
  }
  return 0;
}
