// Causal consistency for a social timeline (the photo/comment anomaly).
//
// Alice removes her boss from an ACL, then posts a photo; or more simply:
// Alice posts a photo, Bob comments on it. Under plain eventual consistency
// a remote datacenter can reveal the comment before the photo it refers to.
// Under the COPS-style causal store that interleaving is impossible: the
// comment carries its dependency and waits for the photo.
//
//   $ ./examples/social_timeline

#include <cstdio>
#include <memory>
#include <optional>

#include "causal/causal_store.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

int main() {
  std::printf("Causal timeline: no comment before its photo, anywhere\n\n");

  sim::Simulator sim(11);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs());
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  causal::CausalCluster cluster(&rpc, causal::CausalOptions{});
  auto dcs = cluster.AddDatacenters(3);
  for (int i = 0; i < 3; ++i) wan->AssignNode(dcs[i], i);

  const sim::NodeId alice_node = net.AddNode();
  wan->AssignNode(alice_node, 0);
  causal::CausalClient alice(&cluster, alice_node, dcs[0]);

  // Alice (US-East) posts a photo, reads it back, and comments on it —
  // the comment causally depends on the photo.
  bool ok = false;
  alice.Put("photo:42", "sunset.jpg",
            [&](Result<causal::WriteId> r) { ok = r.ok(); });
  sim.RunFor(50 * kMillisecond);
  std::printf("alice posts photo:42 (local commit: %s)\n", ok ? "yes" : "no");

  alice.Get("photo:42", [&](Result<causal::CausalRead> r) { ok = r.ok(); });
  sim.RunFor(50 * kMillisecond);
  alice.Put("comment:42.1", "look at this sunset!",
            [&](Result<causal::WriteId> r) { ok = r.ok(); });
  sim.RunFor(1 * kMillisecond);
  std::printf("alice comments on it %lldus later (still replicating)\n\n",
              static_cast<long long>(sim.Now()));

  // Watch the Asia datacenter (DC 2) at 5 ms granularity while replication
  // is in flight: the comment must never be visible before the photo.
  bool violated = false;
  sim::Time photo_at = -1, comment_at = -1;
  for (int step = 0; step < 200; ++step) {
    sim.RunFor(5 * kMillisecond);
    const bool photo = cluster.LocalRead(dcs[2], "photo:42").found;
    const bool comment = cluster.LocalRead(dcs[2], "comment:42.1").found;
    if (photo && photo_at < 0) photo_at = sim.Now();
    if (comment && comment_at < 0) comment_at = sim.Now();
    if (comment && !photo) violated = true;
  }
  std::printf("asia DC: photo visible at   %8.1f ms\n",
              static_cast<double>(photo_at) / kMillisecond);
  std::printf("asia DC: comment visible at %8.1f ms\n",
              static_cast<double>(comment_at) / kMillisecond);
  std::printf("comment-before-photo anomaly observed: %s\n",
              violated ? "YES — causality broken!" : "never");

  const auto& stats = cluster.stats();
  std::printf(
      "\nremote applies: %llu immediate, %llu deferred awaiting deps\n",
      static_cast<unsigned long long>(stats.remote_applied_immediately),
      static_cast<unsigned long long>(stats.remote_deferred));
  std::printf(
      "\nThe dependency check is what distinguishes causal+ from plain\n"
      "eventual: remote DCs buffer the comment until the photo lands.\n");
  return violated ? 1 : 0;
}
