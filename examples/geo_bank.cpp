// RedBlue consistency on a geo-replicated bank account.
//
// Deposits commute (blue): they execute in the local datacenter at local
// latency. Withdrawals can break balance >= 0, so they are red: serialized
// through a global sequencer at WAN latency. Mislabel a withdrawal blue and
// two sites can double-spend — this example shows all three behaviours.
//
//   $ ./examples/geo_bank

#include <cstdio>
#include <memory>
#include <optional>

#include "txn/redblue.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

int main() {
  std::printf("RedBlue banking across 3 datacenters\n\n");

  sim::Simulator sim(13);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs());
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  txn::RedBlueBank bank(&rpc, 3);
  std::vector<sim::NodeId> clients;
  for (int i = 0; i < 3; ++i) {
    wan->AssignNode(bank.site_node(i), i);
    clients.push_back(net.AddNode());
    wan->AssignNode(clients.back(), i);
  }

  auto timed = [&](const char* label, auto issue) {
    const sim::Time start = sim.Now();
    sim::Time done_at = -1;
    Status status;
    issue([&](Result<int64_t> r) {
      done_at = sim.Now();
      status = r.status();
    });
    sim.RunFor(5 * kSecond);
    std::printf("  %-34s %8.1f ms   %s\n", label,
                static_cast<double>(done_at - start) / kMillisecond,
                status.ok() ? "ok" : status.ToString().c_str());
  };

  std::printf("operation                            latency      outcome\n");
  std::printf("-----------------------------------  -----------  -------\n");
  timed("deposit $100 (blue, from Asia)", [&](auto cb) {
    bank.Deposit(clients[2], 2, "acct", 100, cb);
  });
  sim.RunFor(kSecond);  // shadow ops replicate
  timed("withdraw $60 (red, from Asia)", [&](auto cb) {
    bank.WithdrawRed(clients[2], 2, "acct", 60, cb);
  });
  timed("withdraw $60 again (red, Asia)", [&](auto cb) {
    bank.WithdrawRed(clients[2], 2, "acct", 60, cb);
  });
  sim.RunFor(kSecond);
  std::printf("\nbalance everywhere: $%lld $%lld $%lld (converged: %s)\n",
              static_cast<long long>(bank.BalanceAt(0, "acct")),
              static_cast<long long>(bank.BalanceAt(1, "acct")),
              static_cast<long long>(bank.BalanceAt(2, "acct")),
              bank.Converged("acct") ? "yes" : "no");

  // Now the mislabelled version: withdraw as a blue op from two sites at
  // once against a fresh account holding $100.
  std::printf("\n--- mislabelling withdraw as blue ---\n");
  bool seeded = false;
  bank.Deposit(clients[0], 0, "acct2", 100,
               [&](Result<int64_t> r) { seeded = r.ok(); });
  sim.RunFor(2 * kSecond);
  (void)seeded;
  Status w1, w2;
  bank.WithdrawBlue(clients[1], 1, "acct2", 80,
                    [&](Result<int64_t> r) { w1 = r.status(); });
  bank.WithdrawBlue(clients[2], 2, "acct2", 80,
                    [&](Result<int64_t> r) { w2 = r.status(); });
  sim.RunFor(3 * kSecond);
  std::printf("both blue withdrawals accepted: %s / %s\n",
              w1.ToString().c_str(), w2.ToString().c_str());
  std::printf("final balance: $%lld  (invariant violations recorded: %llu)\n",
              static_cast<long long>(bank.BalanceAt(0, "acct2")),
              static_cast<unsigned long long>(
                  bank.stats().invariant_violations));
  std::printf(
      "\nBlue ops buy local latency; red ops buy the invariant. Label by\n"
      "commutativity + invariant-safety, or the bank goes negative.\n");
  return 0;
}
