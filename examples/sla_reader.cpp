// Consistency SLAs in action (Pileus-style).
//
// One application, three users on three continents, one SLA: "strong
// within 50 ms is worth 1.0; bounded-staleness within 120 ms is worth 0.6;
// anything eventual within a second is worth 0.2". The client library
// routes each read to whichever replica maximizes expected utility given
// the user's measured network position — no per-deployment tuning.
//
//   $ ./examples/sla_reader

#include <cstdio>
#include <memory>

#include "common/stats.h"
#include "sla/pileus.h"

using namespace evc;
using sim::kMillisecond;
using sim::kSecond;

int main() {
  std::printf("Pileus-style consistency SLAs: one policy, three continents\n\n");

  sim::Simulator sim(17);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs());
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  sla::PileusCluster cluster(&rpc, sla::PileusOptions{});
  const sim::NodeId primary = cluster.AddPrimary();
  wan->AssignNode(primary, 0);  // US-East
  const sim::NodeId secondary = cluster.AddSecondary();
  wan->AssignNode(secondary, 2);  // Asia
  cluster.Start();

  // A writer near the primary keeps the item fresh.
  const sim::NodeId writer = net.AddNode();
  wan->AssignNode(writer, 0);
  bool seeded = false;
  cluster.Put(writer, "item:42", "price=10",
              [&](Result<uint64_t> r) { seeded = r.ok(); });
  sim.RunFor(2 * kSecond);
  if (!seeded) return 1;

  const sla::Sla policy{
      {50 * kMillisecond, sla::ReadConsistency::kStrong, 0, 1.0},
      {120 * kMillisecond, sla::ReadConsistency::kBounded,
       800 * kMillisecond, 0.6},
      {kSecond, sla::ReadConsistency::kEventual, 0, 0.2},
  };

  const char* regions[] = {"US-East", "EU", "Asia"};
  std::printf("%-10s %-14s %-14s %-40s\n", "user", "mean utility",
              "mean latency", "how the library served them");
  std::printf("---------------------------------------------------------"
              "---------------\n");
  for (int dc = 0; dc < 3; ++dc) {
    const sim::NodeId user = net.AddNode();
    wan->AssignNode(user, dc);
    sla::PileusClient client(&cluster, &sim, user, policy);
    bool probed = false;
    client.Probe("item:42", [&] { probed = true; });
    sim.RunFor(2 * kSecond);
    if (!probed) return 1;

    OnlineStats latency_stats;
    for (int i = 0; i < 20; ++i) {
      if (i % 2 == 0) {
        cluster.Put(writer, "item:42", "price=" + std::to_string(10 + i),
                    [](Result<uint64_t>) {});
      }
      bool done = false;
      client.Get("item:42", [&](Result<sla::SlaReadResult> r) {
        done = true;
        if (r.ok()) {
          latency_stats.Add(static_cast<double>(r->observed_latency));
        }
      });
      sim.RunFor(2 * kSecond);
      if (!done) return 1;
    }
    const auto& stats = client.stats();
    char served[96];
    std::snprintf(served, sizeof(served),
                  "strong:%llu bounded:%llu eventual:%llu",
                  static_cast<unsigned long long>(
                      stats.reads_per_row.count(0)
                          ? stats.reads_per_row.at(0) : 0),
                  static_cast<unsigned long long>(
                      stats.reads_per_row.count(1)
                          ? stats.reads_per_row.at(1) : 0),
                  static_cast<unsigned long long>(
                      stats.reads_per_row.count(2)
                          ? stats.reads_per_row.at(2) : 0));
    std::printf("%-10s %-14.2f %10.1f ms  %-40s\n", regions[dc],
                stats.delivered_utility.mean(),
                latency_stats.mean() / kMillisecond, served);
  }
  std::printf(
      "\nSame application code everywhere: the US user gets strong reads,\n"
      "the Asia user gets bounded-staleness reads from the local\n"
      "secondary, and nobody had to choose a global consistency level.\n");
  return 0;
}
