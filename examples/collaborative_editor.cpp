// Collaborative text editing with the RGA sequence CRDT.
//
// Two editors type into the same document while disconnected; their edits
// merge without coordination and both replicas converge to the identical
// text — insertions keep their intended position, deletions stick.
//
//   $ ./examples/collaborative_editor

#include <cstdio>
#include <string>

#include "crdt/rga.h"

using evc::crdt::kRgaHead;
using evc::crdt::Rga;
using evc::crdt::RgaId;

namespace {

RgaId TypeWord(Rga* doc, RgaId after, const std::string& word) {
  RgaId last = after;
  for (char c : word) {
    last = doc->InsertAfter(last, std::string(1, c));
  }
  return last;
}

}  // namespace

int main() {
  std::printf("Collaborative editing with RGA (replicated growable array)\n\n");

  Rga alice(0), bob(1);

  // Alice drafts the shared sentence while online.
  RgaId cursor = TypeWord(&alice, kRgaHead, "eventual consistency is ");
  bob.MergeFrom(alice);
  std::printf("shared draft:   \"%s\"\n\n", alice.Text().c_str());

  // --- offline: both keep editing ----------------------------------------
  // Alice finishes the sentence her way.
  TypeWord(&alice, cursor, "weak");
  // Bob finishes it his way at the same position...
  RgaId bob_last = TypeWord(&bob, cursor, "a spectrum");
  // ...and also fixes the beginning: capitalize the 'e'.
  auto first = bob.IdAt(0);
  if (first.ok()) {
    bob.Erase(*first);
    bob.InsertAfter(kRgaHead, "E");
  }
  (void)bob_last;

  std::printf("alice offline:  \"%s\"\n", alice.Text().c_str());
  std::printf("bob offline:    \"%s\"\n\n", bob.Text().c_str());

  // --- reconnect: exchange operation logs ---------------------------------
  alice.MergeFrom(bob);
  bob.MergeFrom(alice);

  std::printf("alice merged:   \"%s\"\n", alice.Text().c_str());
  std::printf("bob merged:     \"%s\"\n", bob.Text().c_str());
  std::printf("\nconverged: %s (live chars: %zu, tombstones kept: %zu)\n",
              alice.Text() == bob.Text() ? "yes" : "NO — bug!",
              alice.live_size(), alice.node_count() - alice.live_size());
  std::printf(
      "\nBoth endings appear (concurrent inserts at one position are\n"
      "ordered deterministically), Bob's capitalization won at the head,\n"
      "and no coordination service was involved.\n");
  return alice.Text() == bob.Text() ? 0 : 1;
}
