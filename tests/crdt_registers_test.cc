#include "crdt/registers.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace evc::crdt {
namespace {

LamportTimestamp Ts(uint64_t c, uint32_t node = 0) {
  return LamportTimestamp{c, node};
}

TEST(LwwRegisterTest, EmptyHasNoValue) {
  LwwRegister reg;
  EXPECT_FALSE(reg.has_value());
}

TEST(LwwRegisterTest, SetAndRead) {
  LwwRegister reg;
  EXPECT_TRUE(reg.Set("x", Ts(1)));
  EXPECT_TRUE(reg.has_value());
  EXPECT_EQ(reg.value(), "x");
}

TEST(LwwRegisterTest, StaleSetIgnored) {
  LwwRegister reg;
  reg.Set("new", Ts(10));
  EXPECT_FALSE(reg.Set("old", Ts(5)));
  EXPECT_EQ(reg.value(), "new");
}

TEST(LwwRegisterTest, EqualTimestampIgnored) {
  LwwRegister reg;
  reg.Set("first", Ts(5, 1));
  EXPECT_FALSE(reg.Set("dup", Ts(5, 1)));
  EXPECT_EQ(reg.value(), "first");
}

TEST(LwwRegisterTest, TieBrokenByNodeDeterministically) {
  LwwRegister a, b;
  a.Set("from-1", Ts(5, 1));
  b.Set("from-2", Ts(5, 2));
  LwwRegister m1 = a;
  m1.Merge(b);
  LwwRegister m2 = b;
  m2.Merge(a);
  EXPECT_EQ(m1.value(), "from-2");  // higher node id wins the tie
  EXPECT_EQ(m1, m2);
}

TEST(LwwRegisterTest, MergeConvergesRegardlessOfOrder) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    LwwRegister regs[3];
    for (int w = 0; w < 10; ++w) {
      const int r = static_cast<int>(rng.NextBounded(3));
      regs[r].Set("v" + std::to_string(trial * 10 + w),
                  Ts(rng.NextBounded(20), static_cast<uint32_t>(r)));
    }
    for (int round = 0; round < 2; ++round) {
      for (auto& a : regs) {
        for (const auto& b : regs) a.Merge(b);
      }
    }
    EXPECT_EQ(regs[0], regs[1]);
    EXPECT_EQ(regs[1], regs[2]);
  }
}

TEST(LwwRegisterTest, ConcurrentWriteIsSilentlyLost) {
  // The anomaly Fig. 5 quantifies: two concurrent Sets, only one survives.
  LwwRegister a, b;
  a.Set("milk", Ts(100, 1));
  b.Set("eggs", Ts(101, 2));
  a.Merge(b);
  EXPECT_EQ(a.value(), "eggs");  // "milk" is gone with no trace
}

TEST(MvRegisterTest, EmptyHasNoValues) {
  MvRegister reg;
  EXPECT_TRUE(reg.Values().empty());
  EXPECT_EQ(reg.sibling_count(), 0u);
}

TEST(MvRegisterTest, SequentialSetsKeepOneValue) {
  MvRegister reg;
  reg.Set("a", 0);
  reg.Set("b", 0);
  EXPECT_EQ(reg.Values(), (std::vector<std::string>{"b"}));
}

TEST(MvRegisterTest, ConcurrentSetsKeepBothValues) {
  MvRegister a, b;
  a.Set("milk", 0);
  b.Set("eggs", 1);
  a.Merge(b);
  EXPECT_EQ(a.Values(), (std::vector<std::string>{"eggs", "milk"}));
  EXPECT_EQ(a.sibling_count(), 2u);
}

TEST(MvRegisterTest, SetAfterMergeResolvesSiblings) {
  MvRegister a, b;
  a.Set("milk", 0);
  b.Set("eggs", 1);
  a.Merge(b);
  a.Set("milk+eggs", 0);  // a has observed both siblings
  EXPECT_EQ(a.Values(), (std::vector<std::string>{"milk+eggs"}));
  // And the resolution propagates: b merging from a drops its sibling.
  b.Merge(a);
  EXPECT_EQ(b.Values(), (std::vector<std::string>{"milk+eggs"}));
}

TEST(MvRegisterTest, MergeIsCommutativeAndIdempotent) {
  MvRegister a, b;
  a.Set("x", 0);
  b.Set("y", 1);
  MvRegister ab = a;
  ab.Merge(b);
  MvRegister ba = b;
  ba.Merge(a);
  EXPECT_TRUE(ab == ba);
  MvRegister again = ab;
  again.Merge(b);
  EXPECT_TRUE(again == ab);
}

TEST(MvRegisterTest, ThreeWayConcurrencyKeepsThreeSiblings) {
  MvRegister r0, r1, r2;
  r0.Set("a", 0);
  r1.Set("b", 1);
  r2.Set("c", 2);
  r0.Merge(r1);
  r0.Merge(r2);
  EXPECT_EQ(r0.sibling_count(), 3u);
}

class MvRegisterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvRegisterPropertyTest, ReplicasConvergeUnderRandomGossip) {
  Rng rng(GetParam());
  MvRegister regs[4];
  for (int step = 0; step < 300; ++step) {
    const auto r = static_cast<uint32_t>(rng.NextBounded(4));
    if (rng.NextBool(0.4)) {
      regs[r].Set("v" + std::to_string(step), r);
    } else {
      regs[r].Merge(regs[rng.NextBounded(4)]);
    }
  }
  for (int round = 0; round < 2; ++round) {
    for (auto& a : regs) {
      for (const auto& b : regs) a.Merge(b);
    }
  }
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(regs[0] == regs[i]) << regs[0].ToString() << " vs "
                                    << regs[i].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvRegisterPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace evc::crdt
