#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace evc::obs {
namespace {

TEST(Counter, IncrementsByOneAndByDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  EXPECT_EQ(c.value(), 1u);
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(MetricsRegistry, CreatesOnFirstUseAndReturnsSameInstrument) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  Counter& c = reg.CounterFor("net.sent");
  c.Inc();
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(&reg.CounterFor("net.sent"), &c);
  EXPECT_EQ(reg.CounterFor("net.sent").value(), 1u);
}

TEST(MetricsRegistry, ReferencesStayStableAcrossGrowth) {
  MetricsRegistry reg;
  Counter& c = reg.CounterFor("a");
  Histogram& h = reg.HistogramFor("lat");
  // Registering many more instruments must not move the earlier ones —
  // hot paths cache these references across the whole run.
  for (int i = 0; i < 1000; ++i) {
    reg.CounterFor("c" + std::to_string(i));
    reg.HistogramFor("h" + std::to_string(i));
  }
  c.Inc();
  h.Add(5.0);
  EXPECT_EQ(reg.CounterFor("a").value(), 1u);
  EXPECT_EQ(reg.HistogramFor("lat").count(), 1u);
}

TEST(MetricsRegistry, IterationIsNameOrdered) {
  MetricsRegistry reg;
  reg.CounterFor("zeta");
  reg.CounterFor("alpha");
  reg.CounterFor("mid");
  std::vector<std::string> names;
  for (const auto& [name, c] : reg.counters()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(MetricsRegistry, MergeFromAddsCountersAndGaugesAndHistograms) {
  MetricsRegistry a, b;
  a.CounterFor("x").Inc(2);
  b.CounterFor("x").Inc(3);
  b.CounterFor("only_b").Inc(7);
  a.GaugeFor("g").Set(1.0);
  b.GaugeFor("g").Set(2.5);
  a.HistogramFor("h").Add(1.0);
  b.HistogramFor("h").Add(100.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.CounterFor("x").value(), 5u);
  EXPECT_EQ(a.CounterFor("only_b").value(), 7u);
  EXPECT_DOUBLE_EQ(a.GaugeFor("g").value(), 3.5);
  EXPECT_EQ(a.HistogramFor("h").count(), 2u);
  EXPECT_DOUBLE_EQ(a.HistogramFor("h").min(), 1.0);
  EXPECT_DOUBLE_EQ(a.HistogramFor("h").max(), 100.0);
  // The source is untouched.
  EXPECT_EQ(b.CounterFor("x").value(), 3u);
}

TEST(Metrics, NodeRegistriesGrowLazily) {
  Metrics m;
  EXPECT_EQ(m.node_limit(), 0u);
  EXPECT_EQ(m.node_if(3), nullptr);
  m.node(3).CounterFor("n").Inc();
  EXPECT_EQ(m.node_limit(), 4u);
  ASSERT_NE(m.node_if(3), nullptr);
  EXPECT_EQ(m.node_if(3)->counters().at("n").value(), 1u);
  // Nodes below the high-water mark that never recorded stay null.
  EXPECT_EQ(m.node_if(0), nullptr);
  EXPECT_EQ(m.node_if(99), nullptr);
}

TEST(Metrics, MergedCombinesGlobalAndAllNodes) {
  Metrics m;
  m.global().CounterFor("ops").Inc(1);
  m.node(0).CounterFor("ops").Inc(10);
  m.node(2).CounterFor("ops").Inc(100);
  m.node(2).HistogramFor("lat").Add(7.0);
  const MetricsRegistry merged = m.Merged();
  EXPECT_EQ(merged.counters().at("ops").value(), 111u);
  EXPECT_EQ(merged.histograms().at("lat").count(), 1u);
}

}  // namespace
}  // namespace evc::obs
