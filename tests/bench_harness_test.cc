// Regression test for a bug the [[nodiscard]] sweep surfaced: every bench
// called harness.Write() and silently ignored a failed JSON export, so a
// bench whose BENCH_<name>.json could not be written still exited 0 and CI's
// schema gate never saw the file. Write() must report failure (benches now
// EVC_CHECK_OK it), and the success path must produce the file.

#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace evc::bench {
namespace {

class BenchHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("EVC_BENCH_OUT");
    if (prev != nullptr) prev_out_ = prev;
  }
  void TearDown() override {
    if (prev_out_.empty()) {
      unsetenv("EVC_BENCH_OUT");
    } else {
      setenv("EVC_BENCH_OUT", prev_out_.c_str(), 1);
    }
  }
  std::string prev_out_;
};

TEST_F(BenchHarnessTest, WriteReportsFailureOnUnwritableDirectory) {
  setenv("EVC_BENCH_OUT", "/nonexistent-evc-bench-dir/nested", 1);
  Harness harness("harness_regression");
  harness.Metric("ops", 1.0);
  Status status = harness.Write();
  EXPECT_FALSE(status.ok())
      << "a failed bench export must not look like success";
}

TEST_F(BenchHarnessTest, WriteSucceedsAndProducesTheFile) {
  const std::string dir = ::testing::TempDir();
  setenv("EVC_BENCH_OUT", dir.c_str(), 1);
  Harness harness("harness_regression");
  harness.Metric("ops", 1.0);
  ASSERT_TRUE(harness.Write().ok());
  const std::string path = dir + "/BENCH_harness_regression.json";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "expected " << path;
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace evc::bench
