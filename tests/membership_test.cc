// Membership epochs end to end: view codec, Paxos-backed epoch claims, and
// the elastic DynamoCluster lifecycle (live join with key migration, live
// removal, epoch fences on stale coordinators, hint redirection off departed
// nodes). The reconfiguration protocol itself is documented in DESIGN.md
// §4.4; these tests pin its observable contract.

#include "membership/config_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consensus/paxos.h"
#include "membership/view.h"
#include "replication/quorum_store.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/rpc.h"
#include "sim/simulator.h"

namespace evc::membership {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(MembershipViewTest, EncodeDecodeRoundTrip) {
  MembershipView view;
  view.epoch = 42;
  view.members = {3, 7, 190000};
  Result<MembershipView> out = MembershipView::Decode(view.Encode());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->epoch, 42u);
  EXPECT_EQ(out->members, view.members);
}

TEST(MembershipViewTest, DecodeRejectsTrailingBytes) {
  MembershipView view;
  view.epoch = 1;
  view.members = {1, 2};
  std::string wire = view.Encode();
  wire.push_back('x');
  EXPECT_FALSE(MembershipView::Decode(wire).ok());
}

TEST(MembershipViewTest, ContainsChecksMembership) {
  MembershipView view;
  view.members = {2, 5, 9};
  EXPECT_TRUE(view.Contains(5));
  EXPECT_FALSE(view.Contains(4));
}

// ---------------------------------------------------------------------------
// ConfigService on a live Paxos group.
// ---------------------------------------------------------------------------

class ConfigServiceTest : public ::testing::Test {
 protected:
  void Build(uint64_t seed = 7) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    net_ = std::make_unique<sim::Network>(
        sim_.get(),
        std::make_unique<sim::ConstantLatency>(3 * kMillisecond));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    paxos_ = std::make_unique<consensus::PaxosCluster>(
        rpc_.get(), consensus::PaxosOptions{});
    paxos_servers_ = paxos_->AddServers(3);
    paxos_->Start();
    sim_->RunFor(2 * kSecond);  // first leader
    service_ = std::make_unique<ConfigService>(rpc_.get(), paxos_.get(),
                                               paxos_servers_);
  }

  bool BootstrapSync(ConfigService* svc, std::vector<sim::NodeId> members) {
    std::optional<Status> out;
    svc->Bootstrap(std::move(members), [&](Status s) { out = s; });
    sim_->RunFor(10 * kSecond);
    return out.has_value() && out->ok();
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<consensus::PaxosCluster> paxos_;
  std::vector<sim::NodeId> paxos_servers_;
  std::unique_ptr<ConfigService> service_;
};

TEST_F(ConfigServiceTest, BootstrapClaimsEpochOne) {
  Build();
  ASSERT_TRUE(BootstrapSync(service_.get(), {30, 10, 20}));
  EXPECT_EQ(service_->committed().epoch, 1u);
  EXPECT_EQ(service_->committed().members,
            (std::vector<sim::NodeId>{10, 20, 30}));  // sorted
  EXPECT_FALSE(service_->ReconfigInProgress());
}

TEST_F(ConfigServiceTest, RacingBootstrapsAdoptOneChosenView) {
  // Epoch claims go through kPutIfAbsent: exactly one racer creates the
  // epoch-1 record, the other adopts the chosen view instead of forking.
  Build();
  ConfigService rival(rpc_.get(), paxos_.get(), paxos_servers_);
  std::optional<Status> a, b;
  service_->Bootstrap({10, 20, 30}, [&](Status s) { a = s; });
  rival.Bootstrap({40, 50, 60}, [&](Status s) { b = s; });
  sim_->RunFor(10 * kSecond);
  ASSERT_TRUE(a.has_value() && a->ok());
  ASSERT_TRUE(b.has_value() && b->ok());
  EXPECT_EQ(service_->committed().epoch, 1u);
  EXPECT_EQ(rival.committed().epoch, 1u);
  EXPECT_EQ(service_->committed().members, rival.committed().members);
}

TEST_F(ConfigServiceTest, SingleReconfigurationInFlight) {
  Build();
  ASSERT_TRUE(BootstrapSync(service_.get(), {10, 20, 30}));
  std::optional<Status> first;
  ASSERT_TRUE(service_->ProposeJoin(40, [&](Status s) { first = s; }).ok());
  sim_->RunFor(500 * kMillisecond);
  EXPECT_TRUE(service_->ReconfigInProgress());
  // A second proposal must fail fast rather than queue or fork.
  EXPECT_FALSE(service_->ProposeLeave(10, [](Status) {}).ok());
  // With no subscribers reporting catch-up, the service commits after the
  // catch-up timeout (crashed reporters must not wedge reconfiguration).
  sim_->RunFor(15 * kSecond);
  EXPECT_EQ(service_->committed().epoch, 2u);
  EXPECT_TRUE(service_->committed().Contains(40));
  EXPECT_FALSE(service_->ReconfigInProgress());
  EXPECT_GE(service_->stats().commit_timeouts, 1u);
}

// ---------------------------------------------------------------------------
// Elastic DynamoCluster lifecycle.
// ---------------------------------------------------------------------------

class ElasticClusterTest : public ::testing::Test {
 protected:
  static repl::QuorumConfig StrictRingConfig() {
    repl::QuorumConfig cfg;
    cfg.replication_factor = 3;
    cfg.read_quorum = 2;
    cfg.write_quorum = 2;
    cfg.sloppy = false;
    cfg.read_repair = true;
    cfg.use_hash_ring = true;
    return cfg;
  }

  void Build(repl::QuorumConfig cfg, int servers = 4, uint64_t seed = 11) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    net_ = std::make_unique<sim::Network>(
        sim_.get(),
        std::make_unique<sim::ConstantLatency>(3 * kMillisecond));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    paxos_ = std::make_unique<consensus::PaxosCluster>(
        rpc_.get(), consensus::PaxosOptions{});
    paxos_servers_ = paxos_->AddServers(3);
    paxos_->Start();
    sim_->RunFor(2 * kSecond);
    service_ = std::make_unique<ConfigService>(rpc_.get(), paxos_.get(),
                                               paxos_servers_);
    cluster_ = std::make_unique<repl::DynamoCluster>(rpc_.get(), cfg);
    servers_ = cluster_->AddServers(servers);
    cluster_->StartHintDelivery(200 * kMillisecond);
    cluster_->StartFailureDetection();
    std::optional<Status> boot;
    service_->Bootstrap(servers_, [&](Status s) { boot = s; });
    sim_->RunFor(10 * kSecond);
    ASSERT_TRUE(boot.has_value() && boot->ok());
    cluster_->EnableElastic(service_.get());
    client_ = net_->AddNode();
  }

  bool WaitFor(const std::function<bool()>& pred,
               sim::Time timeout = 30 * kSecond) {
    const sim::Time end = sim_->Now() + timeout;
    while (sim_->Now() < end) {
      if (pred()) return true;
      sim_->RunFor(200 * kMillisecond);
    }
    return pred();
  }

  Result<Version> PutSync(sim::NodeId coordinator, const std::string& key,
                          const std::string& value) {
    std::optional<Result<Version>> out;
    cluster_->Put(client_, coordinator, key, value, {},
                  [&](Result<Version> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  Result<repl::ReadResult> GetSync(sim::NodeId coordinator,
                                   const std::string& key) {
    std::optional<Result<repl::ReadResult>> out;
    cluster_->Get(client_, coordinator, key,
                  [&](Result<repl::ReadResult> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<consensus::PaxosCluster> paxos_;
  std::vector<sim::NodeId> paxos_servers_;
  std::unique_ptr<ConfigService> service_;
  std::unique_ptr<repl::DynamoCluster> cluster_;
  std::vector<sim::NodeId> servers_;
  sim::NodeId client_ = 0;
};

TEST_F(ElasticClusterTest, LiveJoinMigratesKeysAndCommits) {
  Build(StrictRingConfig());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        PutSync(servers_[i % servers_.size()], "k" + std::to_string(i),
                "v" + std::to_string(i))
            .ok());
  }
  auto added = cluster_->AddServerLive([](Status) {});
  ASSERT_TRUE(added.ok());
  const sim::NodeId newcomer = *added;
  ASSERT_TRUE(WaitFor([&] {
    return cluster_->committed_epoch() == 2 && !cluster_->Migrating();
  }));
  const std::vector<sim::NodeId> members = cluster_->CommittedMembers();
  EXPECT_NE(std::find(members.begin(), members.end(), newcomer),
            members.end());
  // The newcomer took over ranges, and their keys were streamed to it
  // BEFORE the epoch committed — not left for background repair.
  EXPECT_GT(cluster_->stats().keys_migrated, 0u);
  EXPECT_GE(cluster_->stats().migrations_completed, 1u);
  // Every key is still readable through the new membership, including via
  // the newcomer as coordinator.
  for (int i = 0; i < 20; ++i) {
    auto got = GetSync(newcomer, "k" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "k" << i;
    ASSERT_EQ(got->versions.size(), 1u) << "k" << i;
    EXPECT_EQ(got->versions[0].value, "v" + std::to_string(i));
  }
}

TEST_F(ElasticClusterTest, LiveRemovalCommitsAndDepartedNodeStopsServing) {
  Build(StrictRingConfig());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(PutSync(servers_[0], "k" + std::to_string(i), "v").ok());
  }
  const sim::NodeId victim = servers_[1];
  ASSERT_TRUE(cluster_->RemoveServerLive(victim, [](Status) {}).ok());
  ASSERT_TRUE(WaitFor([&] {
    return cluster_->committed_epoch() == 2 && !cluster_->Migrating();
  }));
  const std::vector<sim::NodeId> members = cluster_->CommittedMembers();
  EXPECT_EQ(std::find(members.begin(), members.end(), victim), members.end());
  // The survivors keep serving the full keyspace...
  for (int i = 0; i < 12; ++i) {
    auto got = GetSync(members[i % members.size()], "k" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->versions.size(), 1u);
  }
  // ...while the departed node refuses coordination instead of serving a
  // view it is no longer part of.
  EXPECT_FALSE(PutSync(victim, "k0", "late").ok());
}

TEST_F(ElasticClusterTest, StaleCoordinatorFencedThenRecovers) {
  Build(StrictRingConfig());
  const sim::NodeId laggard = servers_[3];
  // Cut only the config channel to one server: data links stay up, so the
  // server keeps serving — but it cannot learn the next epoch.
  net_->SetLinkDropRate(service_->node(), laggard, 1.0);
  ASSERT_TRUE(cluster_->AddServerLive([](Status) {}).ok());
  ASSERT_TRUE(WaitFor([&] { return cluster_->committed_epoch() == 2; }));
  // Clients stamp the config service's committed epoch; the laggard is
  // still on epoch 1, so it must reject rather than serve the old view.
  const uint64_t rejects_before = cluster_->stats().stale_epoch_rejects;
  EXPECT_FALSE(PutSync(laggard, "fenced-key", "v").ok());
  EXPECT_GT(cluster_->stats().stale_epoch_rejects, rejects_before);
  // Heal the config channel: the periodic view pull catches the server up
  // and the same request then succeeds.
  net_->SetLinkDropRate(service_->node(), laggard, 0.0);
  ASSERT_TRUE(WaitFor([&] { return !cluster_->Migrating(); }));
  ASSERT_TRUE(WaitFor([&] { return PutSync(laggard, "fenced-key", "v").ok(); },
                      10 * kSecond));
}

TEST_F(ElasticClusterTest, HintsRedirectToNewOwnerWhenIntendedNodeDeparts) {
  // Satellite regression: a hint addressed to a node that then leaves the
  // membership used to pend forever (delivery retried against a dead node).
  // On epoch change the hint must be re-aimed at the key's new owner and the
  // ledger must stay exact: stored == delivered + lost + pending.
  repl::QuorumConfig cfg = StrictRingConfig();
  cfg.sloppy = true;  // hinted handoff path
  cfg.use_oracle_detector = true;
  Build(cfg);
  // Pick a key owned by the victim, then take the victim down so a sloppy
  // write diverts to a fallback and stores a hint intended for it.
  const sim::NodeId victim = servers_[2];
  std::string key;
  for (int i = 0; i < 200; ++i) {
    const std::string candidate = "k" + std::to_string(i);
    const auto pref = cluster_->PreferenceList(candidate);
    if (!pref.empty() && pref[0] == victim) {
      key = candidate;
      break;
    }
  }
  ASSERT_FALSE(key.empty()) << "no key with victim as primary in 200 tries";
  net_->SetNodeUp(victim, false);
  sim_->RunFor(kSecond);
  sim::NodeId coordinator = 0;
  for (sim::NodeId s : servers_) {
    if (s != victim) {
      coordinator = s;
      break;
    }
  }
  ASSERT_TRUE(PutSync(coordinator, key, "hinted-value").ok());
  EXPECT_GE(cluster_->stats().hints_stored, 1u);
  EXPECT_GE(cluster_->pending_hints(), 1u);
  // Remove the (still down) victim. Its catch-up cannot report, so the
  // config service commits on timeout; the commit then redirects the hint.
  ASSERT_TRUE(cluster_->RemoveServerLive(victim, [](Status) {}).ok());
  ASSERT_TRUE(WaitFor([&] {
    return cluster_->committed_epoch() == 2 && cluster_->pending_hints() == 0;
  }));
  const repl::DynamoStats& stats = cluster_->stats();
  EXPECT_GE(stats.hints_redirected, 1u);
  EXPECT_EQ(stats.hints_stored, stats.hints_delivered + stats.hints_lost);
  // The redirected write is durable at the key's new owners.
  auto got = GetSync(cluster_->CommittedMembers()[0], key);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->versions.size(), 1u);
  EXPECT_EQ(got->versions[0].value, "hinted-value");
}

}  // namespace
}  // namespace evc::membership
