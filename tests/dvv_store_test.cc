#include "storage/dvv_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace evc {
namespace {

std::vector<std::string> Values(const DvvReadResult& r) {
  std::vector<std::string> out;
  for (const auto& s : r.siblings) out.push_back(s.value);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DvvStoreTest, EmptyRead) {
  DvvStore store(0);
  const DvvReadResult r = store.Get("nope");
  EXPECT_TRUE(r.siblings.empty());
  EXPECT_TRUE(r.context.empty());
}

TEST(DvvStoreTest, PutThenGet) {
  DvvStore store(0);
  store.Put("k", "v", {});
  const DvvReadResult r = store.Get("k");
  ASSERT_EQ(r.siblings.size(), 1u);
  EXPECT_EQ(r.siblings[0].value, "v");
  EXPECT_EQ(r.context.Get(0), 1u);
}

TEST(DvvStoreTest, CausalOverwritePrunes) {
  DvvStore store(0);
  store.Put("k", "v1", {});
  const DvvReadResult r1 = store.Get("k");
  store.Put("k", "v2", r1.context);
  const DvvReadResult r2 = store.Get("k");
  EXPECT_EQ(Values(r2), (std::vector<std::string>{"v2"}));
}

TEST(DvvStoreTest, SameCoordinatorBlindWritesKeepSiblings) {
  // THE fix over plain version vectors: two clients with empty contexts
  // writing through the same coordinator both survive.
  DvvStore store(0);
  store.Put("k", "from-client-A", {});
  store.Put("k", "from-client-B", {});
  const DvvReadResult r = store.Get("k");
  EXPECT_EQ(Values(r),
            (std::vector<std::string>{"from-client-A", "from-client-B"}));
}

TEST(DvvStoreTest, SiblingCountBoundedByConcurrentWriters) {
  // Unlike tombstone-accumulating schemes, the sibling set stays bounded:
  // a client that read everything collapses the set to one.
  DvvStore store(0);
  for (int i = 0; i < 10; ++i) {
    store.Put("k", "blind" + std::to_string(i), {});
  }
  EXPECT_EQ(store.Get("k").siblings.size(), 10u);
  const DvvReadResult all = store.Get("k");
  store.Put("k", "resolved", all.context);
  EXPECT_EQ(Values(store.Get("k")), (std::vector<std::string>{"resolved"}));
}

TEST(DvvStoreTest, PartialContextPrunesOnlyObserved) {
  DvvStore store(0);
  store.Put("k", "old", {});
  const DvvReadResult r1 = store.Get("k");  // client X reads {old}
  store.Put("k", "concurrent", {});         // client Y writes blind
  store.Put("k", "replacement", r1.context);  // X replaces what it saw
  const DvvReadResult r2 = store.Get("k");
  EXPECT_EQ(Values(r2),
            (std::vector<std::string>{"concurrent", "replacement"}));
}

TEST(DvvStoreTest, DeleteTombstonesObservedSiblings) {
  DvvStore store(0);
  store.Put("k", "v", {});
  const DvvReadResult r = store.Get("k");
  store.Delete("k", r.context);
  EXPECT_TRUE(store.Get("k").siblings.empty());
  EXPECT_EQ(store.sibling_count("k"), 1u);  // the tombstone remains
}

TEST(DvvStoreTest, ConcurrentWriteSurvivesDelete) {
  DvvStore store(0);
  store.Put("k", "v", {});
  const DvvReadResult r = store.Get("k");
  store.Delete("k", r.context);
  store.Put("k", "concurrent-add", {});  // blind: did not see the delete
  const DvvReadResult after = store.Get("k");
  EXPECT_EQ(Values(after), (std::vector<std::string>{"concurrent-add"}));
}

TEST(DvvStoreTest, MergeRemoteTransfersState) {
  DvvStore a(0), b(1);
  a.Put("k", "x", {});
  EXPECT_TRUE(b.MergeRemote("k", a.GetContainer("k")));
  EXPECT_FALSE(b.MergeRemote("k", a.GetContainer("k")));  // idempotent
  EXPECT_EQ(Values(b.Get("k")), (std::vector<std::string>{"x"}));
  EXPECT_TRUE(DvvStore::Identical(a, b, "k"));
}

TEST(DvvStoreTest, MergeKeepsConcurrentDropsObservedRemovals) {
  DvvStore a(0), b(1);
  a.Put("k", "v1", {});
  b.MergeRemote("k", a.GetContainer("k"));
  // b overwrites causally; a concurrently adds a blind sibling.
  const DvvReadResult rb = b.Get("k");
  b.Put("k", "v2", rb.context);
  a.Put("k", "blind", {});
  // Converge both ways.
  a.MergeRemote("k", b.GetContainer("k"));
  b.MergeRemote("k", a.GetContainer("k"));
  EXPECT_TRUE(DvvStore::Identical(a, b, "k"));
  EXPECT_EQ(Values(a.Get("k")), (std::vector<std::string>{"blind", "v2"}));
}

TEST(DvvStoreTest, ThreeReplicaRandomConvergence) {
  Rng rng(17);
  DvvStore replicas[3] = {DvvStore(0), DvvStore(1), DvvStore(2)};
  for (int step = 0; step < 400; ++step) {
    const int r = static_cast<int>(rng.NextBounded(3));
    const double dice = rng.NextDouble();
    if (dice < 0.35) {
      // Causal write: read locally first.
      const DvvReadResult read = replicas[r].Get("k");
      replicas[r].Put("k", "v" + std::to_string(step), read.context);
    } else if (dice < 0.5) {
      replicas[r].Put("k", "blind" + std::to_string(step), {});
    } else if (dice < 0.6) {
      const DvvReadResult read = replicas[r].Get("k");
      replicas[r].Delete("k", read.context);
    } else {
      const int peer = static_cast<int>(rng.NextBounded(3));
      replicas[r].MergeRemote("k", replicas[peer].GetContainer("k"));
    }
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i != j) {
          replicas[i].MergeRemote("k", replicas[j].GetContainer("k"));
        }
      }
    }
  }
  EXPECT_TRUE(DvvStore::Identical(replicas[0], replicas[1], "k"));
  EXPECT_TRUE(DvvStore::Identical(replicas[1], replicas[2], "k"));
}

// The head-to-head anomaly demonstration: plain VV store loses one of two
// concurrent same-coordinator writes; the DVV store keeps both.
TEST(DvvStoreTest, HeadToHeadAgainstPlainVersionVectors) {
  DvvStore dvv(0);
  dvv.Put("cart", "milk", {});
  dvv.Put("cart", "eggs", {});
  EXPECT_EQ(dvv.Get("cart").siblings.size(), 2u);  // both kept

  // (The plain-VV behaviour is asserted in
  // VersionedStoreTest.BlindWritesSameCoordinatorFalselyOverwrite.)
}

class DvvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DvvPropertyTest, MergeIsCommutativeAndIdempotent) {
  Rng rng(GetParam());
  DvvStore a(0), b(1);
  for (int i = 0; i < 50; ++i) {
    DvvStore& target = rng.NextBool(0.5) ? a : b;
    if (rng.NextBool(0.6)) {
      target.Put("k", "v" + std::to_string(i),
                 rng.NextBool(0.5) ? target.Get("k").context
                                   : VersionVector());
    } else if (rng.NextBool(0.3)) {
      target.Delete("k", target.Get("k").context);
    }
  }
  // Merge in both orders into fresh observers.
  DvvStore ab(7), ba(8);
  ab.MergeRemote("k", a.GetContainer("k"));
  ab.MergeRemote("k", b.GetContainer("k"));
  ba.MergeRemote("k", b.GetContainer("k"));
  ba.MergeRemote("k", a.GetContainer("k"));
  EXPECT_TRUE(DvvStore::Identical(ab, ba, "k"));
  // Idempotence.
  DvvStore again(9);
  again.MergeRemote("k", a.GetContainer("k"));
  EXPECT_FALSE(again.MergeRemote("k", a.GetContainer("k")));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvvPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace evc
