// Satellite S4: background traffic loses to client traffic under overload.
//
// A sloppy-quorum cluster accumulates hinted handoffs while one replica is
// down. When the replica returns, every holder bursts its hint batch at it —
// background traffic — right as client operations keep the node's service
// slots near saturation. The admission gate must shed the background burst
// (small background queue, served only when foreground is idle) while
// client-op latency stays bounded by the foreground queue, not by the burst.
//
// Swept across 10 seeds because the collision between the hint burst and
// the client stream lands differently each schedule; the priority inversion
// would only need one unlucky interleaving to show up.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "replication/quorum_store.h"
#include "sim/latency.h"
#include "sim/rpc.h"

namespace evc::repl {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct SweepResult {
  uint64_t shed_background = 0;  // summed over servers (AdmissionStats)
  uint64_t shed_foreground = 0;
  uint64_t obs_shed_background = 0;  // same, via per-node obs counters
  uint64_t hints_stored = 0;
  uint64_t client_ok = 0;
  double client_p99_ms = 0;
};

SweepResult RunSeed(uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim,
                   std::make_unique<sim::ConstantLatency>(2 * kMillisecond));
  sim::Rpc rpc(&net);

  QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = 2;
  config.write_quorum = 2;
  config.sloppy = true;
  config.use_oracle_detector = true;
  config.admission_enabled = true;
  config.admission.max_concurrent = 2;
  config.admission.service_time = 2 * kMillisecond;  // 1000 req/s per node
  config.resilience.breaker_enabled = false;

  DynamoCluster cluster(&rpc, config);
  const auto servers = cluster.AddServers(5);
  const sim::NodeId client = net.AddNode();
  const sim::NodeId victim = servers[4];
  Rng rng(seed ^ 0xbadc0ffeULL);

  // Phase 1 — build a hint backlog: with the victim down, sloppy writes to
  // its ranges divert to fallbacks, each storing a hint for the victim.
  net.SetNodeUp(victim, false);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBounded(64));
    cluster.Put(client, servers[i % 4], key, "v" + std::to_string(i), {},
                [](Result<Version>) {});
    sim.RunFor(2 * kMillisecond);
  }
  const uint64_t hints_stored = cluster.stats().hints_stored;

  // Phase 2 — the collision. The victim comes back; hint delivery will
  // burst every holder's batch at it. Meanwhile client ops coordinated at
  // the victim keep its slots ~80% busy (500 direct ops/s plus replica
  // legs against 1000 req/s capacity): foreground fills the slots and the
  // front of the foreground queue, so the background burst overflows its
  // deliberately small queue and times out of the sojourn bound.
  net.SetNodeUp(victim, true);
  cluster.StartHintDelivery(25 * kMillisecond);

  Histogram client_latency;
  uint64_t client_ok = 0;
  const sim::Time phase_end = sim.Now() + 2 * kSecond;
  std::function<void()> arrive = [&] {
    if (sim.Now() >= phase_end) return;
    sim.ScheduleAfter(2 * kMillisecond, arrive);
    const std::string key = "k" + std::to_string(rng.NextBounded(64));
    const sim::Time issued = sim.Now();
    auto done = [&, issued](bool ok) {
      if (!ok) return;
      ++client_ok;
      client_latency.Add(static_cast<double>(sim.Now() - issued));
    };
    if (rng.NextBool(0.5)) {
      cluster.Put(client, victim, key, "w", {},
                  [done](Result<Version> r) { done(r.ok()); });
    } else {
      cluster.Get(client, victim, key,
                  [done](Result<ReadResult> r) { done(r.ok()); });
    }
  };
  arrive();
  sim.RunFor(phase_end - sim.Now() + 500 * kMillisecond);

  SweepResult result;
  result.hints_stored = hints_stored;
  result.client_ok = client_ok;
  result.client_p99_ms = client_latency.Percentile(0.99) / kMillisecond;
  for (sim::NodeId node : servers) {
    const resilience::AdmissionStats& a = cluster.admission(node)->stats();
    result.shed_background += a.shed_background;
    result.shed_foreground += a.shed_foreground;
    result.obs_shed_background += sim.metrics()
                                      .node(node)
                                      .CounterFor("admission.shed_background")
                                      .value();
  }
  return result;
}

TEST(OverloadPriorityTest, BackgroundShedsFirstAndClientP99StaysBounded) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const SweepResult r = RunSeed(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    // The setup really produced background pressure (hints dedupe per
    // (intended, key), so the ceiling is the ~60% of the 64-key space whose
    // preference list includes the victim)...
    ASSERT_GT(r.hints_stored, 20u);
    // ...and the gate shed it: background sheds happened, and more of them
    // than foreground sheds (the busy-but-not-overloaded foreground should
    // shed rarely if at all).
    EXPECT_GT(r.shed_background, 0u);
    EXPECT_GT(r.shed_background, r.shed_foreground);
    // The obs counters tell the same story (what an operator would see).
    EXPECT_EQ(r.obs_shed_background, r.shed_background);
    // Client goodput survived the burst and p99 stayed bounded by the
    // foreground queue (64 deep x 2ms service / 2 slots = 64ms of queue,
    // plus RTTs and one retry), nowhere near the seconds-long collapse an
    // unprioritized queue would produce.
    EXPECT_GT(r.client_ok, 500u);
    EXPECT_LT(r.client_p99_ms, 250.0);
  }
}

}  // namespace
}  // namespace evc::repl
