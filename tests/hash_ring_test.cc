#include "replication/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "replication/quorum_store.h"

namespace evc::repl {
namespace {

TEST(HashRingTest, SingleServerOwnsEverything) {
  HashRing ring(8);
  ring.AddServer(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.PrimaryFor("key" + std::to_string(i)), 7u);
  }
}

TEST(HashRingTest, PreferenceListDistinctAndDeterministic) {
  HashRing ring(16);
  for (sim::NodeId n = 0; n < 10; ++n) ring.AddServer(n);
  const auto a = ring.PreferenceList("some-key", 3);
  const auto b = ring.PreferenceList("some-key", 3);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  std::set<sim::NodeId> distinct(a.begin(), a.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(HashRingTest, RequestingMoreThanServersClamps) {
  HashRing ring(4);
  ring.AddServer(1);
  ring.AddServer(2);
  EXPECT_EQ(ring.PreferenceList("k", 5).size(), 2u);
}

TEST(HashRingTest, VirtualNodesBalanceLoad) {
  // With 1 vnode per server, arc lengths vary wildly; with 128, primary
  // ownership approaches uniform.
  auto imbalance = [](int vnodes) {
    HashRing ring(vnodes);
    for (sim::NodeId n = 0; n < 8; ++n) ring.AddServer(n);
    std::map<sim::NodeId, int> owned;
    const int keys = 20000;
    for (int i = 0; i < keys; ++i) {
      ++owned[ring.PrimaryFor("key" + std::to_string(i))];
    }
    int max_owned = 0;
    for (const auto& [node, count] : owned) {
      max_owned = std::max(max_owned, count);
    }
    // Ratio of the hottest server's share to the fair share.
    return static_cast<double>(max_owned) / (keys / 8.0);
  };
  const double one_vnode = imbalance(1);
  const double many_vnodes = imbalance(128);
  EXPECT_GT(one_vnode, many_vnodes);
  // Variance of arc lengths shrinks ~1/sqrt(vnodes): expect well under 2x
  // the fair share at 128 vnodes (typically ~1.2-1.4x), versus often 3-4x
  // with a single vnode.
  EXPECT_LT(many_vnodes, 1.6);
  EXPECT_GT(one_vnode, 1.6);
}

TEST(HashRingTest, AddingServerRemapsOnlyAFraction) {
  HashRing ring(64);
  for (sim::NodeId n = 0; n < 10; ++n) ring.AddServer(n);
  std::map<std::string, sim::NodeId> before;
  const int keys = 5000;
  for (int i = 0; i < keys; ++i) {
    const std::string key = "key" + std::to_string(i);
    before[key] = ring.PrimaryFor(key);
  }
  ring.AddServer(10);
  int moved = 0;
  for (const auto& [key, owner] : before) {
    if (ring.PrimaryFor(key) != owner) ++moved;
  }
  // Consistent hashing: ~1/11 of keys move to the new server; far from the
  // ~10/11 a modulo scheme would remap.
  const double fraction = static_cast<double>(moved) / keys;
  EXPECT_GT(fraction, 0.03);
  EXPECT_LT(fraction, 0.20);
  // And every moved key moved TO the new server.
  for (const auto& [key, owner] : before) {
    const sim::NodeId now = ring.PrimaryFor(key);
    if (now != owner) {
      EXPECT_EQ(now, 10u) << key;
    }
  }
}

TEST(HashRingTest, RemovingServerSpillsToSuccessors) {
  HashRing ring(64);
  for (sim::NodeId n = 0; n < 5; ++n) ring.AddServer(n);
  std::map<std::string, sim::NodeId> before;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key" + std::to_string(i);
    before[key] = ring.PrimaryFor(key);
  }
  ring.RemoveServer(2);
  for (const auto& [key, owner] : before) {
    const sim::NodeId now = ring.PrimaryFor(key);
    if (owner != 2) {
      EXPECT_EQ(now, owner) << key;  // unaffected keys stay put
    } else {
      EXPECT_NE(now, 2u) << key;
    }
  }
}

TEST(HashRingDynamoTest, ClusterWorksWithRingPlacement) {
  sim::Simulator sim(3);
  sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(
                             5 * sim::kMillisecond));
  sim::Rpc rpc(&net);
  QuorumConfig config;
  config.use_hash_ring = true;
  DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(8);
  const sim::NodeId client = net.AddNode();
  int completed = 0;
  for (int i = 0; i < 30; ++i) {
    cluster.Put(client, servers[i % 8], "key" + std::to_string(i), "v", {},
                [&](Result<Version> r) {
                  ASSERT_TRUE(r.ok());
                  ++completed;
                });
  }
  sim.RunFor(10 * sim::kSecond);
  EXPECT_EQ(completed, 30);
  for (int i = 0; i < 30; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_TRUE(cluster.ReplicasConverged(key)) << key;
    // Preference list agrees with the standalone ring semantics.
    const auto pref = cluster.PreferenceList(key);
    EXPECT_EQ(pref.size(), 3u);
    std::set<sim::NodeId> distinct(pref.begin(), pref.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

// Regression: two servers' vnodes can hash to the same ring point. The old
// AddServer silently overwrote the first owner's point, and RemoveServer of
// the *second* server then erased the survivor's arc. A narrowed point
// space (mask 0xFF: 128 vnodes into 256 slots) forces collisions.
TEST(HashRingTest, VnodeCollisionsAreReprobedNotOverwritten) {
  HashRing ring(64, /*point_mask=*/0xFF);
  ring.AddServer(1);
  ring.AddServer(2);
  // Every vnode of both servers is on the ring: nothing was overwritten.
  EXPECT_EQ(ring.point_count(), 128u);

  // Removing server 2 must erase exactly its own points; server 1 keeps
  // all 64 of its arcs and still owns every key.
  ring.RemoveServer(2);
  EXPECT_EQ(ring.point_count(), 64u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(ring.PrimaryFor("key" + std::to_string(i)), 1u);
  }
}

TEST(HashRingTest, ReprobedRingStillServesDistinctPreferenceLists) {
  HashRing ring(32, /*point_mask=*/0xFF);
  for (sim::NodeId n = 1; n <= 5; ++n) ring.AddServer(n);
  EXPECT_EQ(ring.point_count(), 5u * 32u);
  for (int i = 0; i < 50; ++i) {
    const auto pref = ring.PreferenceList("k" + std::to_string(i), 3);
    ASSERT_EQ(pref.size(), 3u);
    std::set<sim::NodeId> distinct(pref.begin(), pref.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
  // Add/remove churn keeps the books exact.
  ring.RemoveServer(3);
  EXPECT_EQ(ring.point_count(), 4u * 32u);
  ring.AddServer(3);
  EXPECT_EQ(ring.point_count(), 5u * 32u);
}

TEST(HashRingTest, ShortKeysSpreadAcrossTheRing) {
  // Regression: ring positions must be post-mixed. Raw FNV-1a of an n-byte
  // key only spans ~2^(40+lg n) of the 2^64 point space, so every short key
  // ("k0".."k9" — exactly the fuzz keyspace) used to land on one arc and
  // the whole keyspace collapsed onto a single preference list.
  HashRing ring(64);
  for (sim::NodeId n = 0; n < 8; ++n) ring.AddServer(n);
  std::set<sim::NodeId> primaries;
  for (int i = 0; i < 10; ++i) {
    primaries.insert(ring.PrimaryFor("k" + std::to_string(i)));
  }
  EXPECT_GT(primaries.size(), 1u) << "all short keys on one arc";
}

TEST(HashRingTest, RemapDeltaBoundedOnJoin) {
  // The consistent-hashing contract across a membership change: when a
  // server joins an n-server ring, only about a 1/(n+1) share of keys may
  // change primary, every moved key must move TO the newcomer, and keys
  // that stay put must keep their whole ownership walk (untouched ranges
  // keep ownership order — the property epoch migration relies on to move
  // only the delta).
  const int kKeys = 20000;
  const int kServers = 8;
  HashRing ring(64);
  for (sim::NodeId n = 0; n < kServers; ++n) ring.AddServer(n);
  std::vector<sim::NodeId> before_primary(kKeys);
  std::vector<std::vector<sim::NodeId>> before_walk(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    before_primary[i] = ring.PrimaryFor(key);
    before_walk[i] = ring.PreferenceList(key, 3);
  }
  const sim::NodeId newcomer = 100;
  ring.AddServer(newcomer);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    const sim::NodeId primary = ring.PrimaryFor(key);
    if (primary != before_primary[i]) {
      ++moved;
      EXPECT_EQ(primary, newcomer) << "key moved to a non-joining server";
    }
    // A walk that does not include the newcomer was untouched by the join
    // and must be byte-identical to the old ownership order.
    const auto walk = ring.PreferenceList(key, 3);
    if (std::find(walk.begin(), walk.end(), newcomer) == walk.end()) {
      EXPECT_EQ(walk, before_walk[i]) << "untouched range reordered";
    }
  }
  // Fair share is kKeys/(n+1); allow 50% headroom for vnode arc variance.
  const double fair = static_cast<double>(kKeys) / (kServers + 1);
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, static_cast<int>(fair * 1.5))
      << "join moved far more than the newcomer's fair share";
}

TEST(HashRingTest, RemapDeltaBoundedOnLeave) {
  // Removal is symmetric: only keys the leaver owned may move, and they
  // must fall to the clockwise successors already next in their walk.
  const int kKeys = 20000;
  HashRing ring(64);
  for (sim::NodeId n = 0; n < 8; ++n) ring.AddServer(n);
  const sim::NodeId leaver = 3;
  std::vector<sim::NodeId> before_primary(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    before_primary[i] = ring.PrimaryFor("key" + std::to_string(i));
  }
  ring.RemoveServer(leaver);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const sim::NodeId primary = ring.PrimaryFor("key" + std::to_string(i));
    if (primary != before_primary[i]) {
      ++moved;
      EXPECT_EQ(before_primary[i], leaver)
          << "a key not owned by the leaver moved";
    }
  }
  const double fair = static_cast<double>(kKeys) / 8;
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, static_cast<int>(fair * 1.5));
}

TEST(HashRingDynamoTest, SloppyQuorumStillWorksOnRing) {
  sim::Simulator sim(5);
  sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(
                             5 * sim::kMillisecond));
  sim::Rpc rpc(&net);
  QuorumConfig config;
  config.use_hash_ring = true;
  config.sloppy = true;
  DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(6);
  cluster.StartFailureDetection();
  const sim::NodeId client = net.AddNode();
  const auto pref = cluster.PreferenceList("k");
  net.SetNodeUp(pref[1], false);
  net.SetNodeUp(pref[2], false);
  sim.RunFor(sim::kSecond);  // heartbeats convict the dead replicas
  int coordinator_index = 0;
  for (size_t i = 0; i < servers.size(); ++i) {
    if (servers[i] == pref[0]) coordinator_index = static_cast<int>(i);
  }
  bool ok = false;
  cluster.Put(client, servers[coordinator_index], "k", "v", {},
              [&](Result<Version> r) { ok = r.ok(); });
  sim.RunFor(5 * sim::kSecond);
  EXPECT_TRUE(ok);
  EXPECT_GE(cluster.stats().sloppy_diversions, 2u);
}

}  // namespace
}  // namespace evc::repl
