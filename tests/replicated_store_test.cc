#include "core/replicated_store.h"

#include <gtest/gtest.h>

#include <optional>

namespace evc::core {
namespace {

using sim::kMillisecond;
using sim::kSecond;

Status PutSync(ReplicatedStore* store, sim::NodeId client,
               const std::string& key, const std::string& value,
               sim::Time budget = 30 * kSecond) {
  std::optional<Status> out;
  store->Put(client, key, value, [&](Status s) { out = std::move(s); });
  store->RunFor(budget);
  EVC_CHECK(out.has_value());
  return *out;
}

Result<std::string> GetSync(ReplicatedStore* store, sim::NodeId client,
                            const std::string& key,
                            sim::Time budget = 30 * kSecond) {
  std::optional<Result<std::string>> out;
  store->Get(client, key,
             [&](Result<std::string> r) { out = std::move(r); });
  store->RunFor(budget);
  EVC_CHECK(out.has_value());
  return *out;
}

class ReplicatedStoreLevelTest
    : public ::testing::TestWithParam<ConsistencyLevel> {};

TEST_P(ReplicatedStoreLevelTest, PutGetRoundTripSameClient) {
  StoreOptions options;
  options.level = GetParam();
  ReplicatedStore store(options);
  const sim::NodeId client = store.AddClient(0);
  ASSERT_TRUE(PutSync(&store, client, "k", "v").ok());
  auto get = GetSync(&store, client, "k");
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(*get, "v");
}

TEST_P(ReplicatedStoreLevelTest, MissingKeyIsNotFound) {
  StoreOptions options;
  options.level = GetParam();
  ReplicatedStore store(options);
  const sim::NodeId client = store.AddClient(0);
  auto get = GetSync(&store, client, "never");
  EXPECT_TRUE(get.status().IsNotFound()) << get.status().ToString();
}

TEST_P(ReplicatedStoreLevelTest, CrossDatacenterReadAfterQuiescence) {
  StoreOptions options;
  options.level = GetParam();
  ReplicatedStore store(options);
  const sim::NodeId writer = store.AddClient(0);
  const sim::NodeId reader = store.AddClient(2);
  ASSERT_TRUE(PutSync(&store, writer, "k", "v").ok());
  store.RunFor(5 * kSecond);  // replication / anti-entropy quiescence
  auto get = GetSync(&store, reader, "k");
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(*get, "v");
}

TEST_P(ReplicatedStoreLevelTest, SequentialOverwritesReadNewest) {
  StoreOptions options;
  options.level = GetParam();
  ReplicatedStore store(options);
  const sim::NodeId client = store.AddClient(0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(PutSync(&store, client, "k", "v" + std::to_string(i)).ok());
  }
  store.RunFor(5 * kSecond);
  auto get = GetSync(&store, client, "k");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(*get, "v4");
}

TEST_P(ReplicatedStoreLevelTest, LatencyHistogramsPopulate) {
  StoreOptions options;
  options.level = GetParam();
  ReplicatedStore store(options);
  const sim::NodeId client = store.AddClient(1);
  ASSERT_TRUE(PutSync(&store, client, "k", "v").ok());
  ASSERT_TRUE(GetSync(&store, client, "k").ok());
  EXPECT_EQ(store.put_latency().count(), 1u);
  EXPECT_EQ(store.get_latency().count(), 1u);
  EXPECT_GT(store.put_latency().mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Levels, ReplicatedStoreLevelTest,
    ::testing::Values(ConsistencyLevel::kEventual, ConsistencyLevel::kQuorum,
                      ConsistencyLevel::kCausal, ConsistencyLevel::kTimeline,
                      ConsistencyLevel::kStrong),
    [](const ::testing::TestParamInfo<ConsistencyLevel>& info) {
      return ConsistencyLevelToString(info.param);
    });

TEST(ReplicatedStoreTest, LatencyOrderingMatchesTheTaxonomy) {
  // The headline qualitative claim (Fig. 1): from a client's local DC,
  // eventual/causal writes are fast (local), quorum writes pay one WAN
  // round trip, strong writes pay a consensus round.
  auto median_put_latency = [](ConsistencyLevel level) {
    StoreOptions options;
    options.level = level;
    options.seed = 77;
    ReplicatedStore store(options);
    const sim::NodeId client = store.AddClient(1);  // not the Paxos leader DC
    for (int i = 0; i < 10; ++i) {
      EVC_CHECK(PutSync(&store, client, "key" + std::to_string(i), "v").ok());
    }
    return store.put_latency().Percentile(0.5);
  };
  const double eventual = median_put_latency(ConsistencyLevel::kEventual);
  const double causal = median_put_latency(ConsistencyLevel::kCausal);
  const double strong = median_put_latency(ConsistencyLevel::kStrong);
  EXPECT_LT(causal, 10.0 * kMillisecond);
  EXPECT_LT(eventual, strong);
  EXPECT_LT(causal, strong);
  EXPECT_GT(strong, 50.0 * kMillisecond);  // WAN consensus round
}

TEST(ReplicatedStoreTest, ConsistencyLevelNames) {
  EXPECT_STREQ(ConsistencyLevelToString(ConsistencyLevel::kEventual),
               "eventual");
  EXPECT_STREQ(ConsistencyLevelToString(ConsistencyLevel::kStrong), "strong");
}

TEST(ReplicatedStoreTest, ClientsPinnedToDatacenters) {
  StoreOptions options;
  options.level = ConsistencyLevel::kEventual;
  options.datacenters = 3;
  ReplicatedStore store(options);
  // Clients in every DC can operate.
  for (int dc = 0; dc < 3; ++dc) {
    const sim::NodeId client = store.AddClient(dc);
    ASSERT_TRUE(
        PutSync(&store, client, "k" + std::to_string(dc), "v").ok());
  }
}

}  // namespace
}  // namespace evc::core
