// Whole-protocol determinism: identical seeds must produce bit-identical
// runs — the property that makes every experiment in this repository
// reproducible. These tests run full protocol stacks twice and compare
// observable traces; they also pin down a few decoder-robustness
// properties (random bytes must never crash a decoder).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "clock/version_vector.h"
#include "common/encoding.h"
#include "common/rng.h"
#include "consensus/paxos.h"
#include "replication/quorum_store.h"
#include "storage/versioned_store.h"

namespace evc {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// Runs a small Dynamo workload and returns an observable trace: per-op
// completion times and statuses plus final replica digests.
std::string DynamoTrace(uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 25 * kMillisecond));
  net.set_loss_rate(0.05);
  net.set_duplicate_rate(0.05);
  sim::Rpc rpc(&net);
  repl::QuorumConfig config;
  repl::DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(5);
  const sim::NodeId client = net.AddNode();

  std::string trace;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "key" + std::to_string(i % 7);
    cluster.Put(client, servers[i % 5], key, "v" + std::to_string(i), {},
                [&trace, &sim](Result<Version> r) {
                  trace += "P" + std::to_string(sim.Now()) +
                           (r.ok() ? "+" : "-");
                });
    cluster.Get(client, servers[(i + 1) % 5], key,
                [&trace, &sim](Result<repl::ReadResult> r) {
                  trace += "G" + std::to_string(sim.Now()) +
                           (r.ok() ? std::to_string(r->versions.size())
                                   : "-");
                });
    sim.RunFor(100 * kMillisecond);
  }
  sim.RunFor(5 * kSecond);
  for (const auto s : servers) {
    trace += ":" + std::to_string(
                       cluster.storage(s)->merkle().RootDigest() & 0xffff);
  }
  return trace;
}

TEST(DeterminismTest, DynamoRunsAreBitIdentical) {
  const std::string a = DynamoTrace(42);
  const std::string b = DynamoTrace(42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, DynamoTrace(43));  // and seeds actually matter
}

std::string PaxosTrace(uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 12 * kMillisecond));
  net.set_loss_rate(0.05);
  sim::Rpc rpc(&net);
  consensus::PaxosCluster cluster(&rpc, consensus::PaxosOptions{});
  auto servers = cluster.AddServers(3);
  const sim::NodeId client_node = net.AddNode();
  consensus::PaxosKvClient client(&cluster, &sim, client_node, servers);
  cluster.Start();
  sim.RunFor(kSecond);
  std::string trace;
  for (int i = 0; i < 12; ++i) {
    client.Put("k", "v" + std::to_string(i),
               [&trace, &sim](Result<uint64_t> r) {
                 trace += std::to_string(sim.Now()) +
                          (r.ok() ? "@" + std::to_string(*r) : "!");
               });
    sim.RunFor(500 * kMillisecond);
  }
  sim.RunFor(5 * kSecond);
  for (const auto s : servers) {
    trace += ":" + std::to_string(cluster.AppliedIndex(s));
  }
  return trace;
}

TEST(DeterminismTest, PaxosRunsAreBitIdentical) {
  EXPECT_EQ(PaxosTrace(7), PaxosTrace(7));
}

// --- decoder robustness: random bytes never crash, only fail cleanly -----

TEST(DecoderFuzzTest, RandomBytesNeverCrashVersionVectorDecode) {
  Rng rng(99);
  for (int trial = 0; trial < 5000; ++trial) {
    std::string bytes;
    const size_t len = rng.NextBounded(64);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    auto result = VersionVector::Decode(bytes);
    if (result.ok()) {
      // Round-trip check when it happened to parse.
      std::string re;
      result->EncodeTo(&re);
      auto again = VersionVector::Decode(re);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, *result);
    }
  }
}

TEST(DecoderFuzzTest, RandomBytesNeverCrashVersionDecode) {
  Rng rng(101);
  for (int trial = 0; trial < 5000; ++trial) {
    std::string bytes;
    const size_t len = rng.NextBounded(96);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    Decoder dec(bytes);
    auto result = Version::DecodeFrom(&dec);
    if (result.ok()) {
      std::string re;
      result->EncodeTo(&re);
      Decoder dec2(re);
      auto again = Version::DecodeFrom(&dec2);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->Digest(), result->Digest());
    }
  }
}

TEST(DecoderFuzzTest, MutatedValidEncodingsFailCleanly) {
  // Take a valid encoding and flip one byte at a time: decode must either
  // succeed (the mutation hit a benign spot) or fail with Corruption —
  // never crash or loop.
  Version v;
  v.value = "payload";
  v.vv.Set(3, 1000);
  v.lww_ts = LamportTimestamp{77, 5};
  std::string bytes;
  v.EncodeTo(&bytes);
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int delta : {1, 0x55, 0xff}) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ delta);
      Decoder dec(mutated);
      auto result = Version::DecodeFrom(&dec);
      if (!result.ok()) {
        EXPECT_TRUE(result.status().IsCorruption());
      }
    }
  }
}

}  // namespace
}  // namespace evc
