#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "storage/merkle.h"
#include "storage/wal.h"

namespace evc {
namespace {

TEST(WalTest, AppendAndReadAll) {
  WriteAheadLog wal;
  wal.Append("one");
  wal.Append("two");
  wal.Append(std::string("\x00\x01", 2));
  std::vector<std::string> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "one");
  EXPECT_EQ(records[1], "two");
  EXPECT_EQ(records[2], std::string("\x00\x01", 2));
}

TEST(WalTest, EmptyLogReadsNothing) {
  WriteAheadLog wal;
  std::vector<std::string> records;
  uint64_t valid = 99;
  ASSERT_TRUE(wal.ReadAll(&records, &valid).ok());
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(valid, 0u);
}

TEST(WalTest, TornTailStopsRecoveryCleanly) {
  WriteAheadLog wal;
  wal.Append("complete-1");
  wal.Append("complete-2");
  const uint64_t good_size = wal.size_bytes();
  wal.Append("will-be-torn");
  // Simulate a crash mid-write: truncate inside the last record.
  wal.TruncateTo(good_size + 3);
  std::vector<std::string> records;
  uint64_t valid = 0;
  ASSERT_TRUE(wal.ReadAll(&records, &valid).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(valid, good_size);
}

TEST(WalTest, CorruptRecordStopsRecovery) {
  WriteAheadLog wal;
  wal.Append("first");
  const uint64_t second_offset = wal.Append("second");
  wal.Append("third");
  // Flip a payload byte of "second".
  wal.CorruptByteAt(second_offset + 6);
  std::vector<std::string> records;
  uint64_t valid = 0;
  ASSERT_TRUE(wal.ReadAll(&records, &valid).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(valid, second_offset);
}

// Satellite pin: corrupt-in-the-middle is treated as torn-at-tail. The
// valid prefix is the recovery state; truncating to it and re-appending
// yields a clean log (the corrupted suffix, including records after the
// bad one, is intentionally discarded).
TEST(WalTest, CorruptMiddleTruncateThenReappendIsClean) {
  WriteAheadLog wal;
  wal.Append("alpha");
  wal.Append("bravo");
  const uint64_t third_offset = wal.Append("charlie");
  wal.Append("delta");
  wal.Append("echo");
  wal.CorruptByteAt(third_offset + 7);  // flip a payload byte of "charlie"

  std::vector<std::string> records;
  uint64_t valid = 0;
  ASSERT_TRUE(wal.ReadAll(&records, &valid).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(valid, third_offset);

  // Recovery protocol: truncate to the valid prefix, then keep appending.
  wal.TruncateTo(valid);
  EXPECT_EQ(wal.size_bytes(), third_offset);
  wal.Append("foxtrot");
  records.clear();
  ASSERT_TRUE(wal.ReadAll(&records, &valid).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "bravo");
  EXPECT_EQ(records[2], "foxtrot");
  EXPECT_EQ(valid, wal.size_bytes());  // whole log valid again
}

TEST(WalTest, SaveAndLoadFile) {
  WriteAheadLog wal;
  wal.Append("persisted");
  const std::string path = ::testing::TempDir() + "/evc_wal_test.log";
  ASSERT_TRUE(wal.SaveToFile(path).ok());
  WriteAheadLog loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  std::vector<std::string> records;
  ASSERT_TRUE(loaded.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "persisted");
  std::remove(path.c_str());
}

TEST(WalTest, LoadMissingFileIsNotFound) {
  WriteAheadLog wal;
  EXPECT_TRUE(wal.LoadFromFile("/nonexistent/evc.log").IsNotFound());
}

TEST(MerkleTest, EmptyTreesHaveEqualRoots) {
  MerkleTree a(8), b(8);
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
  EXPECT_TRUE(MerkleTree::DiffLeaves(a, b).empty());
}

TEST(MerkleTest, SingleKeyChangesRoot) {
  MerkleTree a(8), b(8);
  a.UpdateKey("k", 0, 123);
  EXPECT_NE(a.RootDigest(), b.RootDigest());
  auto diff = MerkleTree::DiffLeaves(a, b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], a.BucketFor("k"));
}

TEST(MerkleTest, SameContentsSameRootRegardlessOfOrder) {
  MerkleTree a(8), b(8);
  a.UpdateKey("x", 0, 1);
  a.UpdateKey("y", 0, 2);
  b.UpdateKey("y", 0, 2);
  b.UpdateKey("x", 0, 1);
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
}

TEST(MerkleTest, UpdateThenRevertRestoresRoot) {
  MerkleTree a(8);
  const uint64_t empty_root = a.RootDigest();
  a.UpdateKey("k", 0, 5);
  a.UpdateKey("k", 5, 0);  // remove
  EXPECT_EQ(a.RootDigest(), empty_root);
}

TEST(MerkleTest, ModifyExistingKey) {
  MerkleTree a(8), b(8);
  a.UpdateKey("k", 0, 5);
  b.UpdateKey("k", 0, 5);
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
  a.UpdateKey("k", 5, 9);
  EXPECT_NE(a.RootDigest(), b.RootDigest());
  b.UpdateKey("k", 5, 9);
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
}

TEST(MerkleTest, DiffFindsExactlyDivergentBuckets) {
  MerkleTree a(10), b(10);
  // 100 shared keys.
  for (int i = 0; i < 100; ++i) {
    const std::string key = "shared" + std::to_string(i);
    a.UpdateKey(key, 0, static_cast<uint64_t>(i + 1));
    b.UpdateKey(key, 0, static_cast<uint64_t>(i + 1));
  }
  // 3 keys only in a.
  std::vector<std::string> extra = {"only-a-1", "only-a-2", "only-a-3"};
  for (const auto& key : extra) a.UpdateKey(key, 0, 42);
  auto diff = MerkleTree::DiffLeaves(a, b);
  // Every extra key's bucket is reported.
  for (const auto& key : extra) {
    EXPECT_NE(std::find(diff.begin(), diff.end(), a.BucketFor(key)),
              diff.end());
  }
  EXPECT_LE(diff.size(), extra.size());  // buckets may coincide
}

TEST(MerkleTest, DescentCostLogarithmicInDivergence) {
  MerkleTree a(12), b(12);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(i);
    a.UpdateKey(key, 0, static_cast<uint64_t>(i + 1));
    b.UpdateKey(key, 0, static_cast<uint64_t>(i + 1));
  }
  a.UpdateKey("divergent", 0, 7);
  uint64_t compared = 0;
  auto diff = MerkleTree::DiffLeaves(a, b, &compared);
  EXPECT_EQ(diff.size(), 1u);
  // One divergent key: descent touches ~2 nodes per level, not 2^12 leaves.
  EXPECT_LE(compared, static_cast<uint64_t>(2 * 12 + 1));
}

class MerkleDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(MerkleDepthTest, RandomizedDiffMatchesGroundTruth) {
  const int depth = GetParam();
  Rng rng(static_cast<uint64_t>(depth) * 1000 + 1);
  MerkleTree a(depth), b(depth);
  std::vector<std::string> divergent_keys;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    const uint64_t digest = rng.NextU64() | 1;  // nonzero
    a.UpdateKey(key, 0, digest);
    if (rng.NextBool(0.9)) {
      b.UpdateKey(key, 0, digest);
    } else {
      divergent_keys.push_back(key);
    }
  }
  auto diff = MerkleTree::DiffLeaves(a, b);
  for (const auto& key : divergent_keys) {
    EXPECT_NE(std::find(diff.begin(), diff.end(), a.BucketFor(key)),
              diff.end())
        << "missing bucket for divergent key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, MerkleDepthTest,
                         ::testing::Values(4, 8, 10, 14));

}  // namespace
}  // namespace evc
