#include "sim/nemesis.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/latency.h"

namespace evc::sim {
namespace {

class NemesisTest : public ::testing::Test {
 protected:
  NemesisTest()
      : sim_(7), net_(&sim_, std::make_unique<ConstantLatency>(kMillisecond)) {
    for (int i = 0; i < 5; ++i) servers_.push_back(net_.AddNode());
    client_ = net_.AddNode();
  }

  bool FullyConnected() {
    for (size_t i = 0; i < servers_.size(); ++i) {
      for (size_t j = 0; j < servers_.size(); ++j) {
        if (!net_.CanCommunicate(servers_[i], servers_[j])) return false;
      }
      if (!net_.CanCommunicate(client_, servers_[i])) return false;
    }
    return true;
  }

  Simulator sim_;
  Network net_;
  std::vector<NodeId> servers_;
  NodeId client_ = 0;
};

TEST_F(NemesisTest, FaultPlanBuilderOrdersActions) {
  FaultPlan plan;
  plan.HealAt(5 * kSecond)
      .PartitionAt(1 * kSecond, {{0, 1}, {2}})
      .CrashAt(2 * kSecond, 3);
  EXPECT_EQ(plan.size(), 3u);
  // ToString is time-sorted even though actions were pushed out of order.
  const std::string s = plan.ToString();
  const size_t partition_pos = s.find("partition");
  const size_t crash_pos = s.find("crash");
  const size_t heal_pos = s.find("heal");
  ASSERT_NE(partition_pos, std::string::npos);
  ASSERT_NE(crash_pos, std::string::npos);
  ASSERT_NE(heal_pos, std::string::npos);
  EXPECT_LT(partition_pos, crash_pos);
  EXPECT_LT(crash_pos, heal_pos);
}

TEST_F(NemesisTest, ExecutesExplicitPartitionAndHeal) {
  Nemesis nemesis(&net_, servers_, 1);
  FaultPlan plan;
  plan.PartitionAt(1 * kSecond, {{servers_[3], servers_[4]}})
      .HealAt(3 * kSecond);
  nemesis.Execute(plan);

  sim_.RunFor(2 * kSecond);  // partition active
  EXPECT_FALSE(net_.CanCommunicate(servers_[0], servers_[3]));
  EXPECT_TRUE(net_.CanCommunicate(servers_[3], servers_[4]));
  // Unlisted nodes (the client) stay with the implicit group 0 majority.
  EXPECT_TRUE(net_.CanCommunicate(client_, servers_[0]));
  EXPECT_FALSE(net_.CanCommunicate(client_, servers_[3]));

  sim_.RunFor(2 * kSecond);  // healed
  EXPECT_TRUE(FullyConnected());
  EXPECT_EQ(nemesis.stats().partitions, 1u);
  EXPECT_EQ(nemesis.stats().heals, 1u);
}

TEST_F(NemesisTest, ExecutesCrashAndRestart) {
  Nemesis nemesis(&net_, servers_, 1);
  FaultPlan plan;
  plan.CrashAt(1 * kSecond, servers_[2]).RestartAt(2 * kSecond, servers_[2]);
  nemesis.Execute(plan);

  sim_.RunFor(1500 * kMillisecond);
  EXPECT_FALSE(net_.IsNodeUp(servers_[2]));
  sim_.RunFor(1 * kSecond);
  EXPECT_TRUE(net_.IsNodeUp(servers_[2]));
  EXPECT_EQ(nemesis.stats().crashes, 1u);
  EXPECT_EQ(nemesis.stats().restarts, 1u);
}

TEST_F(NemesisTest, GeneratedPlanIsDeterministicInSeed) {
  Nemesis a(&net_, servers_, 42);
  Nemesis b(&net_, servers_, 42);
  Nemesis c(&net_, servers_, 43);
  NemesisScheduleOptions options;
  const FaultPlan pa = a.GeneratePlan(options);
  const FaultPlan pb = b.GeneratePlan(options);
  const FaultPlan pc = c.GeneratePlan(options);
  EXPECT_EQ(pa.ToString(), pb.ToString());
  EXPECT_NE(pa.ToString(), pc.ToString());
  EXPECT_FALSE(pa.empty());
}

TEST_F(NemesisTest, GeneratedPlanRespectsFamilyToggles) {
  Nemesis nemesis(&net_, servers_, 9);
  NemesisScheduleOptions options;
  options.allow_partitions = false;
  options.allow_crashes = false;
  options.allow_duplication = false;
  options.heal_at_end = true;
  const FaultPlan plan = nemesis.GeneratePlan(options);
  for (const FaultAction& action : plan.actions()) {
    EXPECT_TRUE(action.kind == FaultAction::Kind::kLossRate ||
                action.kind == FaultAction::Kind::kHealAll)
        << action.ToString();
  }
}

TEST_F(NemesisTest, UnleashEndsHealedWithAllTargetsUp) {
  Nemesis nemesis(&net_, servers_, 1234);
  NemesisScheduleOptions options;
  options.duration = 10 * kSecond;
  nemesis.Unleash(options);
  sim_.RunFor(options.duration + kSecond);
  EXPECT_TRUE(nemesis.AllTargetsUp());
  EXPECT_TRUE(FullyConnected());
  EXPECT_GT(nemesis.stats().total(), 0u);
}

TEST_F(NemesisTest, HealAllUndoesEverythingImmediately) {
  Nemesis nemesis(&net_, servers_, 77);
  NemesisScheduleOptions options;
  options.duration = 30 * kSecond;
  options.mean_fault_interval = 300 * kMillisecond;
  options.heal_at_end = false;
  nemesis.Unleash(options);
  sim_.RunFor(10 * kSecond);  // mid-schedule, faults likely active
  nemesis.HealAll();
  EXPECT_TRUE(nemesis.AllTargetsUp());
  EXPECT_TRUE(FullyConnected());
}

TEST_F(NemesisTest, CrashCapKeepsMajorityAlive) {
  // With max_concurrent_crashes=2 of 5 targets, at least 3 must stay up at
  // every instant of any generated schedule.
  Nemesis nemesis(&net_, servers_, 555);
  NemesisScheduleOptions options;
  options.duration = 30 * kSecond;
  options.mean_fault_interval = 400 * kMillisecond;
  options.allow_partitions = false;
  options.allow_loss = false;
  options.allow_duplication = false;
  options.max_concurrent_crashes = 2;
  nemesis.Unleash(options);
  for (int step = 0; step < 300; ++step) {
    sim_.RunFor(100 * kMillisecond);
    int up = 0;
    for (NodeId server : servers_) up += net_.IsNodeUp(server) ? 1 : 0;
    ASSERT_GE(up, 3) << "at t=" << sim_.Now();
  }
}

TEST_F(NemesisTest, GrayFaultsApplyAndRecover) {
  Nemesis nemesis(&net_, servers_, 21);
  FaultPlan plan;
  plan.SlowLinkAt(kSecond, servers_[0], servers_[1], 4.0)
      .FlakyLinkAt(kSecond, servers_[1], servers_[2], 0.5)
      .SlowNodeAt(kSecond, servers_[3], 20 * kMillisecond)
      .GrayRecoverAt(5 * kSecond)
      .GrayRecoverAt(5 * kSecond)
      .GrayRecoverAt(5 * kSecond);
  nemesis.Execute(plan);

  sim_.RunFor(2 * kSecond);
  EXPECT_EQ(nemesis.active_gray_faults(), 3u);
  EXPECT_DOUBLE_EQ(net_.LinkLatencyFactor(servers_[0], servers_[1]), 4.0);
  EXPECT_DOUBLE_EQ(net_.LinkDropRate(servers_[1], servers_[2]), 0.5);
  EXPECT_EQ(net_.NodeProcessingDelay(servers_[3]), 20 * kMillisecond);
  EXPECT_TRUE(net_.HasGrayFaults());
  // Gray failures are invisible to the oracle: everyone "can communicate".
  EXPECT_TRUE(FullyConnected());

  sim_.RunFor(4 * kSecond);  // past the recoveries
  EXPECT_EQ(nemesis.active_gray_faults(), 0u);
  EXPECT_FALSE(net_.HasGrayFaults());
  EXPECT_EQ(nemesis.stats().gray_faults, 3u);
  EXPECT_EQ(nemesis.stats().gray_recoveries, 3u);
}

TEST_F(NemesisTest, HealAllClearsActiveGrayFaults) {
  Nemesis nemesis(&net_, servers_, 22);
  FaultPlan plan;
  plan.SlowNodeAt(kSecond, servers_[0], 10 * kMillisecond)
      .FlakyLinkAt(kSecond, servers_[1], servers_[2], 0.9);
  nemesis.Execute(plan);
  sim_.RunFor(2 * kSecond);
  ASSERT_TRUE(net_.HasGrayFaults());
  nemesis.HealAll();
  EXPECT_FALSE(net_.HasGrayFaults());
  EXPECT_EQ(nemesis.active_gray_faults(), 0u);
}

TEST_F(NemesisTest, GeneratedGrayScheduleDrawsAndRecoversGrayFaults) {
  Nemesis nemesis(&net_, servers_, 23);
  NemesisScheduleOptions options;
  options.duration = 30 * kSecond;
  options.mean_fault_interval = 500 * kMillisecond;
  options.allow_partitions = false;
  options.allow_crashes = false;
  options.allow_loss = false;
  options.allow_duplication = false;
  options.allow_slow_links = true;
  options.allow_flaky_links = true;
  options.allow_slow_nodes = true;
  nemesis.Unleash(options);
  sim_.RunFor(40 * kSecond);  // includes the final heal
  EXPECT_GT(nemesis.stats().gray_faults, 0u);
  EXPECT_EQ(nemesis.stats().gray_recoveries, nemesis.stats().gray_faults);
  EXPECT_FALSE(net_.HasGrayFaults());
}

TEST_F(NemesisTest, GrayTogglesOffPreserveHistoricalSchedules) {
  // The gray families are appended to the draw table only when enabled, so
  // a schedule generated with the defaults is bit-identical to one from a
  // pre-gray Nemesis with the same seed.
  Nemesis with_defaults(&net_, servers_, 77);
  Nemesis again(&net_, servers_, 77);
  NemesisScheduleOptions options;
  const std::string a = with_defaults.GeneratePlan(options).ToString();
  const std::string b = again.GeneratePlan(options).ToString();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("slow-link"), std::string::npos);
  EXPECT_EQ(a.find("flaky-link"), std::string::npos);
  EXPECT_EQ(a.find("slow-node"), std::string::npos);
}

TEST_F(NemesisTest, LogRecordsResolvedActions) {
  Nemesis nemesis(&net_, servers_, 31);
  FaultPlan plan;
  plan.RandomPartitionAt(kSecond, PartitionStyle::kIsolateOne)
      .HealAt(2 * kSecond);
  nemesis.Execute(plan);
  sim_.RunFor(3 * kSecond);
  ASSERT_GE(nemesis.log().size(), 2u);
  // The randomized action appears with its resolved victim, not a template.
  EXPECT_NE(nemesis.log()[0].find("partition"), std::string::npos);
}

}  // namespace
}  // namespace evc::sim
