// Differential harness for the two event-scheduler implementations.
//
// The calendar queue (sim/calendar_queue.h) replaced the seed's binary-heap
// scheduler on the simulator hot path; the seed scheduler survives behind
// SchedulerKind::kLegacyHeap precisely so this test can exist. For a sweep
// of fuzz seeds spanning every store and its nemesis fault schedule, the
// same (store, seed) run executes under both schedulers and must produce:
//
//   * the identical FuzzReport summary line (op counts, fault counts,
//     checker verdicts), and
//   * byte-identical metric and trace exports (obs/export.h) — the
//     strongest observable-equivalence statement the repo can make short of
//     diffing event streams, since every counter increment, histogram
//     sample, and span open/close is sequenced by the scheduler.
//
// Any ordering divergence between the schedulers — a same-time FIFO break, a
// cancelled event sneaking through, a cursor skipping a bucket — lands in
// these exports as a different latency sample or span tree and fails the
// byte comparison.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "verify/fuzz.h"

namespace evc::verify {
namespace {

struct RunExports {
  std::string summary;
  std::string metrics_json;
  std::string trace_csv;
};

RunExports RunUnder(FuzzStore store, uint64_t seed, sim::SchedulerKind kind) {
  FuzzOptions o = DefaultFuzzOptions(store, seed);
  o.scheduler = kind;
  RunExports out;
  o.capture_metrics_json = &out.metrics_json;
  o.capture_trace_csv = &out.trace_csv;
  out.summary = RunFuzzSeed(o).Summary();
  return out;
}

void ExpectIdenticalRuns(FuzzStore store, uint64_t seed) {
  const RunExports cal = RunUnder(store, seed, sim::SchedulerKind::kCalendar);
  const RunExports heap =
      RunUnder(store, seed, sim::SchedulerKind::kLegacyHeap);
  ASSERT_FALSE(cal.metrics_json.empty());
  ASSERT_FALSE(heap.metrics_json.empty());
  EXPECT_EQ(cal.summary, heap.summary)
      << ToString(store) << " seed " << seed;
  EXPECT_EQ(cal.metrics_json, heap.metrics_json)
      << ToString(store) << " seed " << seed << ": metric exports diverged";
  EXPECT_EQ(cal.trace_csv, heap.trace_csv)
      << ToString(store) << " seed " << seed << ": trace exports diverged";
}

// 25 seeds, spread across all eight stores so every protocol layer's event
// pattern (RPC timeout churn, gossip fan-out, primary failover, CRDT
// broadcast, lease revoke fan-out) and every nemesis profile runs under
// both schedulers. Paxos gets one seed (its runs are the slowest): 25
// total.
TEST(SimcoreDiffTest, TwentyFiveSeedsByteIdenticalAcrossSchedulers) {
  struct Case {
    FuzzStore store;
    uint64_t seeds;
  };
  const Case plan[] = {
      {FuzzStore::kPaxos, 1},        {FuzzStore::kQuorumStrict, 4},
      {FuzzStore::kQuorumWeak, 4},   {FuzzStore::kTimeline, 3},
      {FuzzStore::kCausal, 3},       {FuzzStore::kGCounter, 3},
      {FuzzStore::kOrSet, 3},        {FuzzStore::kEdgeCache, 4},
  };
  int total = 0;
  for (const Case& c : plan) {
    for (uint64_t seed = 1; seed <= c.seeds; ++seed) {
      ExpectIdenticalRuns(c.store, seed);
      ++total;
    }
  }
  EXPECT_EQ(total, 25);
}

// Amnesia-crash schedules exercise the CrashParticipant notification path
// (WAL replay, volatile-state drops) whose callbacks are themselves
// scheduler-sequenced.
TEST(SimcoreDiffTest, AmnesiaScheduleIsSchedulerInvariant) {
  FuzzOptions base = DefaultFuzzOptions(FuzzStore::kQuorumStrict, 11);
  base.amnesia = true;
  auto run = [&](sim::SchedulerKind kind) {
    FuzzOptions o = base;
    o.scheduler = kind;
    RunExports out;
    o.capture_metrics_json = &out.metrics_json;
    o.capture_trace_csv = &out.trace_csv;
    out.summary = RunFuzzSeed(o).Summary();
    return out;
  };
  const RunExports cal = run(sim::SchedulerKind::kCalendar);
  const RunExports heap = run(sim::SchedulerKind::kLegacyHeap);
  EXPECT_EQ(cal.summary, heap.summary);
  EXPECT_EQ(cal.metrics_json, heap.metrics_json);
  EXPECT_EQ(cal.trace_csv, heap.trace_csv);
}

// Sanity for the harness itself: the capture hooks really capture, and two
// same-scheduler runs of one seed are byte-identical (the determinism
// baseline that makes the cross-scheduler comparison meaningful).
TEST(SimcoreDiffTest, SameSchedulerRerunsAreByteIdentical) {
  const RunExports a =
      RunUnder(FuzzStore::kCausal, 3, sim::SchedulerKind::kCalendar);
  const RunExports b =
      RunUnder(FuzzStore::kCausal, 3, sim::SchedulerKind::kCalendar);
  ASSERT_FALSE(a.metrics_json.empty());
  ASSERT_FALSE(a.trace_csv.empty());
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_csv, b.trace_csv);
}

}  // namespace
}  // namespace evc::verify
