#include "txn/escrow.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace evc::txn {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class EscrowTest : public ::testing::Test {
 protected:
  void Build(int replicas, int64_t total, uint64_t seed = 29) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    net_ = std::make_unique<sim::Network>(
        sim_.get(), std::make_unique<sim::UniformLatency>(
                        5 * kMillisecond, 40 * kMillisecond));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    escrow_ = std::make_unique<EscrowCluster>(rpc_.get(), replicas, total);
    client_ = net_->AddNode();
  }

  Result<int64_t> AcquireSync(int replica, int64_t amount) {
    std::optional<Result<int64_t>> out;
    escrow_->Acquire(client_, replica, amount,
                     [&](Result<int64_t> r) { out = std::move(r); });
    sim_->RunFor(10 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<EscrowCluster> escrow_;
  sim::NodeId client_ = 0;
};

TEST_F(EscrowTest, SharesSplitEvenly) {
  Build(4, 100);
  EXPECT_EQ(escrow_->ShareOf(0), 25);
  EXPECT_EQ(escrow_->ShareOf(3), 25);
  EXPECT_EQ(escrow_->TotalRemaining(), 100);
}

TEST_F(EscrowTest, UnevenSplitDistributesRemainder) {
  Build(3, 100);
  EXPECT_EQ(escrow_->TotalRemaining(), 100);
  EXPECT_EQ(escrow_->ShareOf(0) + escrow_->ShareOf(1) + escrow_->ShareOf(2),
            100);
}

TEST_F(EscrowTest, LocalAcquireFastPath) {
  Build(2, 100);
  auto r = AcquireSync(0, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 40);  // 50 - 10
  EXPECT_EQ(escrow_->TotalRemaining(), 90);
  EXPECT_EQ(escrow_->total_acquired(), 10);
  EXPECT_EQ(escrow_->stats().transfers, 0u);
}

TEST_F(EscrowTest, DryReplicaStealsFromPeer) {
  Build(2, 100);
  ASSERT_TRUE(AcquireSync(0, 50).ok());  // replica 0 now empty
  auto r = AcquireSync(0, 10);           // must rebalance from replica 1
  ASSERT_TRUE(r.ok());
  EXPECT_GE(escrow_->stats().transfers, 1u);
  EXPECT_EQ(escrow_->TotalRemaining(), 40);
}

TEST_F(EscrowTest, ExhaustedEscrowAborts) {
  Build(2, 20);
  ASSERT_TRUE(AcquireSync(0, 10).ok());
  ASSERT_TRUE(AcquireSync(1, 10).ok());
  auto r = AcquireSync(0, 1);
  EXPECT_TRUE(r.status().IsAborted());
  EXPECT_EQ(escrow_->TotalRemaining(), 0);
  EXPECT_EQ(escrow_->total_acquired(), 20);
}

TEST_F(EscrowTest, NeverOversellsUnderConcurrency) {
  Build(4, 100);
  int ok = 0, aborted = 0;
  // 150 concurrent acquires of 1 against stock of 100.
  for (int i = 0; i < 150; ++i) {
    escrow_->Acquire(client_, i % 4, 1, [&](Result<int64_t> r) {
      if (r.ok()) {
        ++ok;
      } else {
        ++aborted;
      }
    });
  }
  sim_->RunFor(60 * kSecond);
  EXPECT_EQ(ok + aborted, 150);
  EXPECT_EQ(escrow_->total_acquired(), ok);
  EXPECT_LE(escrow_->total_acquired(), 100);
  EXPECT_EQ(escrow_->TotalRemaining(), 100 - escrow_->total_acquired());
  // Escrow should sell essentially everything (aborts only from races on
  // the final units).
  EXPECT_GE(ok, 95);
}

TEST_F(EscrowTest, InvariantHoldsAtEveryStep) {
  Build(3, 60);
  Rng rng(5);
  int pending = 0;
  for (int i = 0; i < 100; ++i) {
    ++pending;
    escrow_->Acquire(client_, static_cast<int>(rng.NextBounded(3)),
                     static_cast<int64_t>(rng.NextBounded(5)) + 1,
                     [&](Result<int64_t>) { --pending; });
    if (i % 10 == 0) {
      sim_->RunFor(kSecond);
      // Conservation: remaining escrow + acquired units == initial stock.
      EXPECT_EQ(escrow_->TotalRemaining() + escrow_->total_acquired(), 60);
    }
  }
  sim_->RunFor(60 * kSecond);
  EXPECT_EQ(pending, 0);
  EXPECT_EQ(escrow_->TotalRemaining() + escrow_->total_acquired(), 60);
  EXPECT_LE(escrow_->total_acquired(), 60);
}

TEST(NaiveCounterTest, SingleReplicaBehavesCorrectly) {
  sim::Simulator sim(31);
  sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(
                             10 * kMillisecond));
  sim::Rpc rpc(&net);
  NaiveCounterCluster naive(&rpc, 1, 10);
  const sim::NodeId client = net.AddNode();
  int ok = 0, aborted = 0;
  for (int i = 0; i < 15; ++i) {
    naive.Acquire(client, 0, 1, [&](Result<int64_t> r) {
      r.ok() ? ++ok : ++aborted;
    });
  }
  sim.RunFor(10 * kSecond);
  EXPECT_EQ(ok, 10);
  EXPECT_EQ(aborted, 5);
  EXPECT_EQ(naive.Oversold(), 0);
}

TEST(NaiveCounterTest, ConcurrentAcquiresOversell) {
  sim::Simulator sim(33);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             20 * kMillisecond, 80 * kMillisecond));
  sim::Rpc rpc(&net);
  NaiveCounterCluster naive(&rpc, 4, 100);
  const sim::NodeId client = net.AddNode();
  // 4 replicas each sell from a cached count of 100 before any delta
  // propagates: up to 400 can be "sold".
  int ok = 0;
  for (int i = 0; i < 300; ++i) {
    naive.Acquire(client, i % 4, 1,
                  [&](Result<int64_t> r) { ok += r.ok() ? 1 : 0; });
  }
  sim.RunFor(30 * kSecond);
  EXPECT_GT(naive.total_acquired(), 100);  // oversold
  EXPECT_GT(naive.Oversold(), 0);
  EXPECT_EQ(naive.total_acquired(), ok);
}

TEST(NaiveCounterTest, SequentialAcquiresWithDrainDoNotOversell) {
  sim::Simulator sim(35);
  sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(
                             5 * kMillisecond));
  sim::Rpc rpc(&net);
  NaiveCounterCluster naive(&rpc, 3, 30);
  const sim::NodeId client = net.AddNode();
  int ok = 0;
  for (int i = 0; i < 60; ++i) {
    std::optional<Result<int64_t>> out;
    naive.Acquire(client, i % 3, 1,
                  [&](Result<int64_t> r) { out = std::move(r); });
    sim.RunFor(kSecond);  // deltas fully propagate between ops
    ASSERT_TRUE(out.has_value());
    ok += out->ok() ? 1 : 0;
  }
  EXPECT_EQ(ok, 30);
  EXPECT_EQ(naive.Oversold(), 0);
}

}  // namespace
}  // namespace evc::txn
