#include "common/slab.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace evc {
namespace {

TEST(SlabTest, BlocksAreAlignedAndWritable) {
  Slab slab;
  for (size_t size : {1u, 8u, 16u, 17u, 64u, 100u, 1024u}) {
    void* p = slab.Alloc(size);
    ASSERT_NE(p, nullptr);
    // evc-lint: allow(pointer-taint) reason=alignment assertion only; the address never leaves the EXPECT
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Slab::kAlign, 0u) << size;
    std::memset(p, 0xab, size);
    slab.Free(p, size);
  }
  EXPECT_EQ(slab.live(), 0u);
}

TEST(SlabTest, FreeListReuseIsLifo) {
  Slab slab;
  void* a = slab.Alloc(32);
  void* b = slab.Alloc(32);
  slab.Free(a, 32);
  slab.Free(b, 32);
  // Most recently freed comes back first (cache-warm, deterministic).
  EXPECT_EQ(slab.Alloc(32), b);
  EXPECT_EQ(slab.Alloc(32), a);
}

TEST(SlabTest, DifferentSizeClassesDoNotAlias) {
  Slab slab;
  std::vector<std::pair<void*, size_t>> blocks;
  for (size_t size = 16; size <= 1024; size += 16) {
    void* p = slab.Alloc(size);
    std::memset(p, static_cast<int>(size & 0xff), size);
    blocks.emplace_back(p, size);
  }
  // Every block still holds its own fill pattern.
  for (auto& [p, size] : blocks) {
    const auto* bytes = static_cast<unsigned char*>(p);
    for (size_t i = 0; i < size; ++i) {
      ASSERT_EQ(bytes[i], static_cast<unsigned char>(size & 0xff));
    }
    slab.Free(p, size);
  }
}

TEST(SlabTest, LargeAllocationsFallBackToOperatorNew) {
  Slab slab;
  void* p = slab.Alloc(Slab::kMaxSmall + 1);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xcd, Slab::kMaxSmall + 1);
  EXPECT_EQ(slab.large_allocs(), 1u);
  slab.Free(p, Slab::kMaxSmall + 1);
  EXPECT_EQ(slab.live(), 0u);
  // Small allocations never touch the large path.
  void* q = slab.Alloc(Slab::kMaxSmall);
  EXPECT_EQ(slab.large_allocs(), 1u);
  slab.Free(q, Slab::kMaxSmall);
}

TEST(SlabTest, AccountingTracksChurn) {
  Slab slab;
  std::vector<void*> live;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 1000; ++i) live.push_back(slab.Alloc(48));
    for (void* p : live) slab.Free(p, 48);
    live.clear();
  }
  EXPECT_EQ(slab.allocs(), 10000u);
  EXPECT_EQ(slab.frees(), 10000u);
  EXPECT_EQ(slab.live(), 0u);
  // Steady-state churn reuses chunks instead of growing without bound:
  // 1000 x 48B live at peak needs well under ten 64KiB chunks.
  EXPECT_LE(slab.reserved_bytes(), 10u * Slab::kChunkBytes);
}

TEST(SlabTest, ReuseOrderIsDeterministicAcrossInstances) {
  // Two slabs fed the identical alloc/free sequence hand out blocks at the
  // same offsets (addresses differ; offset deltas within the run must not).
  auto run = [] {
    Slab slab;
    std::vector<void*> ptrs;
    std::vector<ptrdiff_t> deltas;
    for (int i = 0; i < 100; ++i) ptrs.push_back(slab.Alloc(64));
    for (int i = 0; i < 100; i += 2) slab.Free(ptrs[i], 64);
    for (int i = 0; i < 50; ++i) {
      void* p = slab.Alloc(64);
      deltas.push_back(static_cast<char*>(p) - static_cast<char*>(ptrs[0]));
    }
    return deltas;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace evc
