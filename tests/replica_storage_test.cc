#include "storage/replica_storage.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace evc {
namespace {

LamportTimestamp Ts(uint64_t c, uint32_t node = 0) {
  return LamportTimestamp{c, node};
}

TEST(ReplicaStorageTest, PutGetRoundTrip) {
  ReplicaStorage rs(0);
  rs.Put("k", "v", VersionVector(), Ts(1));
  auto versions = rs.Get("k");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "v");
  EXPECT_GT(rs.wal()->size_bytes(), 0u);
}

TEST(ReplicaStorageTest, RecoveryRestoresExactState) {
  ReplicaStorage rs(0);
  rs.Put("a", "1", VersionVector(), Ts(1));
  rs.Put("b", "2", VersionVector(), Ts(2));
  rs.Put("a", "3", rs.ContextFor("a"), Ts(3));
  rs.Delete("b", rs.ContextFor("b"), Ts(4));
  const uint64_t root_before = rs.merkle().RootDigest();
  const size_t keys_before = rs.key_count();

  auto replayed = rs.CrashAndRecover();
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 4u);
  EXPECT_EQ(rs.merkle().RootDigest(), root_before);
  EXPECT_EQ(rs.key_count(), keys_before);
  ASSERT_EQ(rs.Get("a").size(), 1u);
  EXPECT_EQ(rs.Get("a")[0].value, "3");
  EXPECT_TRUE(rs.Get("b").empty());       // tombstoned
  EXPECT_FALSE(rs.GetRaw("b").empty());   // tombstone retained
}

TEST(ReplicaStorageTest, RecoveryWithTornTailDropsOnlyTail) {
  ReplicaStorage rs(0);
  rs.Put("a", "1", VersionVector(), Ts(1));
  const uint64_t good = rs.wal()->size_bytes();
  rs.Put("b", "2", VersionVector(), Ts(2));
  rs.wal()->TruncateTo(good + 2);  // tear the second record
  auto replayed = rs.CrashAndRecover();
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 1u);
  EXPECT_FALSE(rs.Get("a").empty());
  EXPECT_TRUE(rs.Get("b").empty());
  EXPECT_EQ(rs.wal()->size_bytes(), good);  // tail truncated away
}

TEST(ReplicaStorageTest, PostRecoveryWritesDoNotReuseCounters) {
  ReplicaStorage rs(7);
  rs.Put("k", "v1", VersionVector(), Ts(1));
  const uint64_t counter_before = rs.GetRaw("k")[0].vv.Get(7);
  ASSERT_TRUE(rs.CrashAndRecover().ok());
  rs.Put("k2", "v2", VersionVector(), Ts(2));
  const uint64_t counter_after = rs.GetRaw("k2")[0].vv.Get(7);
  EXPECT_GT(counter_after, counter_before);
}

TEST(ReplicaStorageTest, PostRecoveryOverwriteStillDominates) {
  ReplicaStorage rs(3);
  rs.Put("k", "v1", VersionVector(), Ts(1));
  ASSERT_TRUE(rs.CrashAndRecover().ok());
  rs.Put("k", "v2", rs.ContextFor("k"), Ts(2));
  auto versions = rs.Get("k");
  ASSERT_EQ(versions.size(), 1u);  // no spurious sibling
  EXPECT_EQ(versions[0].value, "v2");
}

TEST(ReplicaStorageTest, MergeRemoteJournaled) {
  ReplicaStorage a(0), b(1);
  a.Put("k", "x", VersionVector(), Ts(1, 0));
  EXPECT_TRUE(b.MergeRemote("k", a.GetRaw("k")));
  ASSERT_TRUE(b.CrashAndRecover().ok());
  ASSERT_EQ(b.Get("k").size(), 1u);
  EXPECT_EQ(b.Get("k")[0].value, "x");
}

TEST(ReplicaStorageTest, DuplicateMergeNotJournaledTwice) {
  ReplicaStorage a(0), b(1);
  a.Put("k", "x", VersionVector(), Ts(1, 0));
  b.MergeRemote("k", a.GetRaw("k"));
  const uint64_t wal_size = b.wal()->size_bytes();
  b.MergeRemote("k", a.GetRaw("k"));  // no-op
  EXPECT_EQ(b.wal()->size_bytes(), wal_size);
}

TEST(ReplicaStorageTest, NonDurableModeSkipsWal) {
  ReplicaStorageOptions opts;
  opts.durable = false;
  ReplicaStorage rs(0, opts);
  rs.Put("k", "v", VersionVector(), Ts(1));
  EXPECT_EQ(rs.wal()->size_bytes(), 0u);
}

TEST(ReplicaStorageTest, MerkleTracksStateAcrossReplicas) {
  ReplicaStorage a(0), b(1);
  EXPECT_EQ(a.merkle().RootDigest(), b.merkle().RootDigest());
  a.Put("k", "v", VersionVector(), Ts(1, 0));
  EXPECT_NE(a.merkle().RootDigest(), b.merkle().RootDigest());
  b.MergeRemote("k", a.GetRaw("k"));
  EXPECT_EQ(a.merkle().RootDigest(), b.merkle().RootDigest());
}

TEST(ReplicaStorageTest, CheckpointShrinksLogAndPreservesState) {
  ReplicaStorage rs(0);
  // Heavy overwrite traffic: the log holds 200 records for 5 keys.
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    rs.Put(key, "v" + std::to_string(i), rs.ContextFor(key), Ts(i + 1));
  }
  const uint64_t root = rs.merkle().RootDigest();
  const uint64_t log_before = rs.wal()->size_bytes();
  const uint64_t reclaimed = rs.Checkpoint();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_LT(rs.wal()->size_bytes(), log_before / 10);
  // Recovery from the checkpointed log reproduces the exact state.
  auto replayed = rs.CrashAndRecover();
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 5u);  // one record per live key
  EXPECT_EQ(rs.merkle().RootDigest(), root);
  ASSERT_EQ(rs.Get("k0").size(), 1u);
  EXPECT_EQ(rs.Get("k0")[0].value, "v195");
}

TEST(ReplicaStorageTest, WritesAfterCheckpointStillRecover) {
  ReplicaStorage rs(0);
  rs.Put("a", "1", {}, Ts(1));
  rs.Checkpoint();
  rs.Put("b", "2", {}, Ts(2));
  rs.Put("a", "3", rs.ContextFor("a"), Ts(3));
  ASSERT_TRUE(rs.CrashAndRecover().ok());
  ASSERT_EQ(rs.Get("a").size(), 1u);
  EXPECT_EQ(rs.Get("a")[0].value, "3");
  EXPECT_EQ(rs.Get("b")[0].value, "2");
}

// Satellite pin: the full checkpoint -> crash -> replay round-trip. The
// recovered state must be bit-exact (merkle root, version count, values,
// tombstones) with a checkpoint record in the middle of the log, and the
// recovered store must keep journaling correctly afterwards.
TEST(ReplicaStorageTest, CheckpointCrashReplayRoundTrip) {
  ReplicaStorage rs(2);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i % 7);
    rs.Put(key, "pre" + std::to_string(i), rs.ContextFor(key), Ts(i + 1));
  }
  rs.Delete("k6", rs.ContextFor("k6"), Ts(60));
  ASSERT_GT(rs.Checkpoint(), 0u);
  // Post-checkpoint traffic, including a resurrection of the tombstone.
  rs.Put("k6", "reborn", rs.ContextFor("k6"), Ts(61));
  rs.Put("k0", "post", rs.ContextFor("k0"), Ts(62));
  rs.Delete("k1", rs.ContextFor("k1"), Ts(63));

  const uint64_t root = rs.merkle().RootDigest();
  const size_t versions = rs.version_count();
  auto replayed = rs.CrashAndRecover();
  ASSERT_TRUE(replayed.ok());
  EXPECT_GT(*replayed, 3u);  // checkpoint records + the post-checkpoint tail
  EXPECT_EQ(rs.merkle().RootDigest(), root);
  EXPECT_EQ(rs.version_count(), versions);
  EXPECT_EQ(rs.Get("k6")[0].value, "reborn");
  EXPECT_EQ(rs.Get("k0")[0].value, "post");
  EXPECT_TRUE(rs.Get("k1").empty());      // tombstoned
  EXPECT_FALSE(rs.GetRaw("k1").empty());  // tombstone retained

  // The recovered store journals new writes: a second crash loses nothing.
  rs.Put("k2", "after-recovery", rs.ContextFor("k2"), Ts(64));
  ASSERT_TRUE(rs.CrashAndRecover().ok());
  EXPECT_EQ(rs.Get("k2")[0].value, "after-recovery");
}

TEST(ReplicaStorageTest, CheckpointCounterFloorSurvives) {
  // Regression: after checkpoint + recovery, new writes must still not
  // reuse version-vector slots.
  ReplicaStorage rs(4);
  for (int i = 0; i < 10; ++i) {
    rs.Put("k", "v" + std::to_string(i), rs.ContextFor("k"), Ts(i + 1));
  }
  const uint64_t counter = rs.GetRaw("k")[0].vv.Get(4);
  rs.Checkpoint();
  ASSERT_TRUE(rs.CrashAndRecover().ok());
  rs.Put("k2", "x", {}, Ts(99));
  EXPECT_GT(rs.GetRaw("k2")[0].vv.Get(4), counter);
}

// Property: random workload + crash at a random point recovers to exactly
// the state encoded by the surviving log prefix.
class CrashRecoveryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashRecoveryPropertyTest, RecoveryIsExact) {
  Rng rng(GetParam());
  ReplicaStorage rs(0);
  uint64_t ts = 1;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBounded(10));
    if (rng.NextBool(0.8)) {
      rs.Put(key, "v" + std::to_string(i),
             rng.NextBool(0.7) ? rs.ContextFor(key) : VersionVector(),
             Ts(ts++));
    } else {
      rs.Delete(key, rs.ContextFor(key), Ts(ts++));
    }
  }
  const uint64_t root = rs.merkle().RootDigest();
  const size_t versions = rs.version_count();
  ASSERT_TRUE(rs.CrashAndRecover().ok());
  EXPECT_EQ(rs.merkle().RootDigest(), root);
  EXPECT_EQ(rs.version_count(), versions);
  // Second recovery is also exact (idempotent).
  ASSERT_TRUE(rs.CrashAndRecover().ok());
  EXPECT_EQ(rs.merkle().RootDigest(), root);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace evc
