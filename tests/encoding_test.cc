#include "common/encoding.h"

#include <gtest/gtest.h>

#include <limits>

namespace evc {
namespace {

TEST(EncodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  Decoder dec(buf);
  uint32_t v;
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(dec.Done());
}

TEST(EncodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Decoder dec(buf);
  uint64_t v;
  ASSERT_TRUE(dec.GetFixed64(&v).ok());
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(EncodingTest, VarintRoundTripBoundaries) {
  std::string buf;
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(dec.GetVarint64(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(dec.Done());
}

TEST(EncodingTest, VarintEncodingIsMinimalLength) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(EncodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  std::string binary("\x00\x01\x02", 3);
  PutLengthPrefixed(&buf, binary);
  Decoder dec(buf);
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, binary);
  EXPECT_TRUE(dec.Done());
}

TEST(EncodingTest, TruncatedFixedFails) {
  std::string buf = "abc";
  Decoder dec(buf);
  uint32_t v;
  EXPECT_TRUE(dec.GetFixed32(&v).IsCorruption());
  uint64_t w;
  EXPECT_TRUE(dec.GetFixed64(&w).IsCorruption());
}

TEST(EncodingTest, TruncatedVarintFails) {
  std::string buf;
  buf.push_back(static_cast<char>(0x80));  // continuation bit, no next byte
  Decoder dec(buf);
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(EncodingTest, OverlongVarintFails) {
  std::string buf(11, static_cast<char>(0xff));
  Decoder dec(buf);
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(EncodingTest, TruncatedLengthPrefixFailsWithoutConsuming) {
  std::string buf;
  PutVarint64(&buf, 100);  // claims 100 bytes, provides 3
  buf += "abc";
  Decoder dec(buf);
  std::string s;
  EXPECT_TRUE(dec.GetLengthPrefixed(&s).IsCorruption());
  // Cursor unchanged: varint still readable.
  uint64_t v;
  ASSERT_TRUE(dec.GetVarint64(&v).ok());
  EXPECT_EQ(v, 100u);
}

TEST(EncodingTest, GetBytesExactAndTruncated) {
  std::string buf = "abcdef";
  Decoder dec(buf);
  std::string s;
  ASSERT_TRUE(dec.GetBytes(3, &s).ok());
  EXPECT_EQ(s, "abc");
  EXPECT_TRUE(dec.GetBytes(4, &s).IsCorruption());
  ASSERT_TRUE(dec.GetBytes(3, &s).ok());
  EXPECT_EQ(s, "def");
  EXPECT_TRUE(dec.Done());
}

}  // namespace
}  // namespace evc
