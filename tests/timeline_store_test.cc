#include "replication/timeline_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace evc::repl {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class TimelineStoreTest : public ::testing::Test {
 protected:
  void Build(int servers = 3, sim::Time latency = 10 * kMillisecond) {
    sim_ = std::make_unique<sim::Simulator>(21);
    net_ = std::make_unique<sim::Network>(
        sim_.get(), std::make_unique<sim::ConstantLatency>(latency));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    cluster_ = std::make_unique<TimelineCluster>(rpc_.get(),
                                                 TimelineOptions{});
    servers_ = cluster_->AddServers(servers);
    client_ = net_->AddNode();
  }

  Result<uint64_t> WriteSync(const std::string& key,
                             const std::string& value) {
    std::optional<Result<uint64_t>> out;
    cluster_->Write(client_, key, value,
                    [&](Result<uint64_t> r) { out = std::move(r); });
    sim_->RunFor(2 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  Result<TimelineRead> ReadSync(sim::NodeId replica, const std::string& key,
                                TimelineReadLevel level,
                                uint64_t min_seqno = 0) {
    std::optional<Result<TimelineRead>> out;
    cluster_->Read(client_, replica, key, level, min_seqno,
                   [&](Result<TimelineRead> r) { out = std::move(r); });
    sim_->RunFor(2 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<TimelineCluster> cluster_;
  std::vector<sim::NodeId> servers_;
  sim::NodeId client_ = 0;
};

TEST_F(TimelineStoreTest, WriteAssignsIncreasingSeqnos) {
  Build();
  auto w1 = WriteSync("k", "v1");
  auto w2 = WriteSync("k", "v2");
  ASSERT_TRUE(w1.ok() && w2.ok());
  EXPECT_EQ(*w1, 1u);
  EXPECT_EQ(*w2, 2u);
}

TEST_F(TimelineStoreTest, CriticalReadSeesLatestFromAnyReplica) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v1").ok());
  ASSERT_TRUE(WriteSync("k", "v2").ok());
  for (const sim::NodeId replica : cluster_->ReplicasOf("k")) {
    auto read = ReadSync(replica, "k", TimelineReadLevel::kCritical);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read->found);
    EXPECT_EQ(read->value, "v2");
    EXPECT_EQ(read->seqno, 2u);
  }
}

TEST_F(TimelineStoreTest, AnyReadEventuallyConverges) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v").ok());
  sim_->RunFor(kSecond);  // let replication drain
  for (const sim::NodeId replica : cluster_->ReplicasOf("k")) {
    auto read = ReadSync(replica, "k", TimelineReadLevel::kAny);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->value, "v");
  }
}

TEST_F(TimelineStoreTest, AnyReadCanBeStaleRightAfterWrite) {
  Build();
  // Issue the write but stop the clock before replication propagates.
  std::optional<Result<uint64_t>> write;
  cluster_->Write(client_, "k", "v",
                  [&](Result<uint64_t> r) { write = std::move(r); });
  // Run just enough for the write round-trip (client->master->client =
  // 2 hops x 10ms) but not the replication fan-out arrival + read.
  sim_->RunFor(21 * kMillisecond);
  ASSERT_TRUE(write.has_value() && write->ok());
  // A non-master replica read at kAny now: the replicate message (sent at
  // t=10ms, arriving t=20ms) may or may not have landed; VisibleSeqno lets
  // us check the ground truth.
  const auto replicas = cluster_->ReplicasOf("k");
  const sim::NodeId master = cluster_->MasterOf("k");
  EXPECT_EQ(cluster_->VisibleSeqno(master, "k"), 1u);
}

TEST_F(TimelineStoreTest, AtLeastReadForwardsWhenLocalTooStale) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v1").ok());
  sim_->RunFor(kSecond);
  auto w2 = WriteSync("k", "v2");
  ASSERT_TRUE(w2.ok());
  // Don't wait for replication: require seqno >= 2 at a non-master replica.
  sim::NodeId non_master = 0;
  for (const sim::NodeId r : cluster_->ReplicasOf("k")) {
    if (r != cluster_->MasterOf("k")) {
      non_master = r;
      break;
    }
  }
  const auto forwarded_before = cluster_->stats().reads_forwarded;
  auto read = ReadSync(non_master, "k", TimelineReadLevel::kAtLeast, *w2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "v2");
  EXPECT_GE(read->seqno, 2u);
  // Either the replica was already fresh (replication landed during the
  // read RPC) or the read was forwarded; both satisfy the guarantee. Over
  // the whole test the forward path must have been exercised at least once
  // if the replica was stale at arrival.
  (void)forwarded_before;
}

TEST_F(TimelineStoreTest, WritesSerializeThroughMaster) {
  Build();
  // Two clients race writes; the master orders them.
  const sim::NodeId client2 = net_->AddNode();
  std::optional<uint64_t> s1, s2;
  cluster_->Write(client_, "k", "from-1", [&](Result<uint64_t> r) {
    ASSERT_TRUE(r.ok());
    s1 = *r;
  });
  cluster_->Write(client2, "k", "from-2", [&](Result<uint64_t> r) {
    ASSERT_TRUE(r.ok());
    s2 = *r;
  });
  sim_->RunFor(2 * kSecond);
  ASSERT_TRUE(s1.has_value() && s2.has_value());
  EXPECT_NE(*s1, *s2);  // distinct timeline positions
  // All replicas converge to the same final value.
  sim_->RunFor(kSecond);
  std::string final_value;
  for (const sim::NodeId replica : cluster_->ReplicasOf("k")) {
    auto read = ReadSync(replica, "k", TimelineReadLevel::kAny);
    ASSERT_TRUE(read.ok());
    if (final_value.empty()) final_value = read->value;
    EXPECT_EQ(read->value, final_value);
  }
}

TEST_F(TimelineStoreTest, MasterDownMakesWritesUnavailable) {
  Build();
  net_->SetNodeUp(cluster_->MasterOf("k"), false);
  auto write = WriteSync("k", "v");
  EXPECT_TRUE(write.status().IsTimedOut() || write.status().IsUnavailable());
  EXPECT_GE(cluster_->stats().writes_unavailable, 1u);
}

TEST_F(TimelineStoreTest, ReadsStayAvailableWhenMasterDown) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v").ok());
  sim_->RunFor(kSecond);
  const sim::NodeId master = cluster_->MasterOf("k");
  net_->SetNodeUp(master, false);
  for (const sim::NodeId replica : cluster_->ReplicasOf("k")) {
    if (replica == master) continue;
    auto read = ReadSync(replica, "k", TimelineReadLevel::kAny);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->value, "v");
  }
}

TEST_F(TimelineStoreTest, CriticalReadUnavailableWhenMasterDown) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v").ok());
  sim_->RunFor(kSecond);
  const sim::NodeId master = cluster_->MasterOf("k");
  net_->SetNodeUp(master, false);
  sim::NodeId non_master = 0;
  for (const sim::NodeId r : cluster_->ReplicasOf("k")) {
    if (r != master) {
      non_master = r;
      break;
    }
  }
  auto read = ReadSync(non_master, "k", TimelineReadLevel::kCritical);
  EXPECT_FALSE(read.ok());
}

TEST_F(TimelineStoreTest, ReplicaNeverAppliesOutOfOrder) {
  // Message duplication duplicates both replication messages and client
  // write RPCs (at-least-once delivery), so absolute seqnos are not
  // predictable — but the timeline invariant must hold: every replica
  // converges to exactly the master's (seqno, value), never past it and
  // never to a reordered older update.
  Build();
  net_->set_duplicate_rate(0.5);
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(WriteSync("k", "v" + std::to_string(i)).ok());
  }
  sim_->RunFor(2 * kSecond);
  const sim::NodeId master = cluster_->MasterOf("k");
  const uint64_t master_seqno = cluster_->VisibleSeqno(master, "k");
  EXPECT_GE(master_seqno, 20u);
  auto master_read = ReadSync(master, "k", TimelineReadLevel::kAny);
  ASSERT_TRUE(master_read.ok());
  for (const sim::NodeId replica : cluster_->ReplicasOf("k")) {
    EXPECT_EQ(cluster_->VisibleSeqno(replica, "k"), master_seqno);
    auto read = ReadSync(replica, "k", TimelineReadLevel::kAny);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->value, master_read->value);
  }
}

TEST_F(TimelineStoreTest, MigrationMovesMasterAndContinuesTimeline) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v1").ok());
  ASSERT_TRUE(WriteSync("k", "v2").ok());
  sim_->RunFor(kSecond);
  const sim::NodeId old_master = cluster_->MasterOf("k");
  sim::NodeId new_master = 0;
  for (const sim::NodeId s : servers_) {
    if (s != old_master) {
      new_master = s;
      break;
    }
  }
  std::optional<Status> migrated;
  cluster_->MigrateMaster("k", new_master,
                          [&](Status s) { migrated = std::move(s); });
  sim_->RunFor(2 * kSecond);
  ASSERT_TRUE(migrated.has_value());
  ASSERT_TRUE(migrated->ok()) << migrated->ToString();
  EXPECT_EQ(cluster_->MasterOf("k"), new_master);
  // Writes keep flowing and the timeline continues (seqno 3, not 1).
  auto w3 = WriteSync("k", "v3");
  ASSERT_TRUE(w3.ok()) << w3.status().ToString();
  EXPECT_EQ(*w3, 3u);
  auto read = ReadSync(new_master, "k", TimelineReadLevel::kCritical);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "v3");
}

TEST_F(TimelineStoreTest, MigrateToSelfIsNoop) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v").ok());
  std::optional<Status> migrated;
  cluster_->MigrateMaster("k", cluster_->MasterOf("k"),
                          [&](Status s) { migrated = std::move(s); });
  sim_->RunFor(kSecond);
  ASSERT_TRUE(migrated.has_value());
  EXPECT_TRUE(migrated->ok());
}

TEST_F(TimelineStoreTest, WritesDuringMigrationEventuallySucceed) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v1").ok());
  sim_->RunFor(kSecond);
  const sim::NodeId old_master = cluster_->MasterOf("k");
  sim::NodeId new_master = 0;
  for (const sim::NodeId s : servers_) {
    if (s != old_master) {
      new_master = s;
      break;
    }
  }
  // Start the migration and immediately issue a write: the write backs off
  // while migrating, then lands on the new master.
  cluster_->MigrateMaster("k", new_master, [](Status) {});
  std::optional<Result<uint64_t>> write;
  cluster_->Write(client_, "k", "v2",
                  [&](Result<uint64_t> r) { write = std::move(r); });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(write.has_value());
  ASSERT_TRUE(write->ok()) << write->status().ToString();
  EXPECT_EQ(**write, 2u);
  EXPECT_EQ(cluster_->VisibleSeqno(new_master, "k"), 2u);
}

TEST_F(TimelineStoreTest, FailoverRestoresWriteAvailability) {
  Build();
  ASSERT_TRUE(WriteSync("k", "v1").ok());
  sim_->RunFor(kSecond);  // replicate v1 everywhere
  const sim::NodeId old_master = cluster_->MasterOf("k");
  net_->SetNodeUp(old_master, false);
  // Writes are dead (the tutorial's per-record CP behaviour)...
  auto blocked = WriteSync("k", "v2");
  EXPECT_FALSE(blocked.ok());
  // ...until the admin fails mastership over to a live replica.
  sim::NodeId new_master = 0;
  for (const sim::NodeId s : cluster_->ReplicasOf("k")) {
    if (s != old_master) {
      new_master = s;
      break;
    }
  }
  std::optional<Status> migrated;
  cluster_->MigrateMaster("k", new_master,
                          [&](Status s) { migrated = std::move(s); });
  sim_->RunFor(3 * kSecond);
  ASSERT_TRUE(migrated.has_value());
  ASSERT_TRUE(migrated->ok()) << migrated->ToString();
  // Availability restored, timeline continued from the replicated prefix.
  auto w2 = WriteSync("k", "v2-again");
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
  EXPECT_EQ(*w2, 2u);
}

TEST_F(TimelineStoreTest, MissingKeyReadsNotFoundShape) {
  Build();
  auto read = ReadSync(servers_[0], "nope", TimelineReadLevel::kCritical);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->found);
  EXPECT_EQ(read->seqno, 0u);
}

TEST_F(TimelineStoreTest, AtLeastSatisfiedLocallyStillCountsAsStale) {
  // Regression: stale_reads_served only counted kAny. A kAtLeast read
  // satisfied locally (seqno >= min_seqno) but behind the master is every
  // bit as stale — the staleness benches must see it.
  Build();
  ASSERT_TRUE(WriteSync("k", "v1").ok());  // replicates everywhere (2s run)
  sim::NodeId non_master = 0;
  for (const sim::NodeId r : cluster_->ReplicasOf("k")) {
    if (r != cluster_->MasterOf("k")) {
      non_master = r;
      break;
    }
  }
  // The replica misses the second write: it is down when the replicate
  // message is sent, so it stays at seqno 1 while the master moves to 2.
  net_->SetNodeUp(non_master, false);
  ASSERT_TRUE(WriteSync("k", "v2").ok());
  net_->SetNodeUp(non_master, true);
  ASSERT_EQ(cluster_->VisibleSeqno(non_master, "k"), 1u);

  const uint64_t stale_before = cluster_->stats().stale_reads_served;
  auto read = ReadSync(non_master, "k", TimelineReadLevel::kAtLeast,
                       /*min_seqno=*/1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->seqno, 1u);  // floor met locally, master not consulted
  EXPECT_FALSE(read->min_seqno_unmet);
  EXPECT_EQ(cluster_->stats().stale_reads_served, stale_before + 1);
}

TEST_F(TimelineStoreTest, AtLeastBeyondMasterSurfacesUnmetFloor) {
  // Regression: a kAtLeast floor above the master's own seqno used to
  // return older data with no signal. Nothing fresher exists anywhere, so
  // the store serves what it has — but must say the floor was unmet.
  Build();
  ASSERT_TRUE(WriteSync("k", "v1").ok());
  const sim::NodeId master = cluster_->MasterOf("k");
  auto at_master = ReadSync(master, "k", TimelineReadLevel::kAtLeast,
                            /*min_seqno=*/5);
  ASSERT_TRUE(at_master.ok());
  EXPECT_EQ(at_master->value, "v1");
  EXPECT_TRUE(at_master->min_seqno_unmet);
  EXPECT_EQ(cluster_->stats().atleast_unmet, 1u);

  // Forwarded path: a non-master replica below the floor forwards at the
  // SAME level, so the master still evaluates (and flags) the floor. The
  // seed downgraded forwards to kAny, erasing min_seqno en route.
  sim::NodeId non_master = 0;
  for (const sim::NodeId r : cluster_->ReplicasOf("k")) {
    if (r != master) {
      non_master = r;
      break;
    }
  }
  auto forwarded = ReadSync(non_master, "k", TimelineReadLevel::kAtLeast,
                            /*min_seqno=*/5);
  ASSERT_TRUE(forwarded.ok());
  EXPECT_EQ(forwarded->value, "v1");
  EXPECT_TRUE(forwarded->min_seqno_unmet);
  EXPECT_EQ(cluster_->stats().atleast_unmet, 2u);
}

}  // namespace
}  // namespace evc::repl
