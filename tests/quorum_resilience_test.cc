// Detector-vs-oracle A/B on the sloppy quorum store, detector honesty under
// gray failures, and determinism of the full resilience stack.

#include <gtest/gtest.h>

#include <string>

#include "verify/fuzz.h"

namespace evc::verify {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// A flaky-link-heavy schedule: no clean partitions, crashes, loss ramps, or
// duplication — only probabilistic per-link drops, which CanCommunicate is
// blind to.
FuzzOptions FlakyLinkOptions(uint64_t seed, bool oracle) {
  FuzzOptions options = DefaultFuzzOptions(FuzzStore::kQuorumWeak, seed);
  options.use_oracle_detector = oracle;
  options.nemesis.allow_partitions = false;
  options.nemesis.allow_crashes = false;
  options.nemesis.allow_loss = false;
  options.nemesis.allow_duplication = false;
  options.nemesis.allow_flaky_links = true;
  options.nemesis.max_flaky_drop_rate = 0.9;
  options.nemesis.mean_fault_interval = kSecond;
  return options;
}

// Pinned A/B: under a flaky-link schedule the oracle mode never diverts a
// write (every link "can communicate"), while the detector mode suspects
// flaky peers from their silence and routes writes to fallbacks with hints.
// Both modes must still satisfy every claimed property on the same seed.
TEST(QuorumResilienceTest, DetectorDivertsMoreThanOracleUnderFlakyLinks) {
  const uint64_t kSeed = 3;
  const FuzzReport detector = RunFuzzSeed(FlakyLinkOptions(kSeed, false));
  const FuzzReport oracle = RunFuzzSeed(FlakyLinkOptions(kSeed, true));

  std::string why;
  EXPECT_TRUE(detector.MeetsClaims(&why)) << "detector: " << why;
  EXPECT_TRUE(oracle.MeetsClaims(&why)) << "oracle: " << why;

  EXPECT_GT(detector.hints_stored, oracle.hints_stored);
  // Oracle mode still records outcomes into the detector (same code path,
  // same event schedule — only the routing verdict differs), so its
  // passively-accrued suspicions can disagree with the oracle too; under a
  // purely gray schedule that disagreement is the point in both modes.
  EXPECT_GT(detector.hints_stored, 0u);
}

// Satellite: detector honesty. Under gray schedules the false-positive
// count (suspicions the oracle disputes) is exported and bounded — the
// detector disagrees with the blind oracle only while gray faults are
// actually active, not promiscuously.
TEST(QuorumResilienceTest, DetectorFalsePositivesExportedAndBounded) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FuzzOptions options = FlakyLinkOptions(seed, /*oracle=*/false);
    options.nemesis.allow_slow_links = true;
    options.nemesis.allow_slow_nodes = true;
    const FuzzReport report = RunFuzzSeed(options);
    std::string why;
    EXPECT_TRUE(report.MeetsClaims(&why)) << "seed " << seed << ": " << why;
    // One suspicion edge per (observer, peer) pair per gray episode is the
    // honest ceiling; dozens would mean the detector flaps.
    EXPECT_LE(report.detector_false_positives, 50u) << "seed " << seed;
  }
}

// Same-seed runs of the full stack — retries, hedged reads via the client
// layer, gray faults, detector-driven routing — must stay bit-identical.
TEST(QuorumResilienceTest, ResilienceStackIsDeterministic) {
  FuzzOptions options = FlakyLinkOptions(17, /*oracle=*/false);
  options.nemesis.allow_slow_links = true;
  options.nemesis.allow_slow_nodes = true;
  options.nemesis.allow_crashes = true;
  const FuzzReport a = RunFuzzSeed(options);
  const FuzzReport b = RunFuzzSeed(options);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.hints_stored, b.hints_stored);
  EXPECT_EQ(a.detector_false_positives, b.detector_false_positives);
  EXPECT_EQ(a.writes_acked, b.writes_acked);
  EXPECT_EQ(a.reads_ok, b.reads_ok);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
}

// The gray-heavy fuzz profile (slow/flaky links + slow nodes + crashes)
// must meet claims across a seed sweep in both detector modes.
TEST(QuorumResilienceTest, GrayHeavyScheduleMeetsClaimsInBothModes) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    for (const bool oracle : {false, true}) {
      FuzzOptions options =
          DefaultFuzzOptions(FuzzStore::kQuorumWeak, seed);
      options.use_oracle_detector = oracle;
      options.nemesis.allow_partitions = false;
      options.nemesis.allow_loss = false;
      options.nemesis.allow_duplication = false;
      options.nemesis.allow_slow_links = true;
      options.nemesis.allow_flaky_links = true;
      options.nemesis.allow_slow_nodes = true;
      options.nemesis.mean_fault_interval = kSecond;
      const FuzzReport report = RunFuzzSeed(options);
      std::string why;
      EXPECT_TRUE(report.MeetsClaims(&why))
          << "seed " << seed << " oracle=" << oracle << ": " << why;
    }
  }
}

}  // namespace
}  // namespace evc::verify
