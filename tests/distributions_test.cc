#include "common/distributions.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace evc {
namespace {

TEST(UniformDistributionTest, CoversRangeEvenly) {
  UniformDistribution dist(10);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[dist.Next(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(ZipfianDistributionTest, ItemZeroIsMostPopular) {
  ZipfianDistribution dist(1000, 0.99);
  Rng rng(2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[dist.Next(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[100]);
}

TEST(ZipfianDistributionTest, StaysInRange) {
  ZipfianDistribution dist(17, 0.8);
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LT(dist.Next(rng), 17u);
  }
}

TEST(ZipfianDistributionTest, HigherThetaMoreSkew) {
  Rng rng_a(4), rng_b(4);
  ZipfianDistribution mild(1000, 0.5), heavy(1000, 0.99);
  int mild_hits = 0, heavy_hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (mild.Next(rng_a) == 0) ++mild_hits;
    if (heavy.Next(rng_b) == 0) ++heavy_hits;
  }
  EXPECT_GT(heavy_hits, mild_hits * 2);
}

TEST(ZipfianDistributionTest, SingleItemAlwaysZero) {
  ZipfianDistribution dist(1, 0.99);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.Next(rng), 0u);
}

TEST(ScrambledZipfianTest, PopularItemNotNecessarilyFirst) {
  ScrambledZipfianDistribution dist(1000, 0.99);
  Rng rng(6);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[dist.Next(rng)];
  // The hottest item should have the zipfian head frequency but be scattered.
  int max_idx = 0;
  for (int i = 0; i < 1000; ++i) {
    if (counts[i] > counts[max_idx]) max_idx = i;
  }
  EXPECT_GT(counts[max_idx], 200000 / 50);  // head item is very hot
}

TEST(ScrambledZipfianTest, StaysInRange) {
  ScrambledZipfianDistribution dist(37, 0.9);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(dist.Next(rng), 37u);
}

TEST(LatestDistributionTest, NewestItemsMostPopular) {
  LatestDistribution dist(1000);
  Rng rng(8);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[dist.Next(rng)];
  EXPECT_GT(counts[999], counts[0]);
  EXPECT_GT(counts[999], counts[500]);
}

TEST(LatestDistributionTest, AdvanceShiftsHead) {
  LatestDistribution dist(10);
  dist.AdvanceItemCount();
  EXPECT_EQ(dist.item_count(), 11u);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(dist.Next(rng), 11u);
}

TEST(HotspotDistributionTest, HotSetGetsConfiguredFraction) {
  HotspotDistribution dist(1000, /*hot_set_fraction=*/0.1,
                           /*hot_draw_fraction=*/0.9);
  Rng rng(10);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (dist.Next(rng) < 100) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.9, 0.02);
}

TEST(HotspotDistributionTest, DegenerateAllHot) {
  HotspotDistribution dist(10, 1.0, 0.5);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(dist.Next(rng), 10u);
}

// Property sweep: every distribution respects its domain for many sizes.
class DistributionDomainTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributionDomainTest, AllDistributionsStayInDomain) {
  const uint64_t n = GetParam();
  Rng rng(n * 31 + 1);
  std::vector<std::unique_ptr<KeyDistribution>> dists;
  dists.push_back(std::make_unique<UniformDistribution>(n));
  dists.push_back(std::make_unique<ZipfianDistribution>(n, 0.99));
  dists.push_back(std::make_unique<ScrambledZipfianDistribution>(n, 0.7));
  dists.push_back(std::make_unique<LatestDistribution>(n));
  dists.push_back(std::make_unique<HotspotDistribution>(n, 0.2, 0.8));
  for (auto& d : dists) {
    EXPECT_EQ(d->item_count(), n);
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(d->Next(rng), n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistributionDomainTest,
                         ::testing::Values(1, 2, 3, 10, 100, 4096, 100000));

}  // namespace
}  // namespace evc
