// Crash participants: nemesis crashes drop volatile state, restarts replay
// journals. Covers the simulator registry, the nemesis wiring edges, hint
// loss accounting, timeline/causal WAL recovery, and the determinism of the
// metrics export with the crash.*/wal.* instruments live.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "causal/causal_store.h"
#include "obs/export.h"
#include "replication/quorum_store.h"
#include "replication/timeline_store.h"
#include "sim/nemesis.h"

namespace evc {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct CountingParticipant : sim::CrashParticipant {
  std::map<uint32_t, int> crashes;
  std::map<uint32_t, int> restarts;
  void OnCrash(uint32_t node) override { ++crashes[node]; }
  void OnRestart(uint32_t node) override { ++restarts[node]; }
};

TEST(CrashParticipantRegistryTest, NotifiesOnlyRegisteredNodes) {
  sim::Simulator sim(1);
  CountingParticipant p;
  sim.RegisterCrashParticipant(1, &p);
  sim.RegisterCrashParticipant(2, &p);

  sim.NotifyCrash(1);
  sim.NotifyCrash(3);  // nobody registered: no-op
  sim.NotifyRestart(1);
  EXPECT_EQ(p.crashes[1], 1);
  EXPECT_EQ(p.crashes[3], 0);
  EXPECT_EQ(p.restarts[1], 1);

  // crash.recoveries counts restarts that reached at least one participant.
  auto& recoveries = sim.metrics().global().CounterFor("crash.recoveries");
  EXPECT_EQ(recoveries.value(), 1.0);
  sim.NotifyRestart(3);  // no participants: not a recovery
  EXPECT_EQ(recoveries.value(), 1.0);

  sim.UnregisterCrashParticipant(&p);
  sim.NotifyCrash(1);
  EXPECT_EQ(p.crashes[1], 1);  // unchanged
}

TEST(CrashParticipantRegistryTest, RegistrarToleratesSimulatorDyingFirst) {
  auto sim = std::make_unique<sim::Simulator>(1);
  CountingParticipant p;
  sim::CrashRegistrar registrar;
  registrar.Register(sim.get(), 0, &p);
  sim.reset();  // simulator gone; registrar destructor must not touch it
}

TEST(NemesisCrashWiringTest, NotifiesOnRealStateEdgesOnly) {
  sim::Simulator sim(3);
  sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(kMillisecond));
  std::vector<sim::NodeId> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(net.AddNode());
  CountingParticipant p;
  for (sim::NodeId n : nodes) sim.RegisterCrashParticipant(n, &p);
  sim::Nemesis nemesis(&net, nodes, /*seed=*/5);

  // Restarting an already-up node is not a recovery.
  nemesis.Execute(sim::FaultPlan().RestartAt(0, nodes[0]));
  sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(p.restarts[nodes[0]], 0);

  // Crash fires OnCrash exactly once; crashing a down node is a no-op.
  nemesis.Execute(sim::FaultPlan().CrashAt(0, nodes[0]).CrashAt(
      5 * kMillisecond, nodes[0]));
  sim.RunFor(20 * kMillisecond);
  EXPECT_EQ(p.crashes[nodes[0]], 1);
  EXPECT_FALSE(net.IsNodeUp(nodes[0]));

  // Restart notifies recovery before the node starts receiving messages.
  nemesis.Execute(sim::FaultPlan().RestartAt(0, nodes[0]));
  sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(p.restarts[nodes[0]], 1);
  EXPECT_TRUE(net.IsNodeUp(nodes[0]));

  // HealAll restarts (and notifies) every nemesis-crashed node.
  nemesis.Execute(sim::FaultPlan().CrashAt(0, nodes[1]).CrashAt(0, nodes[2]));
  sim.RunFor(10 * kMillisecond);
  nemesis.HealAll();
  EXPECT_EQ(p.crashes[nodes[1]], 1);
  EXPECT_EQ(p.restarts[nodes[1]], 1);
  EXPECT_EQ(p.restarts[nodes[2]], 1);
  EXPECT_EQ(sim.metrics().global().CounterFor("crash.recoveries").value(),
            3.0);
}

// Satellite pin: the hint ledger balances after crashes. Every stored hint
// is delivered, lost, or still pending — never silently vanished.
TEST(DynamoCrashTest, HintLedgerBalancesAfterCrash) {
  sim::Simulator sim(17);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 10 * kMillisecond));
  sim::Rpc rpc(&net);
  repl::QuorumConfig cfg;
  cfg.read_quorum = 1;
  cfg.write_quorum = 1;
  repl::DynamoCluster cluster(&rpc, cfg);
  auto servers = cluster.AddServers(5);
  const sim::NodeId client = net.AddNode();
  sim::Nemesis nemesis(&net, servers, /*seed=*/9);

  // Take one home replica down; sloppy writes hint for it at a substitute.
  // The failure detector (not the old oracle) picks the substitute, so give
  // the heartbeats time to convict the crashed replica first.
  cluster.StartFailureDetection();
  const auto pref = cluster.PreferenceList("k");
  nemesis.Execute(sim::FaultPlan().CrashAt(0, pref[1]));
  sim.RunFor(kSecond);
  bool ok = false;
  cluster.Put(client, pref[0], "k", "v", {},
              [&](Result<Version> r) { ok = r.ok(); });
  sim.RunFor(2 * kSecond);
  ASSERT_TRUE(ok);
  const auto& stats = cluster.stats();
  EXPECT_GE(stats.hints_stored, 1u);
  EXPECT_GE(cluster.pending_hints(), 1u);
  EXPECT_EQ(stats.hints_stored,
            stats.hints_delivered + stats.hints_lost + cluster.pending_hints());

  // Crash everything: buffered hints are volatile and must move to the
  // hints_lost column, not vanish from the books.
  sim::FaultPlan all_down;
  for (sim::NodeId s : servers) all_down.CrashAt(0, s);
  nemesis.Execute(all_down);
  sim.RunFor(50 * kMillisecond);
  EXPECT_EQ(cluster.pending_hints(), 0u);
  EXPECT_GE(cluster.stats().hints_lost, 1u);
  EXPECT_EQ(cluster.stats().hints_stored,
            cluster.stats().hints_delivered + cluster.stats().hints_lost);
  EXPECT_GE(
      sim.metrics().global().CounterFor("crash.state_dropped_bytes").value(),
      1.0);

  nemesis.HealAll();
  sim.RunFor(kSecond);
  // Durable storage replayed its WAL on every restart: the acked write
  // survives even though the hints died.
  bool read_ok = false;
  cluster.Get(client, pref[0], "k", [&](Result<repl::ReadResult> r) {
    read_ok = r.ok() && !r->versions.empty() && r->versions[0].value == "v";
  });
  sim.RunFor(2 * kSecond);
  EXPECT_TRUE(read_ok);
  EXPECT_GT(
      sim.metrics().global().CounterFor("wal.replayed_records").value(), 0.0);
}

TEST(TimelineCrashTest, ReplicaRecoversAppliedPrefixFromJournal) {
  for (const bool durable : {true, false}) {
    sim::Simulator sim(23);
    sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                               2 * kMillisecond, 8 * kMillisecond));
    sim::Rpc rpc(&net);
    repl::TimelineOptions opt;
    opt.replication_factor = 3;
    opt.durable = durable;
    repl::TimelineCluster cluster(&rpc, opt);
    auto servers = cluster.AddServers(3);
    const sim::NodeId client = net.AddNode();

    for (int i = 1; i <= 3; ++i) {
      bool ok = false;
      cluster.Write(client, "k", "v" + std::to_string(i),
                    [&](Result<uint64_t> r) { ok = r.ok(); });
      sim.RunFor(kSecond);
      ASSERT_TRUE(ok);
    }
    // Pick a non-master replica and let replication drain.
    sim.RunFor(kSecond);
    const sim::NodeId master = cluster.MasterOf("k");
    sim::NodeId replica = 0;
    for (sim::NodeId s : cluster.ReplicasOf("k")) {
      if (s != master) replica = s;
    }
    ASSERT_EQ(cluster.VisibleSeqno(replica, "k"), 3u);

    sim::Nemesis nemesis(&net, servers, /*seed=*/3);
    nemesis.Execute(sim::FaultPlan().CrashAt(0, replica).RestartAt(
        200 * kMillisecond, replica));
    sim.RunFor(kSecond);

    if (durable) {
      // Journal replay restored the applied prefix.
      EXPECT_EQ(cluster.VisibleSeqno(replica, "k"), 3u);
      EXPECT_GT(
          sim.metrics().global().CounterFor("wal.replayed_records").value(),
          0.0);
    } else {
      // Nothing journaled: the replica restarts empty and stays stale
      // until the next write replicates (timeline has no anti-entropy).
      EXPECT_EQ(cluster.VisibleSeqno(replica, "k"), 0u);
    }
  }
}

TEST(CausalCrashTest, DatacenterRecoversAppliedWritesAndClock) {
  sim::Simulator sim(31);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             5 * kMillisecond, 20 * kMillisecond));
  sim::Rpc rpc(&net);
  causal::CausalCluster cluster(&rpc, causal::CausalOptions{});
  auto dcs = cluster.AddDatacenters(3);
  const sim::NodeId client = net.AddNode();

  causal::CausalClient writer(&cluster, client, dcs[0]);
  for (const auto& [k, v] :
       std::vector<std::pair<std::string, std::string>>{{"photo", "p1"},
                                                        {"comment", "c1"}}) {
    bool ok = false;
    writer.Put(k, v, [&](Result<causal::WriteId> r) { ok = r.ok(); });
    while (!ok && sim.Step()) {
    }
    ASSERT_TRUE(ok);
  }
  sim.RunFor(2 * kSecond);  // replicate everywhere
  ASSERT_TRUE(cluster.LocalRead(dcs[2], "comment").found);
  const causal::WriteId comment_id = cluster.LocalRead(dcs[2], "comment").id;

  sim::Nemesis nemesis(&net, dcs, /*seed=*/13);
  nemesis.Execute(sim::FaultPlan().CrashAt(0, dcs[2]).RestartAt(
      300 * kMillisecond, dcs[2]));
  sim.RunFor(kSecond);

  // The applied-write journal restored both records and their write ids.
  const causal::CausalRead photo = cluster.LocalRead(dcs[2], "photo");
  const causal::CausalRead comment = cluster.LocalRead(dcs[2], "comment");
  ASSERT_TRUE(photo.found);
  ASSERT_TRUE(comment.found);
  EXPECT_EQ(photo.value, "p1");
  EXPECT_EQ(comment.value, "c1");
  EXPECT_EQ(comment.id, comment_id);
  EXPECT_GT(
      sim.metrics().global().CounterFor("wal.replayed_records").value(), 0.0);

  // The Lamport clock recovered with the journal: a write at the restarted
  // DC must mint an id newer than everything it had applied.
  bool ok = false;
  causal::WriteId new_id;
  cluster.Put(client, dcs[2], "photo", "p2", {},
              [&](Result<causal::WriteId> r) {
                ok = r.ok();
                if (ok) new_id = *r;
              });
  while (!ok && sim.Step()) {
  }
  ASSERT_TRUE(ok);
  EXPECT_TRUE(comment_id < new_id);
  sim.RunFor(2 * kSecond);
  EXPECT_TRUE(cluster.Converged("photo"));
}

// Acceptance: same-seed runs export byte-identical evc-metrics-v1 JSON,
// including the new crash.* / wal.* instruments.
std::string RunDeterministicAmnesiaScenario() {
  sim::Simulator sim(42);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 12 * kMillisecond));
  sim::Rpc rpc(&net);
  repl::QuorumConfig cfg;
  cfg.read_quorum = 1;
  cfg.write_quorum = 1;
  repl::DynamoCluster cluster(&rpc, cfg);
  auto servers = cluster.AddServers(5);
  const sim::NodeId client = net.AddNode();
  cluster.StartHintDelivery(500 * kMillisecond);

  for (int i = 0; i < 20; ++i) {
    sim.ScheduleAt(i * 100 * kMillisecond, [&cluster, &servers, client, i] {
      cluster.Put(client, servers[static_cast<size_t>(i) % servers.size()],
                  "k" + std::to_string(i % 4), "v" + std::to_string(i), {},
                  [](Result<Version>) {});
    });
  }
  sim::Nemesis nemesis(&net, servers, /*seed=*/99);
  nemesis.Execute(sim::FaultPlan()
                      .CrashAt(300 * kMillisecond, servers[1])
                      .RestartAt(900 * kMillisecond, servers[1])
                      .CrashAt(1200 * kMillisecond, servers[2])
                      .RestartAt(1700 * kMillisecond, servers[2]));
  sim.RunFor(6 * kSecond);
  return obs::MetricsToJson(sim.metrics()).Dump();
}

TEST(CrashObservabilityTest, SameSeedRunsExportIdenticalMetrics) {
  const std::string a = RunDeterministicAmnesiaScenario();
  const std::string b = RunDeterministicAmnesiaScenario();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("crash.recoveries"), std::string::npos);
  EXPECT_NE(a.find("crash.state_dropped_bytes"), std::string::npos);
  EXPECT_NE(a.find("wal.replayed_records"), std::string::npos);
}

}  // namespace
}  // namespace evc
