// Fault-schedule fuzzing as a CI test: every store must satisfy exactly the
// properties its consistency level claims, under randomized nemesis
// schedules (tests/fuzz_consistency_test.cc is the in-tree harness; the
// standalone tools/evc_fuzz binary runs wider sweeps and replays seeds).
//
// The regression corpus below pins seeds that once exposed a real bug so
// they are replayed on every CI run.

#include "verify/fuzz.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace evc::verify {
namespace {

// Every store meets its claims on a small smoke sweep. (The full 200-seed
// sweep lives in tools/evc_fuzz; 6 seeds x 8 stores keeps CI fast.)
TEST(FuzzConsistencyTest, AllStoresMeetClaimsOnSmokeSeeds) {
  for (FuzzStore store : AllFuzzStores()) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      const FuzzReport report = RunFuzzSeed(DefaultFuzzOptions(store, seed));
      std::string why;
      EXPECT_TRUE(report.MeetsClaims(&why))
          << ToString(store) << " seed " << seed << ": " << why << "\n"
          << report.Summary();
    }
  }
}

// Regression corpus: these seeds caught a real duplicate-apply bug in the
// Paxos KV client. A proposal that timed out at the client could be
// completed later by a new leader's prepare phase while the client's retry
// also committed — the same logical put executed twice, resurrecting an
// overwritten value into a read (a genuine linearizability violation).
// Fixed by minting one op_id per logical operation and deduplicating in the
// state machine. These schedules must stay linearizable forever.
TEST(FuzzConsistencyTest, PaxosRetryDuplicateRegressionCorpus) {
  const uint64_t kCorpus[] = {37, 78, 112, 123, 129, 142, 172};
  for (uint64_t seed : kCorpus) {
    const FuzzReport report =
        RunFuzzSeed(DefaultFuzzOptions(FuzzStore::kPaxos, seed));
    std::string why;
    EXPECT_TRUE(report.MeetsClaims(&why))
        << "paxos regression seed " << seed << ": " << why << "\n"
        << report.Summary();
    EXPECT_TRUE(report.lin_checked);
    EXPECT_GT(report.lin_ops, 0u);
  }
}

// Strict quorums (R+W>N) must deliver all four session guarantees under
// every schedule, and the runs must actually exercise the checker.
TEST(FuzzConsistencyTest, StrictQuorumKeepsSessionGuarantees) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzReport report =
        RunFuzzSeed(DefaultFuzzOptions(FuzzStore::kQuorumStrict, seed));
    ASSERT_TRUE(report.sess_checked);
    EXPECT_TRUE(report.session.ok())
        << "seed " << seed << ": " << report.session.ToString();
    EXPECT_GT(report.writes_acked + report.reads_ok, 0u);
  }
}

// The negative control: R=W=1 sloppy quorums do NOT provide session
// guarantees, and the checkers must catch a real recorded anomaly on at
// least one seed — otherwise the whole suite could be passing vacuously.
// We scan until the first anomalous seed rather than pinning one, so the
// test is robust to tiny platform-dependent floating-point differences in
// the random schedules.
TEST(FuzzConsistencyTest, WeakQuorumExhibitsSessionAnomalies) {
  bool found_anomaly = false;
  uint64_t anomalous_seed = 0;
  for (uint64_t seed = 1; seed <= 200 && !found_anomaly; ++seed) {
    const FuzzReport report =
        RunFuzzSeed(DefaultFuzzOptions(FuzzStore::kQuorumWeak, seed));
    std::string why;
    // Even anomalous runs must meet the weak store's (weaker) claims:
    // convergence + no lost acked writes.
    ASSERT_TRUE(report.MeetsClaims(&why)) << "seed " << seed << ": " << why;
    if (report.session.total() > 0) {
      found_anomaly = true;
      anomalous_seed = seed;
    }
  }
  EXPECT_TRUE(found_anomaly)
      << "no session anomaly in 200 weak-quorum seeds: the session checker "
         "may have gone vacuous";
  if (found_anomaly) {
    // And the anomaly replays deterministically.
    const FuzzReport again = RunFuzzSeed(
        DefaultFuzzOptions(FuzzStore::kQuorumWeak, anomalous_seed));
    EXPECT_GT(again.session.total(), 0u);
  }
}

// Replaying a seed produces a bit-identical report — the property that
// makes `evc_fuzz --store=X --seed=N` a usable repro command.
TEST(FuzzConsistencyTest, ReplayIsBitIdentical) {
  for (FuzzStore store :
       {FuzzStore::kPaxos, FuzzStore::kQuorumWeak, FuzzStore::kCausal}) {
    const FuzzReport a = RunFuzzSeed(DefaultFuzzOptions(store, 11));
    const FuzzReport b = RunFuzzSeed(DefaultFuzzOptions(store, 11));
    EXPECT_EQ(a.Summary(), b.Summary()) << ToString(store);
  }
}

// Timeline consistency: a pinned reader never observes a fork (two values
// for one (key, seqno)) and reads monotonically, on every seed.
TEST(FuzzConsistencyTest, TimelineNeverForks) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzReport report =
        RunFuzzSeed(DefaultFuzzOptions(FuzzStore::kTimeline, seed));
    ASSERT_TRUE(report.fork_checked);
    EXPECT_EQ(report.fork_violations, 0u) << "seed " << seed;
    EXPECT_TRUE(report.session.ok())
        << "seed " << seed << ": " << report.session.ToString();
  }
}

// Causal store: dependency-annotated history passes the causal checker on
// every seed, faults or not.
TEST(FuzzConsistencyTest, CausalStoreStaysCausal) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzReport report =
        RunFuzzSeed(DefaultFuzzOptions(FuzzStore::kCausal, seed));
    ASSERT_TRUE(report.causal_checked);
    EXPECT_TRUE(report.causal.ok())
        << "seed " << seed << ": " << report.causal.ToString();
  }
}

// CRDTs converge under every schedule and the g-counter's converged value
// equals the number of acked increments.
TEST(FuzzConsistencyTest, CrdtsConvergeToCorrectValues) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzReport counter =
        RunFuzzSeed(DefaultFuzzOptions(FuzzStore::kGCounter, seed));
    ASSERT_TRUE(counter.conv_checked);
    EXPECT_TRUE(counter.convergence.ok())
        << "gcounter seed " << seed << ": " << counter.convergence.ToString();
    EXPECT_TRUE(counter.crdt_value_ok) << "gcounter seed " << seed;

    const FuzzReport orset =
        RunFuzzSeed(DefaultFuzzOptions(FuzzStore::kOrSet, seed));
    ASSERT_TRUE(orset.conv_checked);
    EXPECT_TRUE(orset.convergence.ok())
        << "orset seed " << seed << ": " << orset.convergence.ToString();
  }
}

// Amnesia crashes on: nemesis crashes now really drop volatile state and
// restarts replay each store's journal. Every store must STILL meet the
// claims of its consistency level — durability is part of the contract.
TEST(FuzzConsistencyTest, AllStoresMeetClaimsUnderAmnesiaCrashes) {
  for (FuzzStore store : AllFuzzStores()) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      FuzzOptions options = DefaultFuzzOptions(store, seed);
      options.amnesia = true;
      const FuzzReport report = RunFuzzSeed(options);
      std::string why;
      EXPECT_TRUE(report.MeetsClaims(&why))
          << ToString(store) << " amnesia seed " << seed << ": " << why
          << "\n"
          << report.Summary();
    }
  }
}

// Crash-heavy amnesia schedules (the CI smoke profile): faster fault
// cadence, crashes and partitions only.
TEST(FuzzConsistencyTest, CrashHeavyAmnesiaSchedulesHoldClaims) {
  for (FuzzStore store : AllFuzzStores()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      FuzzOptions options = DefaultFuzzOptions(store, seed);
      options.amnesia = true;
      options.nemesis.allow_loss = false;
      options.nemesis.allow_duplication = false;
      options.nemesis.mean_fault_interval = sim::kSecond;
      const FuzzReport report = RunFuzzSeed(options);
      std::string why;
      EXPECT_TRUE(report.MeetsClaims(&why))
          << ToString(store) << " crash-heavy seed " << seed << ": " << why
          << "\n"
          << report.Summary();
    }
  }
}

// Amnesia runs replay bit-identically too (crash/recovery is part of the
// deterministic event stream, not a side channel).
TEST(FuzzConsistencyTest, AmnesiaReplayIsBitIdentical) {
  for (FuzzStore store : AllFuzzStores()) {
    FuzzOptions options = DefaultFuzzOptions(store, 11);
    options.amnesia = true;
    const FuzzReport a = RunFuzzSeed(options);
    const FuzzReport b = RunFuzzSeed(options);
    EXPECT_EQ(a.Summary(), b.Summary()) << ToString(store);
  }
}

// Hinted-handoff ledger invariant (documented in quorum_store.h): every
// stored hint is eventually delivered, lost to an amnesia crash, or still
// pending — there is no fourth bucket for hints to silently leak into. A
// 10-seed gray+crash sweep (slow/flaky links and slow nodes keep handoff
// targets half-dead, amnesia crashes destroy undelivered hints) pins the
// accounting the resilience benches report.
TEST(FuzzConsistencyTest, HintLedgerBalancesUnderGrayAndCrashFaults) {
  uint64_t total_stored = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzOptions options = DefaultFuzzOptions(FuzzStore::kQuorumWeak, seed);
    options.amnesia = true;
    options.nemesis.allow_loss = false;
    options.nemesis.allow_duplication = false;
    options.nemesis.allow_slow_links = true;
    options.nemesis.allow_flaky_links = true;
    options.nemesis.allow_slow_nodes = true;
    options.nemesis.mean_fault_interval = sim::kSecond;
    const FuzzReport report = RunFuzzSeed(options);
    EXPECT_EQ(report.hints_stored, report.hints_delivered +
                                       report.hints_lost +
                                       report.hints_pending)
        << "seed " << seed << ": stored=" << report.hints_stored
        << " delivered=" << report.hints_delivered
        << " lost=" << report.hints_lost
        << " pending=" << report.hints_pending;
    total_stored += report.hints_stored;
  }
  // The sweep must actually exercise hinted handoff, or the ledger check
  // above is vacuous.
  EXPECT_GT(total_stored, 0u);
}

// Satellite regression: the ledger must stay exact when the hint's TARGET
// leaves the membership mid-run. A hint addressed to a departed node used to
// pend forever (delivery retried against a node that would never answer);
// now an epoch commit redirects it to the key's new owner, so after
// quiescence the pending bucket must be EMPTY — delivered, lost, or
// redirected-and-delivered are the only terminal states. The elastic
// schedule (live adds/removes + rolling restarts + gray links) is exactly
// the one that used to leak.
TEST(FuzzConsistencyTest, HintLedgerBalancesAcrossMembershipChanges) {
  uint64_t total_stored = 0;
  uint64_t total_epochs = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzOptions options = DefaultFuzzOptions(FuzzStore::kQuorumElastic, seed);
    // Sloppy quorums so rolling restarts actually divert writes and store
    // hints; strict mode stores hints only on rare cross-epoch failures.
    options.elastic_sloppy = true;
    options.nemesis.mean_fault_interval = sim::kSecond;
    const FuzzReport report = RunFuzzSeed(options);
    EXPECT_EQ(report.hints_stored, report.hints_delivered +
                                       report.hints_lost +
                                       report.hints_pending)
        << "seed " << seed << ": stored=" << report.hints_stored
        << " delivered=" << report.hints_delivered
        << " lost=" << report.hints_lost
        << " pending=" << report.hints_pending;
    EXPECT_EQ(report.hints_pending, 0u)
        << "seed " << seed << ": hints still pending after quiescence — "
        << "a departed-node hint was parked instead of redirected";
    total_stored += report.hints_stored;
    total_epochs += report.epochs_committed;
  }
  // Non-vacuity: the sweep must actually reconfigure and actually store
  // hints, or the checks above prove nothing.
  EXPECT_GT(total_epochs, 0u);
  EXPECT_GT(total_stored, 0u);
}

// Elastic runs replay bit-identically down to the exported metrics on every
// seed: live joins, migration streams, epoch fences and hint redirects are
// all part of the deterministic event stream, so a failing elastic schedule
// is a usable repro command (`evc_fuzz --store=quorum-elastic --seed=N`).
// The same sweep doubles as the claims check across the reconfiguration
// boundary: convergence and all four session guarantees must hold on every
// seed even while membership churns.
TEST(FuzzConsistencyTest, ElasticReplayIsBitIdenticalAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    std::string metrics_a;
    std::string metrics_b;
    FuzzOptions options = DefaultFuzzOptions(FuzzStore::kQuorumElastic, seed);
    options.capture_metrics_json = &metrics_a;
    const FuzzReport a = RunFuzzSeed(options);
    options.capture_metrics_json = &metrics_b;
    const FuzzReport b = RunFuzzSeed(options);
    EXPECT_EQ(a.Summary(), b.Summary()) << "seed " << seed;
    EXPECT_EQ(metrics_a, metrics_b) << "seed " << seed;
    std::string why;
    EXPECT_TRUE(a.MeetsClaims(&why))
        << "elastic seed " << seed << ": " << why << "\n" << a.Summary();
  }
}

// Edge cache: all four session guarantees hold THROUGH the cache under the
// edge-cache profile's crash + gray interleavings, and the runs really do
// serve reads from cached leases (non-vacuity).
TEST(FuzzConsistencyTest, EdgeCacheKeepsGuaranteesUnderCrashAndGrayFaults) {
  uint64_t total_hits = 0;
  uint64_t total_revokes = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzOptions options = DefaultFuzzOptions(FuzzStore::kEdgeCache, seed);
    // The edge-cache profile (tools/evc_fuzz --profile=edge-cache).
    options.amnesia = true;
    options.nemesis.allow_partitions = false;
    options.nemesis.allow_loss = false;
    options.nemesis.allow_duplication = false;
    options.nemesis.allow_slow_links = true;
    options.nemesis.allow_flaky_links = true;
    options.nemesis.allow_slow_nodes = true;
    options.nemesis.mean_fault_interval = sim::kSecond;
    const FuzzReport report = RunFuzzSeed(options);
    std::string why;
    EXPECT_TRUE(report.MeetsClaims(&why))
        << "edge-cache seed " << seed << ": " << why << "\n"
        << report.Summary();
    ASSERT_TRUE(report.sess_checked);
    EXPECT_TRUE(report.session.ok())
        << "seed " << seed << ": " << report.session.ToString();
    EXPECT_EQ(report.session.cached_read_violations, 0u) << "seed " << seed;
    total_hits += report.cache_hits;
    total_revokes += report.cache_revokes_sent;
  }
  EXPECT_GT(total_hits, 0u) << "no run served a read from cache";
  EXPECT_GT(total_revokes, 0u) << "no run exercised revoke-on-write";
}

// The store-name round trip the replay CLI depends on.
TEST(FuzzConsistencyTest, StoreNamesRoundTrip) {
  for (FuzzStore store : AllFuzzStores()) {
    FuzzStore parsed;
    ASSERT_TRUE(ParseFuzzStore(ToString(store), &parsed)) << ToString(store);
    EXPECT_EQ(parsed, store);
  }
  FuzzStore ignored;
  EXPECT_FALSE(ParseFuzzStore("no-such-store", &ignored));
}

}  // namespace
}  // namespace evc::verify
