#include "replication/quorum_store.h"

#include <gtest/gtest.h>

#include <memory>

namespace evc::repl {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class QuorumStoreTest : public ::testing::Test {
 protected:
  void Build(QuorumConfig config, int servers = 3,
             sim::Time latency = 5 * kMillisecond) {
    sim_ = std::make_unique<sim::Simulator>(99);
    net_ = std::make_unique<sim::Network>(
        sim_.get(), std::make_unique<sim::ConstantLatency>(latency));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    cluster_ = std::make_unique<DynamoCluster>(rpc_.get(), config);
    server_nodes_ = cluster_->AddServers(servers);
    client_ = net_->AddNode();
  }

  // Synchronous-style helpers: issue the op and run the simulation until the
  // callback fires.
  Result<Version> PutSync(const std::string& key, const std::string& value,
                          const VersionVector& ctx = {},
                          int coordinator_index = 0) {
    std::optional<Result<Version>> out;
    cluster_->Put(client_, server_nodes_[coordinator_index], key, value, ctx,
                  [&](Result<Version> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  Result<ReadResult> GetSync(const std::string& key,
                             int coordinator_index = 0) {
    std::optional<Result<ReadResult>> out;
    cluster_->Get(client_, server_nodes_[coordinator_index], key,
                  [&](Result<ReadResult> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<DynamoCluster> cluster_;
  std::vector<sim::NodeId> server_nodes_;
  sim::NodeId client_ = 0;
};

TEST_F(QuorumStoreTest, PutThenGetRoundTrip) {
  Build(QuorumConfig{});
  auto put = PutSync("user:1", "alice");
  ASSERT_TRUE(put.ok());
  auto get = GetSync("user:1");
  ASSERT_TRUE(get.ok());
  ASSERT_EQ(get->versions.size(), 1u);
  EXPECT_EQ(get->versions[0].value, "alice");
  EXPECT_GE(get->replies, cluster_->config().read_quorum);
}

TEST_F(QuorumStoreTest, GetMissingKeyReturnsEmpty) {
  Build(QuorumConfig{});
  auto get = GetSync("never-written");
  ASSERT_TRUE(get.ok());
  EXPECT_TRUE(get->versions.empty());
  EXPECT_TRUE(get->context.empty());
}

TEST_F(QuorumStoreTest, WriteReachesAllNReplicasEventually) {
  Build(QuorumConfig{});
  ASSERT_TRUE(PutSync("k", "v").ok());
  sim_->RunFor(kSecond);
  for (const sim::NodeId node : cluster_->PreferenceList("k")) {
    auto versions = cluster_->storage(node)->Get("k");
    ASSERT_EQ(versions.size(), 1u) << "node " << node;
    EXPECT_EQ(versions[0].value, "v");
  }
  EXPECT_TRUE(cluster_->ReplicasConverged("k"));
}

TEST_F(QuorumStoreTest, CausalOverwriteWithContext) {
  Build(QuorumConfig{});
  ASSERT_TRUE(PutSync("k", "v1").ok());
  auto read = GetSync("k");
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(PutSync("k", "v2", read->context).ok());
  auto read2 = GetSync("k");
  ASSERT_TRUE(read2.ok());
  ASSERT_EQ(read2->versions.size(), 1u);
  EXPECT_EQ(read2->versions[0].value, "v2");
}

TEST_F(QuorumStoreTest, ConcurrentWritesThroughDifferentCoordinatorsSibling) {
  Build(QuorumConfig{});
  // Two blind writes racing through different coordinators.
  std::optional<Result<Version>> r1, r2;
  cluster_->Put(client_, server_nodes_[0], "cart", "milk", {},
                [&](Result<Version> r) { r1 = std::move(r); });
  cluster_->Put(client_, server_nodes_[1], "cart", "eggs", {},
                [&](Result<Version> r) { r2 = std::move(r); });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(r1.has_value() && r1->ok());
  ASSERT_TRUE(r2.has_value() && r2->ok());
  auto read = GetSync("cart");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->versions.size(), 2u);  // both siblings visible
  // Client reconciles and writes back with the merged context.
  ASSERT_TRUE(PutSync("cart", "milk+eggs", read->context).ok());
  auto read2 = GetSync("cart");
  ASSERT_EQ(read2->versions.size(), 1u);
  EXPECT_EQ(read2->versions[0].value, "milk+eggs");
}

TEST_F(QuorumStoreTest, LwwPolicyCollapsesSiblings) {
  QuorumConfig config;
  config.storage.store.conflict_policy = ConflictPolicy::kLastWriterWins;
  Build(config);
  std::optional<Result<Version>> r1, r2;
  cluster_->Put(client_, server_nodes_[0], "cart", "milk", {},
                [&](Result<Version> r) { r1 = std::move(r); });
  cluster_->Put(client_, server_nodes_[1], "cart", "eggs", {},
                [&](Result<Version> r) { r2 = std::move(r); });
  sim_->RunFor(5 * kSecond);
  auto read = GetSync("cart");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->versions.size(), 1u);  // one update silently lost
}

TEST_F(QuorumStoreTest, DeletePropagatesAsTombstone) {
  Build(QuorumConfig{});
  ASSERT_TRUE(PutSync("k", "v").ok());
  auto read = GetSync("k");
  std::optional<Result<Version>> del;
  cluster_->Delete(client_, server_nodes_[0], "k", read->context,
                   [&](Result<Version> r) { del = std::move(r); });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(del.has_value() && del->ok());
  auto read2 = GetSync("k");
  ASSERT_TRUE(read2.ok());
  EXPECT_TRUE(read2->versions.empty());
  // The tombstone context is still there so a later write supersedes it.
  EXPECT_FALSE(read2->context.empty());
}

TEST_F(QuorumStoreTest, StrictQuorumWriteFailsWithoutW) {
  QuorumConfig config;
  config.sloppy = false;
  Build(config);
  // Crash two of the three preference replicas; coordinate via the
  // remaining live one.
  auto pref = cluster_->PreferenceList("k");
  net_->SetNodeUp(pref[1], false);
  net_->SetNodeUp(pref[2], false);
  int coordinator_index = 0;
  for (size_t i = 0; i < server_nodes_.size(); ++i) {
    if (server_nodes_[i] == pref[0]) coordinator_index = static_cast<int>(i);
  }
  auto put = PutSync("k", "v", {}, coordinator_index);
  EXPECT_TRUE(put.status().IsUnavailable() || put.status().IsTimedOut())
      << put.status().ToString();
  EXPECT_GE(cluster_->stats().puts_unavailable, 1u);
}

TEST_F(QuorumStoreTest, StrictQuorumReadFailsWithoutR) {
  QuorumConfig config;
  config.sloppy = false;
  config.read_quorum = 3;
  config.write_quorum = 1;
  Build(config);
  ASSERT_TRUE(PutSync("k", "v").ok());
  auto pref = cluster_->PreferenceList("k");
  net_->SetNodeUp(pref[2], false);
  auto get = GetSync("k");
  EXPECT_TRUE(get.status().IsUnavailable() || get.status().IsTimedOut());
}

TEST_F(QuorumStoreTest, SloppyQuorumSurvivesPreferredFailures) {
  QuorumConfig config;
  config.sloppy = true;
  Build(config, /*servers=*/5);
  cluster_->StartFailureDetection();
  auto pref = cluster_->PreferenceList("k");
  // Coordinator must stay up: pick a server not in the preference list, or
  // the first preferred one; crash the other two preferred replicas.
  net_->SetNodeUp(pref[1], false);
  net_->SetNodeUp(pref[2], false);
  // Unlike the old CanCommunicate oracle, the failure detector needs a few
  // missed heartbeats before it convicts the dead replicas.
  sim_->RunFor(kSecond);
  int coordinator_index = 0;
  for (size_t i = 0; i < server_nodes_.size(); ++i) {
    if (server_nodes_[i] == pref[0]) coordinator_index = static_cast<int>(i);
  }
  auto put = PutSync("k", "v", {}, coordinator_index);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_GE(cluster_->stats().sloppy_diversions, 2u);
  EXPECT_GE(cluster_->stats().hints_stored, 1u);
  EXPECT_GE(cluster_->pending_hints(), 1u);
}

TEST_F(QuorumStoreTest, HintedHandoffDeliversAfterRecovery) {
  QuorumConfig config;
  config.sloppy = true;
  Build(config, /*servers=*/5);
  cluster_->StartFailureDetection();
  auto pref = cluster_->PreferenceList("k");
  net_->SetNodeUp(pref[1], false);
  sim_->RunFor(kSecond);  // heartbeats convict the dead replica
  int coordinator_index = 0;
  for (size_t i = 0; i < server_nodes_.size(); ++i) {
    if (server_nodes_[i] == pref[0]) coordinator_index = static_cast<int>(i);
  }
  cluster_->StartHintDelivery(50 * kMillisecond);
  ASSERT_TRUE(PutSync("k", "v", {}, coordinator_index).ok());
  EXPECT_TRUE(cluster_->storage(pref[1])->Get("k").empty());
  // Recover the preferred node; hint delivery should fill it in.
  net_->SetNodeUp(pref[1], true);
  sim_->RunFor(2 * kSecond);
  auto versions = cluster_->storage(pref[1])->Get("k");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "v");
  EXPECT_GE(cluster_->stats().hints_delivered, 1u);
  EXPECT_EQ(cluster_->pending_hints(), 0u);
}

TEST_F(QuorumStoreTest, ReadRepairFixesStaleReplica) {
  QuorumConfig config;
  config.sloppy = false;
  config.write_quorum = 2;
  config.read_quorum = 3;
  Build(config);
  auto pref = cluster_->PreferenceList("k");
  // One replica misses the write (crashed), W=2 still satisfied.
  net_->SetNodeUp(pref[2], false);
  ASSERT_TRUE(PutSync("k", "v").ok());
  net_->SetNodeUp(pref[2], true);
  EXPECT_TRUE(cluster_->storage(pref[2])->Get("k").empty());
  // A full read triggers repair... but R=3 needs all three: the stale one
  // replies with nothing and gets repaired.
  auto read = GetSync("k");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->repaired);
  sim_->RunFor(kSecond);
  auto fixed = cluster_->storage(pref[2])->Get("k");
  ASSERT_EQ(fixed.size(), 1u);
  EXPECT_EQ(fixed[0].value, "v");
  EXPECT_GE(cluster_->stats().read_repairs, 1u);
  EXPECT_TRUE(cluster_->ReplicasConverged("k"));
}

TEST_F(QuorumStoreTest, PreferenceListIsDeterministicAndDistinct) {
  Build(QuorumConfig{}, /*servers=*/10);
  const auto a = cluster_->PreferenceList("some-key");
  const auto b = cluster_->PreferenceList("some-key");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_NE(a[0], a[1]);
  EXPECT_NE(a[1], a[2]);
  EXPECT_NE(a[0], a[2]);
}

TEST_F(QuorumStoreTest, ManyKeysManyClientsConverge) {
  Build(QuorumConfig{}, /*servers=*/5);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    cluster_->Put(client_, server_nodes_[i % 5], "key" + std::to_string(i),
                  "value" + std::to_string(i), {},
                  [&](Result<Version> r) {
                    ASSERT_TRUE(r.ok());
                    ++completed;
                  });
  }
  sim_->RunFor(10 * kSecond);
  EXPECT_EQ(completed, 50);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(cluster_->ReplicasConverged("key" + std::to_string(i)));
  }
}

TEST_F(QuorumStoreTest, StatsCountersAdvance) {
  Build(QuorumConfig{});
  ASSERT_TRUE(PutSync("k", "v").ok());
  ASSERT_TRUE(GetSync("k").ok());
  EXPECT_EQ(cluster_->stats().puts_ok, 1u);
  EXPECT_EQ(cluster_->stats().gets_ok, 1u);
  EXPECT_EQ(cluster_->stats().puts_unavailable, 0u);
}

// Table-4 style sweep: with R+W > N every read after a completed write
// returns the written value; the property is checked for every (R, W).
class QuorumIntersectionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QuorumIntersectionTest, ReadSeesCompletedWriteWhenRWExceedN) {
  const int r = std::get<0>(GetParam());
  const int w = std::get<1>(GetParam());
  sim::Simulator sim(7);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             1 * kMillisecond, 20 * kMillisecond));
  sim::Rpc rpc(&net);
  QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = r;
  config.write_quorum = w;
  config.sloppy = false;
  DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(3);
  const sim::NodeId client = net.AddNode();

  for (int i = 0; i < 20; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string value = "value" + std::to_string(i);
    bool put_done = false;
    cluster.Put(client, servers[i % 3], key, value, {},
                [&](Result<Version> res) {
                  ASSERT_TRUE(res.ok());
                  put_done = true;
                });
    sim.RunFor(kSecond);
    ASSERT_TRUE(put_done);
    if (r + w > 3) {
      // Quorum intersection: the read quorum must overlap the write quorum.
      std::optional<ReadResult> read;
      cluster.Get(client, servers[(i + 1) % 3], key,
                  [&](Result<ReadResult> res) {
                    ASSERT_TRUE(res.ok());
                    read = std::move(res).value();
                  });
      sim.RunFor(kSecond);
      ASSERT_TRUE(read.has_value());
      ASSERT_EQ(read->versions.size(), 1u) << "R=" << r << " W=" << w;
      EXPECT_EQ(read->versions[0].value, value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, QuorumIntersectionTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace evc::repl
