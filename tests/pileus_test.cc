#include "sla/pileus.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace evc::sla {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// Topology: primary in DC0 (US-East), secondary in DC2 (Asia). Clients
// placed near or far exercise the SLA-driven replica selection.
class PileusTest : public ::testing::Test {
 protected:
  void Build(uint64_t seed = 41) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    auto latency = std::make_unique<sim::WanMatrixLatency>(
        sim::WanMatrixLatency::ThreeRegionBaseUs());
    wan_ = latency.get();
    net_ = std::make_unique<sim::Network>(sim_.get(), std::move(latency));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    cluster_ = std::make_unique<PileusCluster>(rpc_.get(), PileusOptions{});
    primary_ = cluster_->AddPrimary();
    wan_->AssignNode(primary_, 0);
    secondary_ = cluster_->AddSecondary();
    wan_->AssignNode(secondary_, 2);
    cluster_->Start();
  }

  sim::NodeId MakeClientNode(int dc) {
    const sim::NodeId node = net_->AddNode();
    wan_->AssignNode(node, dc);
    return node;
  }

  void PutSync(sim::NodeId client, const std::string& key,
               const std::string& value) {
    std::optional<Result<uint64_t>> out;
    cluster_->Put(client, key, value,
                  [&](Result<uint64_t> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value() && out->ok());
  }

  Result<SlaReadResult> GetSync(PileusClient* client, const std::string& key) {
    std::optional<Result<SlaReadResult>> out;
    client->Get(key, [&](Result<SlaReadResult> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  void ProbeSync(PileusClient* client) {
    bool done = false;
    client->Probe("probe-key", [&] { done = true; });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(done);
  }

  // The paper's flagship SLA shape: prefer fast+strong, degrade to bounded,
  // catch-all eventual.
  Sla StandardSla() {
    return Sla{
        {50 * kMillisecond, ReadConsistency::kStrong, 0, 1.0},
        {100 * kMillisecond, ReadConsistency::kBounded, 500 * kMillisecond,
         0.6},
        {800 * kMillisecond, ReadConsistency::kEventual, 0, 0.2},
    };
  }

  std::unique_ptr<sim::Simulator> sim_;
  sim::WanMatrixLatency* wan_ = nullptr;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<PileusCluster> cluster_;
  sim::NodeId primary_ = 0;
  sim::NodeId secondary_ = 0;
};

TEST_F(PileusTest, WriteThenStrongReadAtPrimary) {
  Build();
  const sim::NodeId writer = MakeClientNode(0);
  PutSync(writer, "k", "v");
  PileusClient reader(cluster_.get(), sim_.get(), MakeClientNode(0),
                      StandardSla());
  ProbeSync(&reader);
  auto read = GetSync(&reader, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->found);
  EXPECT_EQ(read->value, "v");
}

TEST_F(PileusTest, SecondariesCatchUpAfterSyncInterval) {
  Build();
  const sim::NodeId writer = MakeClientNode(0);
  PutSync(writer, "k", "v");
  sim_->RunFor(2 * kSecond);  // > sync_interval + WAN latency
  EXPECT_GT(cluster_->HighTimeOf(secondary_), 0);
  // A raw read at the secondary sees the write.
  std::optional<Result<PileusCluster::RawRead>> raw;
  cluster_->RawGet(writer, secondary_, "k",
                   [&](Result<PileusCluster::RawRead> r) {
                     raw = std::move(r);
                   });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(raw.has_value() && raw->ok());
  EXPECT_TRUE((*raw)->found);
  EXPECT_EQ((*raw)->value, "v");
}

TEST_F(PileusTest, NearClientGetsTopUtility) {
  Build();
  const sim::NodeId writer = MakeClientNode(0);
  PutSync(writer, "k", "v");
  sim_->RunFor(2 * kSecond);
  // Client co-located with the primary: strong reads within 50 ms are easy.
  PileusClient near_client(cluster_.get(), sim_.get(), MakeClientNode(0),
                           StandardSla());
  ProbeSync(&near_client);
  double total = 0;
  for (int i = 0; i < 10; ++i) {
    auto read = GetSync(&near_client, "k");
    ASSERT_TRUE(read.ok());
    total += read->delivered_utility;
  }
  EXPECT_GT(total / 10, 0.9);  // nearly always the 1.0-utility strong row
}

TEST_F(PileusTest, FarClientDegradesGracefully) {
  Build();
  const sim::NodeId writer = MakeClientNode(0);
  PutSync(writer, "k", "v");
  sim_->RunFor(5 * kSecond);  // let the secondary be fresh
  // Client in Asia (DC2): the primary is ~180 ms RTT away — the strong row
  // (50 ms) is unreachable, but the local secondary serves bounded/eventual.
  PileusClient far_client(cluster_.get(), sim_.get(), MakeClientNode(2),
                          StandardSla());
  ProbeSync(&far_client);
  double total = 0;
  int local_reads = 0;
  for (int i = 0; i < 10; ++i) {
    auto read = GetSync(&far_client, "k");
    ASSERT_TRUE(read.ok());
    total += read->delivered_utility;
    if (read->observed_latency < 50 * kMillisecond) ++local_reads;
  }
  const double mean_utility = total / 10;
  EXPECT_GT(mean_utility, 0.1);   // never zero: catch-all row
  EXPECT_LT(mean_utility, 0.95);  // but can't match the near client
  EXPECT_GT(local_reads, 5);      // served mostly by the local secondary
}

TEST_F(PileusTest, StrongOnlySlaForcesPrimaryReads) {
  Build();
  const sim::NodeId writer = MakeClientNode(0);
  PutSync(writer, "k", "v");
  sim_->RunFor(2 * kSecond);
  Sla strong_only{{kSecond, ReadConsistency::kStrong, 0, 1.0}};
  PileusClient far_client(cluster_.get(), sim_.get(), MakeClientNode(2),
                          strong_only);
  ProbeSync(&far_client);
  auto read = GetSync(&far_client, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "v");
  // Latency shows the WAN round trip to the primary.
  EXPECT_GT(read->observed_latency, 100 * kMillisecond);
  EXPECT_EQ(read->delivered_row, 0);
}

TEST_F(PileusTest, DeliveredRowVerifiedAgainstActuals) {
  Build();
  const sim::NodeId writer = MakeClientNode(0);
  PutSync(writer, "k", "v1");
  // Immediately read at the secondary with a tight staleness bound: the
  // secondary has not synced yet, so the bounded row cannot be delivered.
  Sla bounded_then_eventual{
      {kSecond, ReadConsistency::kBounded, 50 * kMillisecond, 1.0},
      {2 * kSecond, ReadConsistency::kEventual, 0, 0.1},
  };
  PileusClient far_client(cluster_.get(), sim_.get(), MakeClientNode(2),
                          bounded_then_eventual);
  ProbeSync(&far_client);
  PutSync(writer, "k", "v2");
  auto read = GetSync(&far_client, "k");
  ASSERT_TRUE(read.ok());
  if (read->observed_latency < 50 * kMillisecond) {
    // Served locally by a stale secondary: only the eventual row delivered.
    EXPECT_EQ(read->delivered_row, 1);
    EXPECT_DOUBLE_EQ(read->delivered_utility, 0.1);
  }
}

TEST_F(PileusTest, MonitorTracksRtt) {
  Build();
  PileusClient client(cluster_.get(), sim_.get(), MakeClientNode(2),
                      StandardSla());
  EXPECT_EQ(client.RttEstimate(primary_), 0);
  ProbeSync(&client);
  // Asia -> US-East RTT is ~180 ms; Asia -> Asia is sub-ms.
  EXPECT_GT(client.RttEstimate(primary_), 100 * kMillisecond);
  EXPECT_LT(client.RttEstimate(secondary_), 10 * kMillisecond);
}

TEST_F(PileusTest, StatsAccumulate) {
  Build();
  const sim::NodeId writer = MakeClientNode(0);
  PutSync(writer, "k", "v");
  sim_->RunFor(2 * kSecond);
  PileusClient client(cluster_.get(), sim_.get(), MakeClientNode(0),
                      StandardSla());
  ProbeSync(&client);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(GetSync(&client, "k").ok());
  }
  EXPECT_EQ(client.stats().reads, 5u);
  EXPECT_EQ(client.stats().delivered_utility.count(), 5u);
}

}  // namespace
}  // namespace evc::sla
