#include "crdt/geo_broadcast.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "crdt/op_crdts.h"

namespace evc::crdt {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class GeoBroadcastTest : public ::testing::Test {
 protected:
  void Build(int members, bool causal, uint64_t seed = 9,
             double jitter = 1.0) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    auto latency = std::make_unique<sim::WanMatrixLatency>(
        sim::WanMatrixLatency::ThreeRegionBaseUs(), jitter);
    auto* wan = latency.get();
    net_ = std::make_unique<sim::Network>(sim_.get(), std::move(latency));
    GeoBroadcastOptions options;
    options.causal = causal;
    gb_ = std::make_unique<GeoBroadcast>(net_.get(), options);
    for (int i = 0; i < members; ++i) {
      const sim::NodeId node = net_->AddNode();
      wan->AssignNode(node, i % 3);
      nodes_.push_back(node);
      sets_.emplace_back(static_cast<uint32_t>(i));
    }
    for (int i = 0; i < members; ++i) {
      gb_->AddMember(nodes_[i], [this, i](uint32_t, const sim::Payload& op) {
        sets_[i].Apply(op.Peek<OpOrSet::Op>());
      });
    }
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<GeoBroadcast> gb_;
  std::vector<sim::NodeId> nodes_;
  std::vector<OpOrSet> sets_;
};

TEST_F(GeoBroadcastTest, SingleOpReachesEveryone) {
  Build(3, /*causal=*/true);
  gb_->Publish(0, sets_[0].MakeAdd("x"));
  sim_->RunFor(2 * kSecond);
  for (const auto& s : sets_) EXPECT_TRUE(s.Contains("x"));
  for (uint32_t i = 0; i < 3; ++i) EXPECT_EQ(gb_->delivered_at(i), 1u);
}

TEST_F(GeoBroadcastTest, CausalDeliveryPreventsZombieElements) {
  // The zombie anomaly: origin adds x then removes it (remove observed the
  // add). Without causal order a replica can apply the remove first (no-op)
  // and then the add — x resurrects there forever. With causal order every
  // replica ends with x absent.
  Build(3, /*causal=*/true);
  for (int round = 0; round < 50; ++round) {
    const std::string item = "item" + std::to_string(round);
    gb_->Publish(0, sets_[0].MakeAdd(item));
    gb_->Publish(0, sets_[0].MakeRemove(item));
  }
  sim_->RunFor(5 * kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sets_[i].size(), 0u) << "replica " << i;
    EXPECT_EQ(gb_->PendingAt(i), 0u);
  }
}

TEST_F(GeoBroadcastTest, WithoutCausalDeliveryZombiesAppear) {
  // Same script, causal off, heavy jitter: at least one add overtakes its
  // remove somewhere and leaves a permanent zombie.
  Build(3, /*causal=*/false, /*seed=*/4, /*jitter=*/3.0);
  for (int round = 0; round < 50; ++round) {
    const std::string item = "item" + std::to_string(round);
    gb_->Publish(0, sets_[0].MakeAdd(item));
    gb_->Publish(0, sets_[0].MakeRemove(item));
  }
  sim_->RunFor(10 * kSecond);
  size_t zombies = sets_[1].size() + sets_[2].size();
  EXPECT_GT(zombies, 0u) << "expected at least one resurrected element";
  EXPECT_EQ(sets_[0].size(), 0u);  // the origin is always clean
}

TEST_F(GeoBroadcastTest, CrossOriginCausalityRespected) {
  // Member 0 adds; member 1 (after delivering the add) removes; member 2
  // must apply them in that order even if the remove's message wins the
  // race.
  Build(3, /*causal=*/true, /*seed=*/12, /*jitter=*/2.0);
  for (int round = 0; round < 30; ++round) {
    const std::string item = "it" + std::to_string(round);
    gb_->Publish(0, sets_[0].MakeAdd(item));
    // Wait until member 1 has the element, then remove from there.
    while (!sets_[1].Contains(item) && sim_->Step()) {
    }
    ASSERT_TRUE(sets_[1].Contains(item));
    gb_->Publish(1, sets_[1].MakeRemove(item));
  }
  sim_->RunFor(10 * kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sets_[i].size(), 0u) << "replica " << i;
  }
}

TEST_F(GeoBroadcastTest, ConcurrentOriginsConverge) {
  Build(3, /*causal=*/true, /*seed=*/21);
  Rng rng(5);
  const char* items[] = {"a", "b", "c"};
  for (int step = 0; step < 120; ++step) {
    const uint32_t origin = static_cast<uint32_t>(rng.NextBounded(3));
    const std::string item = items[rng.NextBounded(3)];
    if (rng.NextBool(0.6)) {
      gb_->Publish(origin, sets_[origin].MakeAdd(item));
    } else {
      gb_->Publish(origin, sets_[origin].MakeRemove(item));
    }
    if (rng.NextBool(0.3)) sim_->RunFor(20 * kMillisecond);
  }
  sim_->RunFor(10 * kSecond);
  EXPECT_TRUE(sets_[0] == sets_[1]);
  EXPECT_TRUE(sets_[1] == sets_[2]);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(gb_->delivered_at(i), 120u);
    EXPECT_EQ(gb_->PendingAt(i), 0u);
  }
}

TEST_F(GeoBroadcastTest, DuplicatedMessagesDeliveredOnce) {
  Build(2, /*causal=*/true, /*seed=*/31, /*jitter=*/0.05);
  net_->set_duplicate_rate(1.0);  // every message duplicated
  for (int i = 0; i < 10; ++i) {
    gb_->Publish(0, sets_[0].MakeAdd("k" + std::to_string(i)));
  }
  sim_->RunFor(5 * kSecond);
  EXPECT_EQ(gb_->delivered_at(1), 10u);  // not 20
  EXPECT_EQ(sets_[1].size(), 10u);
  EXPECT_TRUE(sets_[0] == sets_[1]);
}

}  // namespace
}  // namespace evc::crdt
