#include "verify/linearizability.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "consensus/paxos.h"
#include "replication/quorum_store.h"

namespace evc::verify {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// ---------------------------------------------------------------------------
// Unit histories
// ---------------------------------------------------------------------------

TEST(LinearizabilityTest, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(CheckLinearizable({}).linearizable);
}

TEST(LinearizabilityTest, SequentialWriteThenRead) {
  EXPECT_TRUE(CheckLinearizable({
                                    Write("a", 0, 10),
                                    Read("a", 20, 30),
                                })
                  .linearizable);
}

TEST(LinearizabilityTest, StaleReadAfterWriteCompletes) {
  // Write(a) wholly precedes Write(b) wholly precedes Read(a): not
  // linearizable (the read must see b).
  EXPECT_FALSE(CheckLinearizable({
                                     Write("a", 0, 10),
                                     Write("b", 20, 30),
                                     Read("a", 40, 50),
                                 })
                   .linearizable);
}

TEST(LinearizabilityTest, ConcurrentWriteMayOrMayNotBeSeen) {
  // Read overlaps Write(b): both Read=a and Read=b are linearizable.
  EXPECT_TRUE(CheckLinearizable({
                                    Write("a", 0, 10),
                                    Write("b", 20, 40),
                                    Read("a", 25, 35),
                                })
                  .linearizable);
  EXPECT_TRUE(CheckLinearizable({
                                    Write("a", 0, 10),
                                    Write("b", 20, 40),
                                    Read("b", 25, 35),
                                })
                  .linearizable);
}

TEST(LinearizabilityTest, ReadNotFoundBeforeAnyWrite) {
  EXPECT_TRUE(CheckLinearizable({
                                    ReadNotFound(0, 5),
                                    Write("a", 10, 20),
                                    Read("a", 30, 40),
                                })
                  .linearizable);
}

TEST(LinearizabilityTest, NotFoundAfterCompletedWriteIsIllegal) {
  EXPECT_FALSE(CheckLinearizable({
                                     Write("a", 0, 10),
                                     ReadNotFound(20, 30),
                                 })
                   .linearizable);
}

TEST(LinearizabilityTest, ReadOfNeverWrittenValueIsIllegal) {
  EXPECT_FALSE(CheckLinearizable({
                                     Write("a", 0, 10),
                                     Read("ghost", 20, 30),
                                 })
                   .linearizable);
}

TEST(LinearizabilityTest, NewOldInversionRejected) {
  // Two sequential reads observing b then a, where a precedes b: the
  // classic monotonicity violation.
  EXPECT_FALSE(CheckLinearizable({
                                     Write("a", 0, 10),
                                     Write("b", 15, 25),
                                     Read("b", 30, 40),
                                     Read("a", 50, 60),
                                 })
                   .linearizable);
}

TEST(LinearizabilityTest, InversionAllowedWhenReadsOverlap) {
  // If the two reads are concurrent with each other AND with Write(b),
  // read-b/read-a can both linearize (b's point between them).
  EXPECT_TRUE(CheckLinearizable({
                                    Write("a", 0, 10),
                                    Write("b", 15, 60),
                                    Read("b", 20, 55),
                                    Read("a", 21, 54),
                                })
                  .linearizable);
}

TEST(LinearizabilityTest, InitialValueRespected) {
  CheckOptions options;
  options.initial_present = true;
  options.initial_value = "boot";
  EXPECT_TRUE(CheckLinearizable({Read("boot", 0, 5)}, options).linearizable);
  EXPECT_FALSE(CheckLinearizable({ReadNotFound(0, 5)}, options).linearizable);
}

TEST(LinearizabilityTest, LargerConcurrentHistory) {
  // Three writers and interleaved readers, all concurrent: some valid
  // order exists.
  std::vector<Operation> history = {
      Write("x", 0, 100), Write("y", 0, 100), Write("z", 0, 100),
      Read("y", 10, 90),  Read("z", 20, 95),  Read("z", 30, 99),
  };
  const CheckResult result = CheckLinearizable(history);
  EXPECT_TRUE(result.linearizable);
  EXPECT_FALSE(result.exhausted);
}

TEST(LinearizabilityTest, ExhaustedBudgetClaimsNoVerdict) {
  // A fully concurrent history (every op overlaps every other) maximizes
  // the search frontier; with a 1-state budget the checker must give up
  // and say so rather than report a verdict either way.
  std::vector<Operation> history;
  for (int i = 0; i < 8; ++i) {
    history.push_back(Write("w" + std::to_string(i), 0, 1000));
    history.push_back(Read("w" + std::to_string(7 - i), 0, 1000));
  }
  CheckOptions options;
  options.max_states = 1;
  const CheckResult result = CheckLinearizable(history, options);
  EXPECT_TRUE(result.exhausted);
  // Inconclusive: linearizable defaults to false but exhausted flags that
  // no verdict was reached — callers (the fuzzer included) must check it.
  EXPECT_FALSE(result.linearizable);
  EXPECT_LE(result.states_explored, 1u + history.size());

  // The same history with an ample budget resolves conclusively.
  CheckOptions ample;
  ample.max_states = 1u << 22;
  const CheckResult full = CheckLinearizable(history, ample);
  EXPECT_FALSE(full.exhausted);
  EXPECT_TRUE(full.linearizable);
}

// ---------------------------------------------------------------------------
// Integration: record real protocol histories and check them.
// ---------------------------------------------------------------------------

struct Recorder {
  std::vector<Operation> history;
  int pending = 0;
};

TEST(LinearizabilityIntegrationTest, PaxosHistoriesAreLinearizable) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    sim::Simulator sim(seed);
    sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                               2 * kMillisecond, 12 * kMillisecond));
    sim::Rpc rpc(&net);
    consensus::PaxosCluster cluster(&rpc, consensus::PaxosOptions{});
    auto servers = cluster.AddServers(3);
    std::vector<std::unique_ptr<consensus::PaxosKvClient>> clients;
    for (int c = 0; c < 3; ++c) {
      const sim::NodeId node = net.AddNode();
      clients.push_back(std::make_unique<consensus::PaxosKvClient>(
          &cluster, &sim, node, servers));
    }
    cluster.Start();
    sim.RunFor(kSecond);

    Recorder rec;
    Rng rng(seed * 17);
    // 14 concurrent ops from 3 clients on one key, fired in bursts.
    for (int i = 0; i < 14; ++i) {
      auto& client = *clients[i % 3];
      const int64_t invoke = sim.Now();
      ++rec.pending;
      if (rng.NextBool(0.5)) {
        const std::string value = "v" + std::to_string(i);
        client.Put("reg", value, [&rec, value, invoke,
                                  &sim](Result<uint64_t> r) {
          --rec.pending;
          if (r.ok()) rec.history.push_back(Write(value, invoke, sim.Now()));
        });
      } else {
        client.Get("reg", [&rec, invoke, &sim](Result<std::string> r) {
          --rec.pending;
          if (r.ok()) {
            rec.history.push_back(Read(*r, invoke, sim.Now()));
          } else if (r.status().IsNotFound()) {
            rec.history.push_back(ReadNotFound(invoke, sim.Now()));
          }
        });
      }
      if (rng.NextBool(0.4)) sim.RunFor(30 * kMillisecond);
    }
    sim.RunFor(30 * kSecond);
    EXPECT_EQ(rec.pending, 0);
    const CheckResult result = CheckLinearizable(rec.history);
    EXPECT_TRUE(result.linearizable)
        << "seed " << seed << ": paxos produced a non-linearizable history "
        << "of " << rec.history.size() << " ops";
    EXPECT_FALSE(result.exhausted);
  }
}

TEST(LinearizabilityIntegrationTest, EventualStoreViolatesLinearizability) {
  // R=W=1 with a replica missing writes: a read that lands on the stale
  // replica after a newer write completed is a linearizability violation
  // the checker must flag.
  sim::Simulator sim(5);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 20 * kMillisecond));
  sim::Rpc rpc(&net);
  repl::QuorumConfig config;
  config.replication_factor = 3;
  config.read_quorum = 1;
  config.write_quorum = 1;
  config.sloppy = false;
  repl::DynamoCluster cluster(&rpc, config);
  auto servers = cluster.AddServers(3);
  const sim::NodeId client = net.AddNode();
  const auto pref = cluster.PreferenceList("reg");

  Recorder rec;
  bool found_violation = false;
  for (uint64_t round = 0; round < 20 && !found_violation; ++round) {
    rec.history.clear();
    // Write v1 everywhere, then v2 while one replica is down, then read
    // with R=1 repeatedly: some read returns v1 after v2's write completed.
    auto put = [&](const std::string& value) {
      const int64_t invoke = sim.Now();
      bool done = false;
      cluster.Put(client, pref[0], "reg", value, {},
                  [&](Result<Version> r) {
                    done = true;
                    if (r.ok()) {
                      rec.history.push_back(Write(value, invoke, sim.Now()));
                    }
                  });
      sim.RunFor(2 * kSecond);
      EVC_CHECK(done);
    };
    put("v1." + std::to_string(round));
    sim.RunFor(kSecond);
    const sim::NodeId victim = pref[2] == pref[0] ? pref[1] : pref[2];
    net.SetNodeUp(victim, false);
    put("v2." + std::to_string(round));
    net.SetNodeUp(victim, true);
    for (int i = 0; i < 4; ++i) {
      const int64_t invoke = sim.Now();
      bool done = false;
      cluster.Get(client, pref[0], "reg", [&](Result<repl::ReadResult> r) {
        done = true;
        if (r.ok() && !r->versions.empty()) {
          // R=1 returns whatever the fastest replica had; record the
          // newest-timestamp sibling like the facade would.
          const Version* best = &r->versions[0];
          for (const Version& v : r->versions) {
            if (best->lww_ts < v.lww_ts) best = &v;
          }
          rec.history.push_back(Read(best->value, invoke, sim.Now()));
        }
      });
      sim.RunFor(2 * kSecond);
      EVC_CHECK(done);
    }
    const CheckResult result = CheckLinearizable(rec.history);
    if (!result.linearizable) found_violation = true;
  }
  EXPECT_TRUE(found_violation)
      << "20 rounds of stale-replica reads never violated linearizability "
      << "(expected at least one stale R=1 read)";
}

}  // namespace
}  // namespace evc::verify
