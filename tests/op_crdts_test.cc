#include "crdt/op_crdts.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "crdt/causal_bus.h"
#include "crdt/ormap.h"

namespace evc::crdt {
namespace {

// ---------------------------------------------------------------------------
// CausalBus delivery contract
// ---------------------------------------------------------------------------

TEST(CausalBusTest, LocalEchoIsImmediate) {
  CausalBus<int> bus(2);
  std::vector<int> got;
  bus.OnDeliver(0, [&](uint32_t, const int& op) { got.push_back(op); });
  bus.Broadcast(0, 7);
  EXPECT_EQ(got, (std::vector<int>{7}));
}

TEST(CausalBusTest, RemoteDeliveryOnPull) {
  CausalBus<int> bus(2);
  std::vector<int> got;
  bus.OnDeliver(1, [&](uint32_t, const int& op) { got.push_back(op); });
  bus.Broadcast(0, 1);
  bus.Broadcast(0, 2);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(bus.Pull(1), 2u);
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(CausalBusTest, FifoFromSingleOrigin) {
  CausalBus<int> bus(2);
  std::vector<int> got;
  bus.OnDeliver(1, [&](uint32_t, const int& op) { got.push_back(op); });
  for (int i = 0; i < 10; ++i) bus.Broadcast(0, i);
  bus.Pull(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

TEST(CausalBusTest, CausalOrderAcrossOrigins) {
  // r0 broadcasts A; r1 delivers A then broadcasts B (B causally after A).
  // r2 must deliver A before B even though it pulls in one batch.
  CausalBus<std::string> bus(3);
  std::vector<std::string> at2;
  bus.OnDeliver(1, [&](uint32_t, const std::string&) {});
  bus.OnDeliver(2,
                [&](uint32_t, const std::string& op) { at2.push_back(op); });
  bus.Broadcast(0, "A");
  bus.Pull(1);            // r1 sees A
  bus.Broadcast(1, "B");  // causally depends on A
  bus.PullAll();
  ASSERT_EQ(at2.size(), 2u);
  EXPECT_EQ(at2[0], "A");
  EXPECT_EQ(at2[1], "B");
}

TEST(CausalBusTest, DependentOpWaitsForDependency) {
  CausalBus<std::string> bus(3);
  std::vector<std::string> at2;
  bus.OnDeliver(1, [](uint32_t, const std::string&) {});
  bus.OnDeliver(2,
                [&](uint32_t, const std::string& op) { at2.push_back(op); });
  bus.Broadcast(0, "A");
  bus.Pull(1);
  bus.Broadcast(1, "B");
  // r2 somehow tries to pull only r1's op first: it must stay pending
  // because A hasn't been delivered at r2 yet. Pull(2, 1) delivers A (the
  // only ready op).
  EXPECT_EQ(bus.Pull(2, 1), 1u);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0], "A");
  EXPECT_EQ(bus.Pull(2), 1u);
  EXPECT_EQ(at2[1], "B");
}

TEST(CausalBusTest, PendingCountTracksBacklog) {
  CausalBus<int> bus(2);
  bus.OnDeliver(1, [](uint32_t, const int&) {});
  bus.Broadcast(0, 1);
  EXPECT_EQ(bus.PendingAt(1), 1u);
  bus.Pull(1);
  EXPECT_EQ(bus.PendingAt(1), 0u);
}

// ---------------------------------------------------------------------------
// OpCounter
// ---------------------------------------------------------------------------

TEST(OpCounterTest, ConvergesUnderAnyDeliveryOrder) {
  CausalBus<OpCounter::Op> bus(3);
  OpCounter counters[3];
  for (uint32_t r = 0; r < 3; ++r) {
    bus.OnDeliver(r, [&counters, r](uint32_t, const OpCounter::Op& op) {
      counters[r].Apply(op);
    });
  }
  bus.Broadcast(0, OpCounter::MakeIncrement(5));
  bus.Broadcast(1, OpCounter::MakeIncrement(-2));
  bus.Broadcast(2, OpCounter::MakeIncrement(10));
  bus.PullAll();
  for (const auto& c : counters) EXPECT_EQ(c.Value(), 13);
}

TEST(OpCounterTest, InterleavedIncrementsAllCounted) {
  CausalBus<OpCounter::Op> bus(2);
  OpCounter counters[2];
  for (uint32_t r = 0; r < 2; ++r) {
    bus.OnDeliver(r, [&counters, r](uint32_t, const OpCounter::Op& op) {
      counters[r].Apply(op);
    });
  }
  Rng rng(5);
  int64_t expected = 0;
  for (int i = 0; i < 200; ++i) {
    const int64_t delta = rng.NextInRange(-3, 3);
    expected += delta;
    bus.Broadcast(static_cast<uint32_t>(rng.NextBounded(2)),
                  OpCounter::MakeIncrement(delta));
    if (rng.NextBool(0.2)) bus.Pull(rng.NextBounded(2));
  }
  bus.PullAll();
  EXPECT_EQ(counters[0].Value(), expected);
  EXPECT_EQ(counters[1].Value(), expected);
}

// ---------------------------------------------------------------------------
// OpOrSet (requires the bus's causal order)
// ---------------------------------------------------------------------------

struct OrSetHarness {
  explicit OrSetHarness(uint32_t n) : bus(n) {
    for (uint32_t r = 0; r < n; ++r) {
      sets.emplace_back(r);
    }
    for (uint32_t r = 0; r < n; ++r) {
      bus.OnDeliver(r, [this, r](uint32_t, const OpOrSet::Op& op) {
        sets[r].Apply(op);
      });
    }
  }
  void Add(uint32_t r, const std::string& e) {
    bus.Broadcast(r, sets[r].MakeAdd(e));
  }
  void Remove(uint32_t r, const std::string& e) {
    bus.Broadcast(r, sets[r].MakeRemove(e));
  }
  CausalBus<OpOrSet::Op> bus;
  std::vector<OpOrSet> sets;
};

TEST(OpOrSetTest, AddRemoveLocal) {
  OrSetHarness h(2);
  h.Add(0, "x");
  EXPECT_TRUE(h.sets[0].Contains("x"));
  h.Remove(0, "x");
  EXPECT_FALSE(h.sets[0].Contains("x"));
  h.bus.PullAll();
  EXPECT_FALSE(h.sets[1].Contains("x"));
}

TEST(OpOrSetTest, ConcurrentAddSurvivesRemove) {
  OrSetHarness h(2);
  h.Add(0, "beer");
  h.bus.PullAll();
  // Concurrent: r0 removes (observing r0's tag), r1 adds a fresh tag.
  h.Remove(0, "beer");
  h.Add(1, "beer");
  h.bus.PullAll();
  EXPECT_TRUE(h.sets[0].Contains("beer"));
  EXPECT_TRUE(h.sets[1].Contains("beer"));
  EXPECT_TRUE(h.sets[0] == h.sets[1]);
}

TEST(OpOrSetTest, RandomScriptConverges) {
  Rng rng(11);
  OrSetHarness h(3);
  const char* items[] = {"a", "b", "c"};
  for (int step = 0; step < 300; ++step) {
    const uint32_t r = static_cast<uint32_t>(rng.NextBounded(3));
    const std::string item = items[rng.NextBounded(3)];
    if (rng.NextBool(0.55)) {
      h.Add(r, item);
    } else {
      h.Remove(r, item);
    }
    if (rng.NextBool(0.3)) h.bus.Pull(rng.NextBounded(3), rng.NextBounded(5));
  }
  h.bus.PullAll();
  EXPECT_TRUE(h.sets[0] == h.sets[1]);
  EXPECT_TRUE(h.sets[1] == h.sets[2]);
}

// ---------------------------------------------------------------------------
// OrMap
// ---------------------------------------------------------------------------

LamportTimestamp Ts(uint64_t c, uint32_t node = 0) {
  return LamportTimestamp{c, node};
}

TEST(OrMapTest, PutGetRemove) {
  OrMap m(0);
  m.Put("k", "v", Ts(1));
  EXPECT_EQ(m.Get("k"), std::optional<std::string>("v"));
  m.Remove("k");
  EXPECT_EQ(m.Get("k"), std::nullopt);
  EXPECT_FALSE(m.Contains("k"));
}

TEST(OrMapTest, LwwValueOnConcurrentPuts) {
  OrMap a(0), b(1);
  a.Put("k", "from-a", Ts(5, 0));
  b.Put("k", "from-b", Ts(6, 1));
  a.Merge(b);
  b.Merge(a);
  EXPECT_EQ(a.Get("k"), std::optional<std::string>("from-b"));
  EXPECT_TRUE(a == b);
}

TEST(OrMapTest, ConcurrentPutSurvivesRemove) {
  OrMap a(0), b(1);
  a.Put("k", "v1", Ts(1, 0));
  b.Merge(a);
  a.Remove("k");
  b.Put("k", "v2", Ts(2, 1));  // concurrent re-put
  a.Merge(b);
  b.Merge(a);
  EXPECT_EQ(a.Get("k"), std::optional<std::string>("v2"));
  EXPECT_TRUE(a == b);
}

TEST(OrMapTest, GarbageCollectDropsDeadRegisters) {
  OrMap m(0);
  m.Put("k", "v", Ts(1));
  m.Remove("k");
  EXPECT_EQ(m.GarbageCollect(), 1u);
  EXPECT_EQ(m.Get("k"), std::nullopt);
}

TEST(OrMapTest, KeysListsLiveOnly) {
  OrMap m(0);
  m.Put("a", "1", Ts(1));
  m.Put("b", "2", Ts(2));
  m.Remove("a");
  auto keys = m.Keys();
  EXPECT_EQ(keys, (std::vector<std::string>{"b"}));
  EXPECT_EQ(m.size(), 1u);
}

TEST(OrMapTest, RandomGossipConverges) {
  Rng rng(13);
  OrMap maps[3] = {OrMap(0), OrMap(1), OrMap(2)};
  const char* keys[] = {"x", "y"};
  uint64_t ts = 1;
  for (int step = 0; step < 300; ++step) {
    const uint32_t r = static_cast<uint32_t>(rng.NextBounded(3));
    const std::string key = keys[rng.NextBounded(2)];
    const double dice = rng.NextDouble();
    if (dice < 0.45) {
      maps[r].Put(key, "v" + std::to_string(step), Ts(ts++, r));
    } else if (dice < 0.65) {
      maps[r].Remove(key);
    } else {
      maps[r].Merge(maps[rng.NextBounded(3)]);
    }
  }
  for (int round = 0; round < 2; ++round) {
    for (auto& a : maps) {
      for (const auto& b : maps) a.Merge(b);
    }
  }
  EXPECT_TRUE(maps[0] == maps[1]);
  EXPECT_TRUE(maps[1] == maps[2]);
}

}  // namespace
}  // namespace evc::crdt
