#include <gtest/gtest.h>

#include "clock/hlc.h"
#include "clock/lamport.h"

namespace evc {
namespace {

TEST(LamportClockTest, TickIsMonotonic) {
  LamportClock clock(1);
  LamportTimestamp prev = clock.Tick();
  for (int i = 0; i < 100; ++i) {
    const LamportTimestamp next = clock.Tick();
    EXPECT_LT(prev, next);
    prev = next;
  }
}

TEST(LamportClockTest, ObserveAdvancesPastRemote) {
  LamportClock clock(1);
  clock.Tick();
  const LamportTimestamp remote{100, 2};
  const LamportTimestamp after = clock.Observe(remote);
  EXPECT_GT(after.counter, remote.counter);
  EXPECT_EQ(after.node, 1u);
}

TEST(LamportClockTest, ObserveOlderRemoteStillTicks) {
  LamportClock clock(1);
  for (int i = 0; i < 10; ++i) clock.Tick();
  const LamportTimestamp before = clock.Peek();
  const LamportTimestamp after = clock.Observe(LamportTimestamp{1, 2});
  EXPECT_GT(after.counter, before.counter);
}

TEST(LamportClockTest, TotalOrderBreaksTiesByNode) {
  const LamportTimestamp a{5, 1};
  const LamportTimestamp b{5, 2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(LamportClockTest, MessageExchangePreservesHappensBefore) {
  LamportClock alice(1), bob(2);
  const LamportTimestamp send = alice.Tick();
  const LamportTimestamp recv = bob.Observe(send);
  EXPECT_LT(send, recv);  // receive happens-after send in the total order
}

TEST(HlcTest, TickTracksPhysicalTime) {
  HybridLogicalClock hlc(1);
  const HlcTimestamp t1 = hlc.Tick(1000);
  EXPECT_EQ(t1.wall, 1000);
  EXPECT_EQ(t1.logical, 0u);
  const HlcTimestamp t2 = hlc.Tick(2000);
  EXPECT_EQ(t2.wall, 2000);
  EXPECT_EQ(t2.logical, 0u);
  EXPECT_LT(t1, t2);
}

TEST(HlcTest, StalledPhysicalClockUsesLogical) {
  HybridLogicalClock hlc(1);
  const HlcTimestamp t1 = hlc.Tick(1000);
  const HlcTimestamp t2 = hlc.Tick(1000);  // physical time did not advance
  const HlcTimestamp t3 = hlc.Tick(999);   // physical time went backwards
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  EXPECT_EQ(t3.wall, 1000);
  EXPECT_EQ(t3.logical, 2u);
}

TEST(HlcTest, ObservePreservesHappensBefore) {
  HybridLogicalClock sender(1), receiver(2);
  // Sender's physical clock is far ahead (skew).
  const HlcTimestamp sent = sender.Tick(50000);
  // Receiver's physical clock is behind, yet receive must order after send.
  const HlcTimestamp received = receiver.Observe(sent, 1000);
  EXPECT_LT(sent, received);
  EXPECT_EQ(received.wall, 50000);
  EXPECT_EQ(received.logical, 1u);
}

TEST(HlcTest, ObserveWithFreshPhysicalResetsLogical) {
  HybridLogicalClock receiver(2);
  receiver.Tick(1000);
  const HlcTimestamp received =
      receiver.Observe(HlcTimestamp{500, 3, 1}, 2000);
  EXPECT_EQ(received.wall, 2000);
  EXPECT_EQ(received.logical, 0u);
}

TEST(HlcTest, WallDriftBoundedByMaxObservedSkew) {
  HybridLogicalClock hlc(1);
  hlc.Observe(HlcTimestamp{10000, 0, 2}, 4000);
  EXPECT_EQ(hlc.WallDriftAbove(4000), 6000);
  EXPECT_EQ(hlc.WallDriftAbove(20000), 0);
}

TEST(HlcTest, CausalChainIsMonotonicAcrossThreeNodes) {
  HybridLogicalClock a(1), b(2), c(3);
  HlcTimestamp t = a.Tick(100);
  t = b.Observe(t, 50);   // b is behind
  HlcTimestamp t2 = b.Tick(60);
  EXPECT_LT(t, t2);
  HlcTimestamp t3 = c.Observe(t2, 1000);  // c is ahead
  EXPECT_LT(t2, t3);
  EXPECT_EQ(t3.wall, 1000);
}

}  // namespace
}  // namespace evc
