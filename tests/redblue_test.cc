#include "txn/redblue.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace evc::txn {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class RedBlueTest : public ::testing::Test {
 protected:
  void Build(int sites = 3, uint64_t seed = 23) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    auto latency = std::make_unique<sim::WanMatrixLatency>(
        sim::WanMatrixLatency::ThreeRegionBaseUs());
    wan_ = latency.get();
    net_ = std::make_unique<sim::Network>(sim_.get(), std::move(latency));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    bank_ = std::make_unique<RedBlueBank>(rpc_.get(), sites);
    for (int i = 0; i < sites; ++i) {
      wan_->AssignNode(bank_->site_node(i), i % 3);
      clients_.push_back(net_->AddNode());
      wan_->AssignNode(clients_.back(), i % 3);
    }
  }

  Result<int64_t> DepositSync(int site, const std::string& account,
                              int64_t amount) {
    std::optional<Result<int64_t>> out;
    bank_->Deposit(clients_[site], site, account, amount,
                   [&](Result<int64_t> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  Result<int64_t> WithdrawRedSync(int site, const std::string& account,
                                  int64_t amount) {
    std::optional<Result<int64_t>> out;
    bank_->WithdrawRed(clients_[site], site, account, amount,
                       [&](Result<int64_t> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  std::unique_ptr<sim::Simulator> sim_;
  sim::WanMatrixLatency* wan_ = nullptr;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<RedBlueBank> bank_;
  std::vector<sim::NodeId> clients_;
};

TEST_F(RedBlueTest, DepositsConvergeAcrossSites) {
  Build();
  ASSERT_TRUE(DepositSync(0, "acct", 100).ok());
  ASSERT_TRUE(DepositSync(1, "acct", 50).ok());
  sim_->RunFor(2 * kSecond);
  EXPECT_TRUE(bank_->Converged("acct"));
  EXPECT_EQ(bank_->BalanceAt(0, "acct"), 150);
}

TEST_F(RedBlueTest, ConcurrentDepositsCommute) {
  Build();
  std::optional<Result<int64_t>> r0, r1, r2;
  bank_->Deposit(clients_[0], 0, "acct", 10,
                 [&](Result<int64_t> r) { r0 = std::move(r); });
  bank_->Deposit(clients_[1], 1, "acct", 20,
                 [&](Result<int64_t> r) { r1 = std::move(r); });
  bank_->Deposit(clients_[2], 2, "acct", 30,
                 [&](Result<int64_t> r) { r2 = std::move(r); });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(r0.has_value() && r0->ok());
  ASSERT_TRUE(r1.has_value() && r1->ok());
  ASSERT_TRUE(r2.has_value() && r2->ok());
  EXPECT_TRUE(bank_->Converged("acct"));
  EXPECT_EQ(bank_->BalanceAt(1, "acct"), 60);
  EXPECT_EQ(bank_->stats().invariant_violations, 0u);
}

TEST_F(RedBlueTest, BlueDepositIsLocallyFast) {
  Build();
  // Client 1 deposits at its local site: round trip is intra-DC (~sub-ms),
  // far below the WAN RTT to site 0.
  const sim::Time start = sim_->Now();
  sim::Time completed_at = -1;
  std::optional<Result<int64_t>> r;
  bank_->Deposit(clients_[1], 1, "acct", 10, [&](Result<int64_t> res) {
    completed_at = sim_->Now();
    r = std::move(res);
  });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(r.has_value() && r->ok());
  EXPECT_LT(completed_at - start, 20 * kMillisecond);
}

TEST_F(RedBlueTest, RedWithdrawRespectsInvariant) {
  Build();
  ASSERT_TRUE(DepositSync(0, "acct", 100).ok());
  sim_->RunFor(2 * kSecond);
  EXPECT_TRUE(WithdrawRedSync(1, "acct", 60).ok());
  // Second withdrawal exceeds the remaining funds: red check rejects it.
  auto r = WithdrawRedSync(2, "acct", 60);
  EXPECT_TRUE(r.status().IsAborted());
  EXPECT_GE(bank_->stats().red_aborts, 1u);
  sim_->RunFor(2 * kSecond);
  EXPECT_EQ(bank_->BalanceAt(0, "acct"), 40);
  EXPECT_EQ(bank_->stats().invariant_violations, 0u);
}

TEST_F(RedBlueTest, ConcurrentRedWithdrawalsNeverOverdraw) {
  Build();
  ASSERT_TRUE(DepositSync(0, "acct", 100).ok());
  sim_->RunFor(2 * kSecond);
  // Two concurrent red withdrawals of 60: at most one can commit.
  std::optional<Result<int64_t>> r1, r2;
  bank_->WithdrawRed(clients_[1], 1, "acct", 60,
                     [&](Result<int64_t> r) { r1 = std::move(r); });
  bank_->WithdrawRed(clients_[2], 2, "acct", 60,
                     [&](Result<int64_t> r) { r2 = std::move(r); });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  EXPECT_NE(r1->ok(), r2->ok());  // exactly one commits
  sim_->RunFor(2 * kSecond);
  EXPECT_EQ(bank_->BalanceAt(0, "acct"), 40);
  EXPECT_EQ(bank_->stats().invariant_violations, 0u);
}

TEST_F(RedBlueTest, BlueWithdrawalsCanDoubleSpend) {
  // The mislabelling anomaly: both sites check locally, both pass, global
  // balance goes negative after the shadow deltas meet.
  Build();
  ASSERT_TRUE(DepositSync(0, "acct", 100).ok());
  sim_->RunFor(2 * kSecond);
  std::optional<Result<int64_t>> r1, r2;
  bank_->WithdrawBlue(clients_[1], 1, "acct", 80,
                      [&](Result<int64_t> r) { r1 = std::move(r); });
  bank_->WithdrawBlue(clients_[2], 2, "acct", 80,
                      [&](Result<int64_t> r) { r2 = std::move(r); });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(r1.has_value() && r1->ok());  // both committed locally!
  ASSERT_TRUE(r2.has_value() && r2->ok());
  sim_->RunFor(2 * kSecond);
  EXPECT_TRUE(bank_->Converged("acct"));
  EXPECT_EQ(bank_->BalanceAt(0, "acct"), -60);  // invariant broken
  EXPECT_GT(bank_->stats().invariant_violations, 0u);
}

TEST_F(RedBlueTest, RedIsSlowerThanBlueFromRemoteSite) {
  Build();
  ASSERT_TRUE(DepositSync(0, "acct", 1000).ok());
  sim_->RunFor(2 * kSecond);
  // Blue from site 2 (local): fast.
  sim::Time blue_latency = 0;
  {
    const sim::Time start = sim_->Now();
    std::optional<Result<int64_t>> r;
    bank_->Deposit(clients_[2], 2, "acct", 1,
                   [&](Result<int64_t> res) { r = std::move(res); });
    sim_->RunFor(5 * kSecond);
    ASSERT_TRUE(r.has_value() && r->ok());
    blue_latency = sim_->Now() - start;
    // RunFor runs to the budget; measure via a tighter loop instead.
  }
  // Measure precisely with stepped time.
  sim::Time blue_done = -1, red_done = -1;
  {
    const sim::Time start = sim_->Now();
    bank_->Deposit(clients_[2], 2, "acct", 1, [&](Result<int64_t>) {
      blue_done = sim_->Now() - start;
    });
    bank_->WithdrawRed(clients_[2], 2, "acct", 1, [&](Result<int64_t>) {
      red_done = sim_->Now() - start;
    });
    sim_->RunFor(5 * kSecond);
  }
  ASSERT_GE(blue_done, 0);
  ASSERT_GE(red_done, 0);
  // Site 2 is in Asia; the sequencer is in US-East: red pays the WAN RTT.
  EXPECT_GT(red_done, 50 * blue_done);
  (void)blue_latency;
}

TEST_F(RedBlueTest, ManyMixedOpsConvergeWithNoViolations) {
  Build();
  Rng rng(3);
  ASSERT_TRUE(DepositSync(0, "acct", 10000).ok());
  sim_->RunFor(2 * kSecond);
  int completed = 0;
  const int total = 60;
  for (int i = 0; i < total; ++i) {
    const int site = static_cast<int>(rng.NextBounded(3));
    auto cb = [&](Result<int64_t>) { ++completed; };
    if (rng.NextBool(0.7)) {
      bank_->Deposit(clients_[site], site, "acct",
                     static_cast<int64_t>(rng.NextBounded(50)), cb);
    } else {
      bank_->WithdrawRed(clients_[site], site, "acct",
                         static_cast<int64_t>(rng.NextBounded(100)) + 1, cb);
    }
  }
  sim_->RunFor(20 * kSecond);
  EXPECT_EQ(completed, total);
  EXPECT_TRUE(bank_->Converged("acct"));
  EXPECT_GE(bank_->BalanceAt(0, "acct"), 0);
  EXPECT_EQ(bank_->stats().invariant_violations, 0u);
}

}  // namespace
}  // namespace evc::txn
