#include "cache/lease_registry.h"

#include <gtest/gtest.h>

namespace evc::cache {
namespace {

using sim::kMillisecond;

constexpr sim::Time kTtl = 100 * kMillisecond;

TEST(LeaseRegistryTest, GrantSetsExpiryFromTtl) {
  LeaseRegistry reg(kTtl);
  const Lease lease = reg.Grant("k", 7, /*now=*/1000);
  EXPECT_EQ(lease.expiry, 1000 + kTtl);
  EXPECT_GT(lease.id, 0u);
  const auto out = reg.Outstanding("k", 1000);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].holder, 7u);
  EXPECT_EQ(out[0].lease.id, lease.id);
}

TEST(LeaseRegistryTest, IdsAreMonotoneAcrossKeysAndHolders) {
  LeaseRegistry reg(kTtl);
  uint64_t prev = 0;
  for (int i = 0; i < 5; ++i) {
    const Lease a = reg.Grant("a", static_cast<sim::NodeId>(i), 0);
    const Lease b = reg.Grant("b", static_cast<sim::NodeId>(i), 0);
    EXPECT_GT(a.id, prev);
    EXPECT_GT(b.id, a.id);
    prev = b.id;
  }
}

TEST(LeaseRegistryTest, RenewalMintsFreshIdAndKeepsOneLease) {
  LeaseRegistry reg(kTtl);
  const Lease first = reg.Grant("k", 7, 0);
  const Lease renewed = reg.Grant("k", 7, 50);
  EXPECT_GT(renewed.id, first.id);
  EXPECT_EQ(renewed.expiry, 50 + kTtl);
  // One (key, holder) pair holds at most one lease.
  EXPECT_EQ(reg.Outstanding("k", 50).size(), 1u);
  EXPECT_EQ(reg.Outstanding("k", 50)[0].lease.id, renewed.id);
}

TEST(LeaseRegistryTest, OutstandingDropsExpiredLazily) {
  LeaseRegistry reg(kTtl);
  reg.Grant("k", 1, 0);
  reg.Grant("k", 2, 60 * kMillisecond);
  EXPECT_EQ(reg.Outstanding("k", 0).size(), 2u);
  // Holder 1 expires at 100ms; holder 2 at 160ms.
  const auto out = reg.Outstanding("k", 100 * kMillisecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].holder, 2u);
  EXPECT_EQ(reg.size(), 1u);  // lazy GC actually removed the expired entry
  EXPECT_TRUE(reg.Outstanding("k", 200 * kMillisecond).empty());
  EXPECT_EQ(reg.size(), 0u);
}

TEST(LeaseRegistryTest, ReleaseOnlyRemovesTheSnapshottedId) {
  LeaseRegistry reg(kTtl);
  const Lease first = reg.Grant("k", 7, 0);
  // A renewal minted after the revoker's snapshot must survive a stale
  // Release (the holder re-read and got a fresh lease in the meantime).
  const Lease renewed = reg.Grant("k", 7, 10);
  EXPECT_FALSE(reg.Release("k", 7, first.id));
  ASSERT_EQ(reg.Outstanding("k", 10).size(), 1u);
  EXPECT_TRUE(reg.Release("k", 7, renewed.id));
  EXPECT_TRUE(reg.Outstanding("k", 10).empty());
  EXPECT_FALSE(reg.Release("k", 7, renewed.id));  // idempotent
}

TEST(LeaseRegistryTest, DropAllForgetsLeasesButNotTheIdCounter) {
  LeaseRegistry reg(kTtl);
  const Lease before = reg.Grant("k", 1, 0);
  reg.Grant("k", 2, 0);
  reg.DropAll();
  EXPECT_EQ(reg.size(), 0u);
  // The monotone id stream must survive amnesia: a post-crash grant with a
  // recycled id could slip under a client's revoked_floor_ and resurrect a
  // revoked entry.
  const Lease after = reg.Grant("k", 1, 0);
  EXPECT_GT(after.id, before.id);
}

}  // namespace
}  // namespace evc::cache
