#include "crdt/delta_orset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "common/rng.h"

namespace evc::crdt {
namespace {

TEST(DotContextTest, ContainsContiguousAndCloud) {
  DotContext ctx;
  ctx.Add(Dot{0, 1});
  ctx.Add(Dot{0, 2});
  ctx.Add(Dot{0, 5});  // gap: 3,4 missing
  EXPECT_TRUE(ctx.Contains(Dot{0, 1}));
  EXPECT_TRUE(ctx.Contains(Dot{0, 2}));
  EXPECT_FALSE(ctx.Contains(Dot{0, 3}));
  EXPECT_TRUE(ctx.Contains(Dot{0, 5}));
  EXPECT_EQ(ctx.vector().Get(0), 2u);
  EXPECT_EQ(ctx.cloud_size(), 1u);
}

TEST(DotContextTest, CompactFoldsFilledGaps) {
  DotContext ctx;
  ctx.Add(Dot{0, 2});
  ctx.Add(Dot{0, 3});
  EXPECT_EQ(ctx.vector().Get(0), 0u);  // nothing contiguous yet
  ctx.Add(Dot{0, 1});                  // fills the gap
  EXPECT_EQ(ctx.vector().Get(0), 3u);
  EXPECT_EQ(ctx.cloud_size(), 0u);
}

TEST(DotContextTest, NextDotIsFreshAndContiguous) {
  DotContext ctx;
  const Dot d1 = ctx.NextDot(4);
  const Dot d2 = ctx.NextDot(4);
  EXPECT_EQ(d1.counter + 1, d2.counter);
  EXPECT_TRUE(ctx.Contains(d1));
  EXPECT_TRUE(ctx.Contains(d2));
  EXPECT_EQ(ctx.cloud_size(), 0u);
}

TEST(DotContextTest, MergeCompactsAcrossSources) {
  DotContext a, b;
  a.Add(Dot{1, 1});
  b.Add(Dot{1, 2});
  a.Merge(b);
  EXPECT_EQ(a.vector().Get(1), 2u);
  EXPECT_EQ(a.cloud_size(), 0u);
}

TEST(DeltaOrSetTest, AddRemoveLocal) {
  DeltaOrSet s(0);
  s.Add("x");
  EXPECT_TRUE(s.Contains("x"));
  s.Remove("x");
  EXPECT_FALSE(s.Contains("x"));
  s.Add("x");
  EXPECT_TRUE(s.Contains("x"));  // re-add works
}

TEST(DeltaOrSetTest, DeltaTransfersAdd) {
  DeltaOrSet a(0), b(1);
  const DeltaOrSet delta = a.Add("x");
  b.Merge(delta);
  EXPECT_TRUE(b.Contains("x"));
}

TEST(DeltaOrSetTest, DeltaTransfersRemove) {
  DeltaOrSet a(0), b(1);
  b.Merge(a.Add("x"));
  ASSERT_TRUE(b.Contains("x"));
  b.Merge(a.Remove("x"));
  EXPECT_FALSE(b.Contains("x"));
}

TEST(DeltaOrSetTest, DeltaStreamEqualsFullState) {
  DeltaOrSet source(0), via_deltas(100), via_state(101);
  Rng rng(3);
  const char* items[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 300; ++i) {
    const std::string item = items[rng.NextBounded(4)];
    const DeltaOrSet delta =
        rng.NextBool(0.6) ? source.Add(item) : source.Remove(item);
    via_deltas.Merge(delta);
  }
  via_state.Merge(source);
  EXPECT_TRUE(via_deltas == via_state);
  EXPECT_TRUE(via_deltas == source);
}

TEST(DeltaOrSetTest, ConcurrentAddSurvivesRemove) {
  DeltaOrSet a(0), b(1);
  b.Merge(a.Add("beer"));
  const DeltaOrSet remove_delta = a.Remove("beer");  // observed a's dot
  const DeltaOrSet add_delta = b.Add("beer");        // fresh concurrent dot
  a.Merge(add_delta);
  b.Merge(remove_delta);
  EXPECT_TRUE(a.Contains("beer"));
  EXPECT_TRUE(b.Contains("beer"));
  a.Merge(b);
  b.Merge(a);
  EXPECT_TRUE(a == b);
}

TEST(DeltaOrSetTest, ReorderedDeltasStillConverge) {
  // Deltas are joined like state: applying them out of order (even with
  // gaps temporarily unfilled) converges once all have arrived.
  DeltaOrSet source(0), sink(1);
  std::vector<DeltaOrSet> deltas;
  deltas.push_back(source.Add("a"));
  deltas.push_back(source.Add("b"));
  deltas.push_back(source.Remove("a"));
  deltas.push_back(source.Add("c"));
  std::reverse(deltas.begin(), deltas.end());
  for (const auto& d : deltas) sink.Merge(d);
  EXPECT_TRUE(sink == source);
  auto elements = sink.Elements();
  std::sort(elements.begin(), elements.end());
  EXPECT_EQ(elements, (std::vector<std::string>{"b", "c"}));
}

TEST(DeltaOrSetTest, DuplicatedDeltasAreIdempotent) {
  DeltaOrSet source(0), sink(1);
  const DeltaOrSet d1 = source.Add("x");
  const DeltaOrSet d2 = source.Remove("x");
  sink.Merge(d1);
  sink.Merge(d1);
  sink.Merge(d2);
  sink.Merge(d2);
  sink.Merge(d1);  // stale re-delivery after the remove
  EXPECT_FALSE(sink.Contains("x"));
  EXPECT_TRUE(sink == source);
}

TEST(DeltaOrSetTest, DeltaBytesMuchSmallerThanState) {
  DeltaOrSet s(0);
  for (int i = 0; i < 500; ++i) s.Add("item" + std::to_string(i));
  const DeltaOrSet delta = s.Add("one-more");
  EXPECT_LT(delta.StateBytes() * 20, s.StateBytes());
}

class DeltaOrSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaOrSetPropertyTest, RandomDeltaGossipConverges) {
  Rng rng(GetParam());
  DeltaOrSet replicas[3] = {DeltaOrSet(0), DeltaOrSet(1), DeltaOrSet(2)};
  // Per-destination delta queues with random delivery (loss-free but
  // arbitrarily delayed and reordered).
  std::deque<DeltaOrSet> queues[3];
  const char* items[] = {"p", "q", "r"};
  for (int step = 0; step < 400; ++step) {
    const uint32_t r = static_cast<uint32_t>(rng.NextBounded(3));
    const std::string item = items[rng.NextBounded(3)];
    DeltaOrSet delta = rng.NextBool(0.55) ? replicas[r].Add(item)
                                          : replicas[r].Remove(item);
    for (uint32_t peer = 0; peer < 3; ++peer) {
      if (peer != r) queues[peer].push_back(delta);
    }
    // Randomly deliver some queued deltas, possibly out of order.
    for (uint32_t peer = 0; peer < 3; ++peer) {
      while (!queues[peer].empty() && rng.NextBool(0.4)) {
        const size_t pick = rng.NextBounded(queues[peer].size());
        replicas[peer].Merge(queues[peer][pick]);
        queues[peer].erase(queues[peer].begin() +
                           static_cast<long>(pick));
      }
    }
  }
  // Drain all queues.
  for (uint32_t peer = 0; peer < 3; ++peer) {
    for (const auto& d : queues[peer]) replicas[peer].Merge(d);
  }
  EXPECT_TRUE(replicas[0] == replicas[1]);
  EXPECT_TRUE(replicas[1] == replicas[2]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaOrSetPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace evc::crdt
