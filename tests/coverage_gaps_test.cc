// Edge cases not covered by the per-module suites: error paths, fallback
// branches, and cross-module corners.

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "crdt/causal_bus.h"
#include "sla/pileus.h"
#include "txn/redblue.h"
#include "workload/workload.h"

namespace evc {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(RedBlueEdgeTest, BlueWithdrawAbortsOnLocalInsufficientFunds) {
  sim::Simulator sim(3);
  sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(
                             5 * kMillisecond));
  sim::Rpc rpc(&net);
  txn::RedBlueBank bank(&rpc, 2);
  const sim::NodeId client = net.AddNode();
  std::optional<Status> status;
  bank.WithdrawBlue(client, 0, "empty", 10,
                    [&](Result<int64_t> r) { status = r.status(); });
  sim.RunFor(kSecond);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->IsAborted());
  EXPECT_EQ(bank.stats().invariant_violations, 0u);
}

TEST(RedBlueEdgeTest, RedWithdrawOnUnknownAccountAborts) {
  sim::Simulator sim(4);
  sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(
                             5 * kMillisecond));
  sim::Rpc rpc(&net);
  txn::RedBlueBank bank(&rpc, 2);
  const sim::NodeId client = net.AddNode();
  std::optional<Status> status;
  bank.WithdrawRed(client, 1, "ghost", 1,
                   [&](Result<int64_t> r) { status = r.status(); });
  sim.RunFor(2 * kSecond);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->IsAborted());
  EXPECT_EQ(bank.stats().red_aborts, 1u);
}

TEST(PileusEdgeTest, GetBeforeProbeFallsBackToLastRow) {
  sim::Simulator sim(5);
  auto latency = std::make_unique<sim::WanMatrixLatency>(
      sim::WanMatrixLatency::ThreeRegionBaseUs());
  auto* wan = latency.get();
  sim::Network net(&sim, std::move(latency));
  sim::Rpc rpc(&net);
  sla::PileusCluster cluster(&rpc, sla::PileusOptions{});
  const sim::NodeId primary = cluster.AddPrimary();
  wan->AssignNode(primary, 0);
  cluster.Start();
  const sim::NodeId writer = net.AddNode();
  wan->AssignNode(writer, 0);
  bool seeded = false;
  cluster.Put(writer, "k", "v", [&](Result<uint64_t> r) { seeded = r.ok(); });
  sim.RunFor(kSecond);
  ASSERT_TRUE(seeded);

  const sim::NodeId user = net.AddNode();
  wan->AssignNode(user, 1);
  sla::PileusClient client(&cluster, &sim, user,
                           sla::Sla{{kSecond, sla::ReadConsistency::kEventual,
                                     0, 0.2}});
  // No Probe: monitors are empty; the client must still serve the read by
  // falling back to the primary.
  std::optional<sla::SlaReadResult> read;
  client.Get("k", [&](Result<sla::SlaReadResult> r) {
    if (r.ok()) read = *r;
  });
  sim.RunFor(5 * kSecond);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->found);
  EXPECT_EQ(read->value, "v");
}

TEST(CausalBusEdgeTest, PullRespectsMaxOps) {
  crdt::CausalBus<int> bus(2);
  std::vector<int> got;
  bus.OnDeliver(1, [&](uint32_t, const int& op) { got.push_back(op); });
  for (int i = 0; i < 5; ++i) bus.Broadcast(0, i);
  EXPECT_EQ(bus.Pull(1, 2), 2u);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(bus.PendingAt(1), 3u);
  EXPECT_EQ(bus.Pull(1), 3u);
}

TEST(CausalBusEdgeTest, ClockOfTracksDeliveries) {
  crdt::CausalBus<int> bus(2);
  bus.OnDeliver(1, [](uint32_t, const int&) {});
  bus.Broadcast(0, 1);
  bus.Broadcast(0, 2);
  EXPECT_EQ(bus.clock_of(0).Get(0), 2u);  // origin echoes immediately
  EXPECT_EQ(bus.clock_of(1).Get(0), 0u);
  bus.PullAll();
  EXPECT_EQ(bus.clock_of(1).Get(0), 2u);
}

TEST(WorkloadEdgeTest, RmwOpsCarryValues) {
  workload::WorkloadConfig config = workload::WorkloadConfig::YcsbF();
  workload::WorkloadGenerator gen(config, 1);
  bool saw_rmw = false;
  for (int i = 0; i < 200; ++i) {
    const workload::Op op = gen.Next();
    if (op.type == workload::OpType::kReadModifyWrite) {
      saw_rmw = true;
      EXPECT_FALSE(op.value.empty());
    }
  }
  EXPECT_TRUE(saw_rmw);
}

TEST(WorkloadEdgeTest, OpTypeNamesAreStable) {
  EXPECT_STREQ(workload::OpTypeToString(workload::OpType::kRead), "read");
  EXPECT_STREQ(workload::OpTypeToString(workload::OpType::kInsert), "insert");
  EXPECT_STREQ(workload::OpTypeToString(workload::OpType::kReadModifyWrite),
               "rmw");
}

TEST(SlaEdgeTest, ConsistencyNamesAreStable) {
  EXPECT_STREQ(sla::ReadConsistencyToString(sla::ReadConsistency::kStrong),
               "strong");
  EXPECT_STREQ(sla::ReadConsistencyToString(sla::ReadConsistency::kBounded),
               "bounded");
  EXPECT_STREQ(sla::ReadConsistencyToString(sla::ReadConsistency::kEventual),
               "eventual");
}

}  // namespace
}  // namespace evc
