#include "clock/version_vector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace evc {
namespace {

TEST(VersionVectorTest, EmptyVectorsAreEqual) {
  VersionVector a, b;
  EXPECT_EQ(a.Compare(b), CausalOrder::kEqual);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a.Descends(b));
}

TEST(VersionVectorTest, IncrementCreatesDominance) {
  VersionVector a, b;
  a.Increment(0);
  EXPECT_EQ(a.Compare(b), CausalOrder::kAfter);
  EXPECT_EQ(b.Compare(a), CausalOrder::kBefore);
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
}

TEST(VersionVectorTest, ConcurrentWhenDisjointReplicas) {
  VersionVector a, b;
  a.Increment(0);
  b.Increment(1);
  EXPECT_EQ(a.Compare(b), CausalOrder::kConcurrent);
  EXPECT_EQ(b.Compare(a), CausalOrder::kConcurrent);
  EXPECT_TRUE(a.ConcurrentWith(b));
}

TEST(VersionVectorTest, MixedComponentsConcurrent) {
  VersionVector a, b;
  a.Set(0, 2);
  a.Set(1, 1);
  b.Set(0, 1);
  b.Set(1, 2);
  EXPECT_EQ(a.Compare(b), CausalOrder::kConcurrent);
}

TEST(VersionVectorTest, MergeIsJoin) {
  VersionVector a, b;
  a.Set(0, 3);
  a.Set(1, 1);
  b.Set(1, 4);
  b.Set(2, 2);
  const VersionVector m = VersionVector::Merge(a, b);
  EXPECT_EQ(m.Get(0), 3u);
  EXPECT_EQ(m.Get(1), 4u);
  EXPECT_EQ(m.Get(2), 2u);
  // Join dominates (or equals) both inputs.
  EXPECT_TRUE(m.Descends(a));
  EXPECT_TRUE(m.Descends(b));
}

TEST(VersionVectorTest, SetZeroErasesEntry) {
  VersionVector a;
  a.Set(5, 7);
  EXPECT_EQ(a.size(), 1u);
  a.Set(5, 0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.Get(5), 0u);
}

TEST(VersionVectorTest, TotalEventsSumsCounters) {
  VersionVector a;
  a.Set(0, 3);
  a.Set(7, 4);
  EXPECT_EQ(a.TotalEvents(), 7u);
}

TEST(VersionVectorTest, ToStringRendersEntries) {
  VersionVector a;
  a.Set(1, 2);
  EXPECT_EQ(a.ToString(), "{r1:2}");
  EXPECT_EQ(VersionVector().ToString(), "{}");
}

TEST(VersionVectorTest, EncodeDecodeRoundTrip) {
  VersionVector a;
  a.Set(0, 1);
  a.Set(42, 100000);
  a.Set(7, 3);
  std::string buf;
  a.EncodeTo(&buf);
  auto decoded = VersionVector::Decode(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, a);
}

TEST(VersionVectorTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(VersionVector::Decode("\xff\xff\xff").ok());
  std::string buf;
  VersionVector a;
  a.Set(1, 1);
  a.EncodeTo(&buf);
  buf += "trailing";
  EXPECT_TRUE(VersionVector::Decode(buf).status().IsCorruption());
}

// --- property tests over random vectors ------------------------------------

VersionVector RandomVector(Rng& rng, uint32_t max_replicas, uint64_t max_ctr) {
  VersionVector vv;
  const uint32_t n = static_cast<uint32_t>(rng.NextBounded(max_replicas + 1));
  for (uint32_t i = 0; i < n; ++i) {
    vv.Set(static_cast<uint32_t>(rng.NextBounded(max_replicas)),
           rng.NextBounded(max_ctr) + 1);
  }
  return vv;
}

class VersionVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VersionVectorPropertyTest, CompareIsAntisymmetric) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    VersionVector a = RandomVector(rng, 6, 5);
    VersionVector b = RandomVector(rng, 6, 5);
    const CausalOrder ab = a.Compare(b);
    const CausalOrder ba = b.Compare(a);
    switch (ab) {
      case CausalOrder::kEqual:
        EXPECT_EQ(ba, CausalOrder::kEqual);
        EXPECT_EQ(a, b);
        break;
      case CausalOrder::kBefore:
        EXPECT_EQ(ba, CausalOrder::kAfter);
        break;
      case CausalOrder::kAfter:
        EXPECT_EQ(ba, CausalOrder::kBefore);
        break;
      case CausalOrder::kConcurrent:
        EXPECT_EQ(ba, CausalOrder::kConcurrent);
        break;
    }
  }
}

TEST_P(VersionVectorPropertyTest, MergeIsCommutativeAssociativeIdempotent) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 500; ++trial) {
    VersionVector a = RandomVector(rng, 6, 5);
    VersionVector b = RandomVector(rng, 6, 5);
    VersionVector c = RandomVector(rng, 6, 5);
    EXPECT_EQ(VersionVector::Merge(a, b), VersionVector::Merge(b, a));
    EXPECT_EQ(VersionVector::Merge(VersionVector::Merge(a, b), c),
              VersionVector::Merge(a, VersionVector::Merge(b, c)));
    EXPECT_EQ(VersionVector::Merge(a, a), a);
  }
}

TEST_P(VersionVectorPropertyTest, IncrementAlwaysDominatesOriginal) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 500; ++trial) {
    VersionVector a = RandomVector(rng, 6, 5);
    VersionVector b = a;
    b.Increment(static_cast<uint32_t>(rng.NextBounded(6)));
    EXPECT_EQ(b.Compare(a), CausalOrder::kAfter);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionVectorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- dotted version vectors --------------------------------------------------

TEST(DottedVersionVectorTest, ContainsDotInContext) {
  VersionVector ctx;
  ctx.Set(0, 3);
  DottedVersionVector dvv(ctx, Dot{1, 5});
  EXPECT_TRUE(dvv.Contains(Dot{0, 2}));
  EXPECT_TRUE(dvv.Contains(Dot{0, 3}));
  EXPECT_FALSE(dvv.Contains(Dot{0, 4}));
  EXPECT_TRUE(dvv.Contains(Dot{1, 5}));   // its own dot
  EXPECT_FALSE(dvv.Contains(Dot{1, 4}));  // gap below the dot
}

TEST(DottedVersionVectorTest, DominanceDetectsCausalOverwrite) {
  // Writer sees version tagged (r0,1) and overwrites: context {r0:1}, dot
  // (r0,2). The new write dominates the old.
  DottedVersionVector old_version(VersionVector(), Dot{0, 1});
  VersionVector ctx;
  ctx.Set(0, 1);
  DottedVersionVector new_version(ctx, Dot{0, 2});
  EXPECT_TRUE(new_version.Dominates(old_version));
  EXPECT_FALSE(old_version.Dominates(new_version));
  EXPECT_EQ(new_version.Compare(old_version), CausalOrder::kAfter);
}

TEST(DottedVersionVectorTest, BlindConcurrentWritesAreSiblings) {
  // Two clients write with empty contexts at different replicas.
  DottedVersionVector a(VersionVector(), Dot{0, 1});
  DottedVersionVector b(VersionVector(), Dot{1, 1});
  EXPECT_EQ(a.Compare(b), CausalOrder::kConcurrent);
}

TEST(DottedVersionVectorTest, SameServerConcurrentClientsKeptDistinct) {
  // The motivating DVV case: two clients, both with empty read context,
  // write through the SAME server. Naive version vectors would merge them;
  // dots keep them distinct siblings.
  DottedVersionVector first(VersionVector(), Dot{0, 1});
  VersionVector ctx_second;  // still empty: second client read nothing
  DottedVersionVector second(ctx_second, Dot{0, 2});
  EXPECT_EQ(first.Compare(second), CausalOrder::kConcurrent);
}

TEST(DottedVersionVectorTest, FlattenAbsorbsDot) {
  VersionVector ctx;
  ctx.Set(0, 1);
  DottedVersionVector dvv(ctx, Dot{0, 3});
  const VersionVector flat = dvv.Flatten();
  EXPECT_EQ(flat.Get(0), 3u);
}

TEST(DottedVersionVectorTest, ToStringShowsDot) {
  DottedVersionVector dvv(VersionVector(), Dot{2, 9});
  EXPECT_NE(dvv.ToString().find("(2,9)"), std::string::npos);
}

}  // namespace
}  // namespace evc
