#include "stale/pbs.h"

#include <gtest/gtest.h>

namespace evc::stale {
namespace {

PbsConfig Config(int n, int r, int w) {
  PbsConfig c;
  c.n = n;
  c.r = r;
  c.w = w;
  return c;
}

TEST(PbsTest, StrictQuorumAlwaysConsistent) {
  // R + W > N: quorum intersection makes every read see the write, at any t.
  for (auto [r, w] : {std::pair{2, 2}, {1, 3}, {3, 1}}) {
    PbsEstimator pbs(Config(3, r, w), 7);
    EXPECT_DOUBLE_EQ(pbs.ProbConsistent(0, 4000), 1.0)
        << "R=" << r << " W=" << w;
  }
}

TEST(PbsTest, PartialQuorumEventuallyConsistent) {
  PbsEstimator pbs(Config(3, 1, 1), 7);
  const double at_zero = pbs.ProbConsistent(0);
  const double at_10ms = pbs.ProbConsistent(10 * 1000);
  const double at_100ms = pbs.ProbConsistent(100 * 1000);
  EXPECT_LT(at_zero, 1.0);
  EXPECT_GT(at_zero, 0.3);  // even immediately, often consistent
  EXPECT_GT(at_10ms, at_zero);
  EXPECT_GT(at_100ms, 0.99);  // converges
}

TEST(PbsTest, ProbabilityMonotoneInT) {
  PbsEstimator pbs(Config(3, 1, 1), 11);
  double prev = 0;
  for (double t : {0.0, 1000.0, 5000.0, 20000.0, 100000.0}) {
    const double p = pbs.ProbConsistent(t, 30000);
    EXPECT_GE(p, prev - 0.02) << "t=" << t;  // monotone modulo MC noise
    prev = p;
  }
}

TEST(PbsTest, LargerRImprovesConsistency) {
  PbsEstimator r1(Config(3, 1, 1), 5);
  PbsEstimator r2(Config(3, 2, 1), 5);
  EXPECT_GT(r2.ProbConsistent(0), r1.ProbConsistent(0) + 0.05);
}

TEST(PbsTest, LargerWImprovesConsistency) {
  PbsEstimator w1(Config(3, 1, 1), 5);
  PbsEstimator w2(Config(3, 1, 2), 5);
  EXPECT_GT(w2.ProbConsistent(0), w1.ProbConsistent(0) + 0.05);
}

TEST(PbsTest, TVisibilityFindsThreshold) {
  PbsEstimator pbs(Config(3, 1, 1), 9);
  const double t99 = pbs.TVisibility(0.99);
  EXPECT_GT(t99, 0.0);
  EXPECT_GT(pbs.ProbConsistent(t99, 30000), 0.97);
  // A stricter target needs at least as much time.
  const double t90 = pbs.TVisibility(0.90);
  EXPECT_LE(t90, t99 + 1.0);
}

TEST(PbsTest, KStalenessImprovesWithK) {
  PbsEstimator pbs(Config(3, 1, 1), 13);
  const double k1 = pbs.ProbKStaleness(1, 10000);
  const double k3 = pbs.ProbKStaleness(3, 10000);
  EXPECT_GE(k3, k1 - 0.02);
  EXPECT_GT(k3, 0.5);
}

TEST(PbsTest, SlowerReplicationLowersConsistency) {
  PbsConfig fast = Config(3, 1, 1);
  PbsConfig slow = Config(3, 1, 1);
  slow.w_latency = ShiftedExponential(500, 50000);  // heavy write tail
  PbsEstimator fast_pbs(fast, 3);
  PbsEstimator slow_pbs(slow, 3);
  EXPECT_GT(fast_pbs.ProbConsistent(5000),
            slow_pbs.ProbConsistent(5000) + 0.05);
}

TEST(PbsTest, DeterministicForSameSeed) {
  PbsEstimator a(Config(3, 1, 1), 21);
  PbsEstimator b(Config(3, 1, 1), 21);
  EXPECT_DOUBLE_EQ(a.ProbConsistent(1000, 5000), b.ProbConsistent(1000, 5000));
}

TEST(PbsTest, ShiftedExponentialHasBaseFloor) {
  Rng rng(1);
  auto sampler = ShiftedExponential(1000, 500);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(sampler(rng), 1000.0);
  }
}

// Sweep: for every (R, W) with N=5, strict quorums are perfectly consistent
// and partial quorums are not (at t=0 with nonzero tails).
class PbsQuorumSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PbsQuorumSweepTest, IntersectionDeterminesConsistencyAtZero) {
  const int r = std::get<0>(GetParam());
  const int w = std::get<1>(GetParam());
  PbsEstimator pbs(Config(5, r, w), 31);
  const double p = pbs.ProbConsistent(0, 8000);
  if (r + w > 5) {
    EXPECT_DOUBLE_EQ(p, 1.0);
  } else {
    EXPECT_LT(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PbsQuorumSweepTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace evc::stale
