// Acceptor amnesia: why Paxos acceptors MUST journal promised/accepted
// ballots before acking.
//
// The schedule: isolate the current leader n0 mid-proposal, let the
// majority side elect a new leader and choose a conflicting value in the
// same slot, then crash one majority acceptor f and bring it back *on the
// old leader's side of a fresh partition*. If f forgot its promise to the
// new leader, it grants the old leader a second majority for the same slot
// — two different values chosen, a real linearizability violation. With
// the acceptor journal on (the default), f recovers its promise from the
// WAL, rejects the stale ballot, and the old leader steps down instead.
//
// Both halves of the claim are pinned: journaling OFF demonstrably loses
// safety on this schedule, journaling ON demonstrably keeps it.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consensus/paxos.h"
#include "sim/nemesis.h"
#include "verify/linearizability.h"

namespace evc::consensus {
namespace {

using sim::kMillisecond;
using sim::kSecond;

constexpr int64_t kNever = std::numeric_limits<int64_t>::max() / 2;

struct Outcome {
  // The register history observed by the clients (single key "k").
  std::vector<verify::Operation> history;
  // Chosen value in slot 0 at the old leader / the new leader (encoded).
  std::optional<std::string> slot0_at_old_leader;
  std::optional<std::string> slot0_at_new_leader;
  // The stale read the old leader served after the forgetful restart
  // (nullopt when the read failed, as it must with journaling on).
  std::optional<std::string> stale_read_value;
  uint64_t crash_recoveries = 0;
  uint64_t wal_replayed = 0;
};

// Runs the schedule with or without the acceptor journal. Everything else
// (seed, timing, partitions) is identical between the two runs.
Outcome RunSchedule(bool journal_acceptor_state) {
  Outcome out;
  auto sim = std::make_unique<sim::Simulator>(11);
  auto net = std::make_unique<sim::Network>(
      sim.get(),
      std::make_unique<sim::UniformLatency>(2 * kMillisecond,
                                            10 * kMillisecond));
  auto rpc = std::make_unique<sim::Rpc>(net.get());
  PaxosOptions opt;
  opt.journal_acceptor_state = journal_acceptor_state;
  PaxosCluster cluster(rpc.get(), opt);
  std::vector<sim::NodeId> servers = cluster.AddServers(3);
  const sim::NodeId c0 = net->AddNode();  // client stranded with n0
  const sim::NodeId c1 = net->AddNode();  // client on the majority side
  cluster.Start();
  sim->RunFor(2 * kSecond);

  const sim::NodeId n0 = servers[0];
  EXPECT_TRUE(cluster.IsLeader(n0));

  // Cut the leader (and its client) away from the majority.
  net->Partition({{n0, c0}});

  // The stranded leader proposes "old": it cannot reach a majority, but it
  // keeps re-proposing slot 0 for as long as it believes it leads. The
  // client-facing call times out — an unacked write, closed at +infinity
  // in the history.
  const int64_t old_invoke = sim->Now();
  cluster.Propose(c0, n0, Command{Command::Type::kPut, "k", "old"},
                  [](Result<Execution>) {});
  out.history.push_back(verify::Write("old", old_invoke, kNever));

  // Majority side detects the dead leader and elects its own.
  sim->RunFor(3 * kSecond);
  const sim::NodeId new_leader =
      cluster.IsLeader(servers[1]) ? servers[1] : servers[2];
  const sim::NodeId follower =
      new_leader == servers[1] ? servers[2] : servers[1];
  EXPECT_TRUE(cluster.IsLeader(new_leader));

  // The new leader chooses a conflicting value in the same slot 0.
  {
    const int64_t invoke = sim->Now();
    std::optional<Result<Execution>> r;
    cluster.Propose(c1, new_leader, Command{Command::Type::kPut, "k", "new"},
                    [&](Result<Execution> res) { r = std::move(res); });
    sim->RunFor(2 * kSecond);
    EXPECT_TRUE(r.has_value() && r->ok());
    out.history.push_back(verify::Write("new", invoke, sim->Now()));
  }
  {  // R1: the new value is immediately readable on the majority side.
    const int64_t invoke = sim->Now();
    std::optional<Result<Execution>> r;
    cluster.Propose(c1, new_leader, Command{Command::Type::kGet, "k", "", 0},
                    [&](Result<Execution> res) { r = std::move(res); });
    sim->RunFor(2 * kSecond);
    EXPECT_TRUE(r.has_value() && r->ok() && (*r)->found);
    if (r.has_value() && r->ok() && (*r)->found) {
      EXPECT_EQ((*r)->value, "new");
      out.history.push_back(verify::Read((*r)->value, invoke, sim->Now()));
    }
  }

  // Crash the majority follower f (it has promised/accepted the new
  // leader's ballot), then move it to the OLD leader's side of the
  // partition before restarting it. The nemesis drives the crash so the
  // CrashParticipant machinery — state drop + WAL recovery — runs.
  sim::Nemesis nemesis(net.get(), servers, /*seed=*/7);
  nemesis.Execute(sim::FaultPlan().CrashAt(0, follower));
  sim->RunFor(100 * kMillisecond);
  net->Partition({{new_leader, c1}});  // n0, f, c0 now share a side
  nemesis.Execute(sim::FaultPlan().RestartAt(0, follower));
  sim->RunFor(3 * kSecond);

  // R_old: what does the old leader say now?
  {
    const int64_t invoke = sim->Now();
    std::optional<Result<Execution>> r;
    cluster.Propose(c0, n0, Command{Command::Type::kGet, "k", "", 0},
                    [&](Result<Execution> res) { r = std::move(res); });
    sim->RunFor(2 * kSecond);
    if (r.has_value() && r->ok() && (*r)->found) {
      out.stale_read_value = (*r)->value;
      out.history.push_back(verify::Read((*r)->value, invoke, sim->Now()));
    }
  }

  out.slot0_at_old_leader = cluster.ChosenAt(n0, 0);
  out.slot0_at_new_leader = cluster.ChosenAt(new_leader, 0);

  // Heal everything; a final read via the surviving leadership must see
  // "new" (the only acked write).
  nemesis.HealAll();
  net->Heal();
  sim->RunFor(3 * kSecond);
  {
    std::optional<sim::NodeId> leader = cluster.CurrentLeader();
    EXPECT_TRUE(leader.has_value());
    const int64_t invoke = sim->Now();
    std::optional<Result<Execution>> r;
    if (leader.has_value()) {
      cluster.Propose(c1, *leader, Command{Command::Type::kGet, "k", "", 0},
                      [&](Result<Execution> res) { r = std::move(res); });
      sim->RunFor(3 * kSecond);
    }
    EXPECT_TRUE(r.has_value() && r->ok() && (*r)->found);
    if (r.has_value() && r->ok() && (*r)->found) {
      out.history.push_back(verify::Read((*r)->value, invoke, sim->Now()));
    }
  }

  out.crash_recoveries = static_cast<uint64_t>(
      sim->metrics().global().CounterFor("crash.recoveries").value());
  out.wal_replayed = static_cast<uint64_t>(
      sim->metrics().global().CounterFor("wal.replayed_records").value());
  return out;
}

TEST(PaxosAmnesiaTest, ForgetfulAcceptorLosesSafetyWithoutJournal) {
  const Outcome out = RunSchedule(/*journal_acceptor_state=*/false);

  // The forgetful acceptor granted the old leader a second majority: the
  // same slot is chosen with two different values.
  ASSERT_TRUE(out.slot0_at_old_leader.has_value());
  ASSERT_TRUE(out.slot0_at_new_leader.has_value());
  EXPECT_NE(*out.slot0_at_old_leader, *out.slot0_at_new_leader);

  // The old leader serves the stale value after an acked read of "new".
  ASSERT_TRUE(out.stale_read_value.has_value());
  EXPECT_EQ(*out.stale_read_value, "old");

  // And the client-observed history is NOT linearizable.
  const verify::CheckResult lin = verify::CheckLinearizable(out.history);
  EXPECT_FALSE(lin.exhausted);
  EXPECT_FALSE(lin.linearizable);

  // The crash machinery really ran (state dropped + recovery attempted —
  // just with an empty journal to recover from).
  EXPECT_GE(out.crash_recoveries, 1u);
  EXPECT_EQ(out.wal_replayed, 0u);
}

TEST(PaxosAmnesiaTest, JournaledAcceptorKeepsSafety) {
  const Outcome out = RunSchedule(/*journal_acceptor_state=*/true);

  // The recovered promise rejects the old leader's stale ballot: no second
  // choice of slot 0, no stale read.
  ASSERT_TRUE(out.slot0_at_new_leader.has_value());
  if (out.slot0_at_old_leader.has_value()) {
    EXPECT_EQ(*out.slot0_at_old_leader, *out.slot0_at_new_leader);
  }
  EXPECT_FALSE(out.stale_read_value.has_value() &&
               *out.stale_read_value == "old");

  const verify::CheckResult lin = verify::CheckLinearizable(out.history);
  EXPECT_FALSE(lin.exhausted);
  EXPECT_TRUE(lin.linearizable);

  EXPECT_GE(out.crash_recoveries, 1u);
  EXPECT_GT(out.wal_replayed, 0u);
}

}  // namespace
}  // namespace evc::consensus
