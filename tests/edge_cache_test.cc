// Edge-cache tier: lease grant/serve/revoke protocol over the timeline
// store. The invariant under test everywhere: a cached entry served under a
// live lease is never behind an acked write on its key — writes block until
// every outstanding lease is revoked or has expired, and crash recovery
// fences writes for a full TTL in place of the forgotten lease table.

#include "cache/edge_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "sim/nemesis.h"

namespace evc::cache {
namespace {

using sim::kMillisecond;
using sim::kSecond;

constexpr sim::Time kTtl = 300 * kMillisecond;

class EdgeCacheTest : public ::testing::Test {
 protected:
  void Build(EdgeCacheOptions copt = {}, uint64_t seed = 11) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    net_ = std::make_unique<sim::Network>(
        sim_.get(), std::make_unique<sim::ConstantLatency>(10 * kMillisecond));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    repl::TimelineOptions topt;
    topt.replication_factor = 3;
    topt.rpc_timeout = 2 * kSecond;  // a gated write can wait out a TTL
    cluster_ = std::make_unique<repl::TimelineCluster>(rpc_.get(), topt);
    servers_ = cluster_->AddServers(3);
    copt.lease_ttl = kTtl;
    tier_ = std::make_unique<EdgeCacheTier>(rpc_.get(), cluster_.get(), copt);
    a_ = tier_->AddClient(net_->AddNode());
    b_ = tier_->AddClient(net_->AddNode());
  }

  void TearDown() override { tier_.reset(); }  // gate uninstalls before cluster

  // Steps the simulator in small increments and stops as soon as the op
  // resolves: lease lifetimes are short relative to a fixed drain budget,
  // so running a flat 2s here would expire every lease before the test's
  // assertions get to look at it.
  template <typename T>
  Result<T> AwaitOp(std::optional<Result<T>>* out, sim::Time budget) {
    for (sim::Time waited = 0; !out->has_value() && waited < budget;
         waited += 5 * kMillisecond) {
      sim_->RunFor(5 * kMillisecond);
    }
    EVC_CHECK(out->has_value());
    return **out;
  }

  Result<CachedRead> GetSync(EdgeCacheClient* c, const std::string& key,
                             sim::Time budget = 2 * kSecond) {
    std::optional<Result<CachedRead>> out;
    c->Get(key, 0, [&](Result<CachedRead> r) { out = std::move(r); });
    return AwaitOp(&out, budget);
  }

  Result<uint64_t> PutSync(EdgeCacheClient* c, const std::string& key,
                           const std::string& value,
                           sim::Time budget = 3 * kSecond) {
    std::optional<Result<uint64_t>> out;
    c->Put(key, value, [&](Result<uint64_t> r) { out = std::move(r); });
    return AwaitOp(&out, budget);
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<repl::TimelineCluster> cluster_;
  std::vector<sim::NodeId> servers_;
  std::unique_ptr<EdgeCacheTier> tier_;
  EdgeCacheClient* a_ = nullptr;
  EdgeCacheClient* b_ = nullptr;
};

TEST_F(EdgeCacheTest, MissInstallsLeaseThenHitServesLocally) {
  Build();
  ASSERT_TRUE(PutSync(a_, "k", "v1").ok());
  auto first = GetSync(a_, "k");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->found);
  EXPECT_EQ(first->value, "v1");
  EXPECT_FALSE(first->from_cache);
  EXPECT_EQ(tier_->stats().misses, 1u);
  EXPECT_EQ(tier_->stats().grants, 1u);
  EXPECT_EQ(a_->CachedSeqno("k"), 1u);

  // A hit is served without touching the network: done runs synchronously.
  bool done_synchronously = false;
  a_->Get("k", 0, [&](Result<CachedRead> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->from_cache);
    EXPECT_EQ(r->value, "v1");
    done_synchronously = true;
  });
  EXPECT_TRUE(done_synchronously);
  EXPECT_EQ(tier_->stats().hits, 1u);
}

TEST_F(EdgeCacheTest, LeaseExpiryTurnsHitsBackIntoMisses) {
  Build();
  ASSERT_TRUE(PutSync(a_, "k", "v1").ok());
  ASSERT_TRUE(GetSync(a_, "k").ok());
  ASSERT_EQ(a_->CachedSeqno("k"), 1u);
  sim_->RunFor(kTtl + kMillisecond);
  EXPECT_EQ(a_->CachedSeqno("k"), 0u);  // live-lease view: nothing servable
  const uint64_t misses_before = tier_->stats().misses;
  auto read = GetSync(a_, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->from_cache);
  EXPECT_EQ(tier_->stats().misses, misses_before + 1);
}

TEST_F(EdgeCacheTest, WriteRevokesEveryHolderBeforeAck) {
  Build();
  ASSERT_TRUE(PutSync(a_, "k", "v1").ok());
  ASSERT_TRUE(GetSync(a_, "k").ok());
  ASSERT_TRUE(GetSync(b_, "k").ok());
  ASSERT_EQ(a_->CachedSeqno("k"), 1u);
  ASSERT_EQ(b_->CachedSeqno("k"), 1u);

  auto put = PutSync(b_, "k", "v2");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(*put, 2u);
  // By ack time both copies are gone: the gate ran the revoke fan-out to
  // completion before the master applied the write.
  EXPECT_EQ(a_->CachedSeqno("k"), 0u);
  EXPECT_EQ(b_->CachedSeqno("k"), 0u);
  EXPECT_EQ(tier_->stats().writes_gated, 1u);
  EXPECT_GE(tier_->stats().revokes_acked, 2u);

  // No stale serve afterwards: the next read fetches v2.
  auto read = GetSync(a_, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->from_cache);
  EXPECT_EQ(read->value, "v2");
}

TEST_F(EdgeCacheTest, UnreachableHolderIsWaitedOutNotServedAround) {
  EdgeCacheOptions copt;
  copt.revoke_timeout = 50 * kMillisecond;
  copt.revoke_attempts = 2;
  Build(copt);
  ASSERT_TRUE(PutSync(b_, "k", "v1").ok());
  const sim::Time granted_after = sim_->Now();
  ASSERT_TRUE(GetSync(a_, "k").ok());
  ASSERT_EQ(a_->CachedSeqno("k"), 1u);

  // Gray-partition the holder: revokes can't reach it, but it still
  // considers itself healthy. The write may not be served around the lease
  // — it must wait until the lease has expired on its own.
  net_->SetNodeUp(a_->node(), false);
  auto put = PutSync(b_, "k", "v2");
  ASSERT_TRUE(put.ok());
  // The lease was granted no earlier than `granted_after`, so it expires no
  // earlier than granted_after + ttl; the ack cannot precede that.
  EXPECT_GE(sim_->Now(), granted_after + kTtl);
  EXPECT_GE(tier_->stats().revokes_expired, 1u);

  // The partitioned holder's copy died with the lease: once healed it has
  // nothing servable and reads through to the new value.
  net_->SetNodeUp(a_->node(), true);
  EXPECT_EQ(a_->CachedSeqno("k"), 0u);
  auto read = GetSync(a_, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->from_cache);
  EXPECT_EQ(read->value, "v2");
}

TEST_F(EdgeCacheTest, MasterCrashFencesWritesForOneTtl) {
  Build();
  ASSERT_TRUE(PutSync(a_, "k", "v1").ok());
  ASSERT_TRUE(GetSync(a_, "k").ok());  // an outstanding lease the crash forgets

  const sim::NodeId master = cluster_->MasterOf("k");
  sim::Nemesis nemesis(net_.get(), servers_, /*seed=*/5);
  nemesis.Execute(sim::FaultPlan()
                      .CrashAt(0, master)
                      .RestartAt(50 * kMillisecond, master));
  sim_->RunFor(60 * kMillisecond);
  const sim::Time restarted_at = sim_->Now();
  // Amnesia dropped the lease table; the fence stands in for it.
  EXPECT_EQ(tier_->OutstandingLeases(master), 0u);
  EXPECT_GE(tier_->FenceUntil(master), restarted_at);

  auto put = PutSync(b_, "k", "v2");
  ASSERT_TRUE(put.ok());
  // The write could not be acked while a forgotten pre-crash lease might
  // still be live: ack time >= restart + ttl (minus the 60ms already run).
  EXPECT_GE(sim_->Now(), restarted_at - 60 * kMillisecond + kTtl);
  EXPECT_GE(tier_->stats().writes_fenced, 1u);
}

TEST_F(EdgeCacheTest, MasterMoveFencesLeasesGrantedByOldMaster) {
  // When mastership of a record moves (live reconfiguration / manual
  // failover), the NEW master has no record of leases the OLD one granted.
  // A write through it must be fenced until those invisible leases have
  // provably expired — the key-scoped analogue of the crash fence.
  Build();
  ASSERT_TRUE(PutSync(a_, "k", "v1").ok());
  ASSERT_TRUE(GetSync(a_, "k").ok());  // lease granted by the old master
  ASSERT_EQ(a_->CachedSeqno("k"), 1u);
  const sim::NodeId old_master = cluster_->MasterOf("k");
  sim::NodeId new_master = 0;
  for (sim::NodeId s : servers_) {
    if (s != old_master) {
      new_master = s;
      break;
    }
  }
  std::optional<Status> moved;
  cluster_->MigrateMaster("k", new_master, [&](Status s) { moved = s; });
  for (sim::Time w = 0; !moved.has_value() && w < 2 * kSecond;
       w += 5 * kMillisecond) {
    sim_->RunFor(5 * kMillisecond);
  }
  ASSERT_TRUE(moved.has_value() && moved->ok());
  EXPECT_GE(tier_->stats().master_move_fences, 1u);

  auto put = PutSync(b_, "k", "v2");
  ASSERT_TRUE(put.ok());
  EXPECT_GE(tier_->stats().writes_fenced, 1u);
  // By ack time the pre-move lease is dead: no cached copy of v1 survives
  // an acked v2 anywhere.
  EXPECT_EQ(a_->CachedSeqno("k"), 0u);
  auto read = GetSync(a_, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "v2");
}

TEST_F(EdgeCacheTest, MasterMoveWithoutFenceServesStaleReproducingTheBug) {
  // Regression proof for the fence above: with fence_on_master_move off,
  // a post-move write acks while an old-epoch holder still serves the
  // overwritten value from a live lease — the exact anomaly the satellite
  // bugfix closes. Deleting the fence makes THIS test's stale serve the
  // shipped behavior, so it documents (and pins) the failure mode.
  EdgeCacheOptions copt;
  copt.fence_on_master_move = false;
  Build(copt);
  ASSERT_TRUE(PutSync(a_, "k", "v1").ok());
  ASSERT_TRUE(GetSync(a_, "k").ok());
  ASSERT_EQ(a_->CachedSeqno("k"), 1u);
  const sim::NodeId old_master = cluster_->MasterOf("k");
  sim::NodeId new_master = 0;
  for (sim::NodeId s : servers_) {
    if (s != old_master) {
      new_master = s;
      break;
    }
  }
  std::optional<Status> moved;
  cluster_->MigrateMaster("k", new_master, [&](Status s) { moved = s; });
  for (sim::Time w = 0; !moved.has_value() && w < 2 * kSecond;
       w += 5 * kMillisecond) {
    sim_->RunFor(5 * kMillisecond);
  }
  ASSERT_TRUE(moved.has_value() && moved->ok());

  // The new master sees no leases on "k", so the write acks unfenced...
  auto put = PutSync(b_, "k", "v2");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(tier_->stats().writes_fenced, 0u);
  // ...while the pre-move holder still serves v1 under a live lease: a
  // cached read is now BEHIND an acked write.
  ASSERT_EQ(a_->CachedSeqno("k"), 1u);
  auto read = GetSync(a_, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->from_cache);
  EXPECT_EQ(read->value, "v1");
}

TEST_F(EdgeCacheTest, MinSeqnoFloorBypassesAStaleEntry) {
  Build();
  ASSERT_TRUE(PutSync(a_, "k", "v1").ok());
  ASSERT_TRUE(GetSync(a_, "k").ok());
  ASSERT_EQ(a_->CachedSeqno("k"), 1u);
  // A session floor above the cached seqno must not be served from cache,
  // even under a live lease.
  std::optional<Result<CachedRead>> out;
  a_->Get("k", /*min_seqno=*/5, [&](Result<CachedRead> r) { out = std::move(r); });
  sim_->RunFor(2 * kSecond);
  ASSERT_TRUE(out.has_value() && out->ok());
  EXPECT_FALSE((*out)->from_cache);
  // The master itself is at seqno 1 < 5: the unmet floor is surfaced, not
  // silently swallowed (timeline kAtLeast semantics carried through).
  EXPECT_TRUE((*out)->min_seqno_unmet);
  EXPECT_EQ(tier_->stats().bypasses, 1u);
}

}  // namespace
}  // namespace evc::cache
