#include "consensus/paxos.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace evc::consensus {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class PaxosTest : public ::testing::Test {
 protected:
  void Build(int servers = 3, uint64_t seed = 5,
             sim::Time latency_lo = 2 * kMillisecond,
             sim::Time latency_hi = 10 * kMillisecond) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    net_ = std::make_unique<sim::Network>(
        sim_.get(),
        std::make_unique<sim::UniformLatency>(latency_lo, latency_hi));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    cluster_ = std::make_unique<PaxosCluster>(rpc_.get(), PaxosOptions{});
    servers_ = cluster_->AddServers(servers);
    client_node_ = net_->AddNode();
    client_ = std::make_unique<PaxosKvClient>(cluster_.get(), sim_.get(),
                                              client_node_, servers_);
    cluster_->Start();
    sim_->RunFor(kSecond);  // let a leader emerge
  }

  Result<uint64_t> PutSync(const std::string& key, const std::string& value,
                           sim::Time budget = 10 * kSecond) {
    std::optional<Result<uint64_t>> out;
    client_->Put(key, value, [&](Result<uint64_t> r) { out = std::move(r); });
    sim_->RunFor(budget);
    EVC_CHECK(out.has_value());
    return *out;
  }

  Result<std::string> GetSync(const std::string& key,
                              sim::Time budget = 10 * kSecond) {
    std::optional<Result<std::string>> out;
    client_->Get(key, [&](Result<std::string> r) { out = std::move(r); });
    sim_->RunFor(budget);
    EVC_CHECK(out.has_value());
    return *out;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<PaxosCluster> cluster_;
  std::vector<sim::NodeId> servers_;
  sim::NodeId client_node_ = 0;
  std::unique_ptr<PaxosKvClient> client_;
};

TEST_F(PaxosTest, ElectsALeader) {
  Build();
  EXPECT_TRUE(cluster_->CurrentLeader().has_value());
  EXPECT_GE(cluster_->stats().leaderships_won, 1u);
}

TEST_F(PaxosTest, PutThenGetLinearizable) {
  Build();
  auto put = PutSync("k", "v1");
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  auto get = GetSync("k");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(*get, "v1");
  // Overwrite and read again: must see the newest value.
  ASSERT_TRUE(PutSync("k", "v2").ok());
  auto get2 = GetSync("k");
  ASSERT_TRUE(get2.ok());
  EXPECT_EQ(*get2, "v2");
}

TEST_F(PaxosTest, GetMissingIsNotFound) {
  Build();
  auto get = GetSync("missing");
  EXPECT_TRUE(get.status().IsNotFound());
}

TEST_F(PaxosTest, AllReplicasApplyIdenticalLog) {
  Build();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(PutSync("key" + std::to_string(i % 3),
                        "value" + std::to_string(i))
                    .ok());
  }
  sim_->RunFor(2 * kSecond);  // learn/catch-up drain
  // Every chosen slot must agree across servers.
  const uint64_t applied0 = cluster_->AppliedIndex(servers_[0]);
  EXPECT_GE(applied0, 10u);
  for (uint64_t slot = 0; slot < applied0; ++slot) {
    auto v0 = cluster_->ChosenAt(servers_[0], slot);
    ASSERT_TRUE(v0.has_value());
    for (size_t s = 1; s < servers_.size(); ++s) {
      auto vs = cluster_->ChosenAt(servers_[s], slot);
      if (vs.has_value()) {
        EXPECT_EQ(*vs, *v0) << "slot " << slot << " server " << s;
      }
    }
  }
  // And the applied KV state converges.
  for (int i = 0; i < 3; ++i) {
    const std::string key = "key" + std::to_string(i);
    auto v0 = cluster_->AppliedValue(servers_[0], key);
    ASSERT_TRUE(v0.has_value());
    for (size_t s = 1; s < servers_.size(); ++s) {
      EXPECT_EQ(cluster_->AppliedValue(servers_[s], key), v0);
    }
  }
}

TEST_F(PaxosTest, LeaderCrashTriggersFailover) {
  Build();
  ASSERT_TRUE(PutSync("stable", "before-crash").ok());
  const auto old_leader = cluster_->CurrentLeader();
  ASSERT_TRUE(old_leader.has_value());
  net_->SetNodeUp(*old_leader, false);
  sim_->RunFor(3 * kSecond);  // elections
  const auto new_leader = cluster_->CurrentLeader();
  ASSERT_TRUE(new_leader.has_value());
  EXPECT_NE(*new_leader, *old_leader);
  // Committed data survives, and new writes work.
  auto get = GetSync("stable");
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(*get, "before-crash");
  ASSERT_TRUE(PutSync("fresh", "after-crash").ok());
  auto get2 = GetSync("fresh");
  ASSERT_TRUE(get2.ok());
  EXPECT_EQ(*get2, "after-crash");
}

TEST_F(PaxosTest, MinorityPartitionCannotCommit) {
  Build(5);
  ASSERT_TRUE(PutSync("k", "v0").ok());
  const auto leader = cluster_->CurrentLeader();
  ASSERT_TRUE(leader.has_value());
  // Isolate the leader with one follower (minority of 2); keep the client
  // with the majority side.
  std::vector<sim::NodeId> minority = {*leader};
  std::vector<sim::NodeId> majority = {client_node_};
  for (const sim::NodeId s : servers_) {
    if (s == *leader) continue;
    if (minority.size() < 2) {
      minority.push_back(s);
    } else {
      majority.push_back(s);
    }
  }
  net_->Partition({minority, majority});
  sim_->RunFor(3 * kSecond);  // majority elects a new leader
  // Client (majority side) can still write.
  auto put = PutSync("k", "v1", 15 * kSecond);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  auto get = GetSync("k");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(*get, "v1");
  // Minority-side servers never applied the new write.
  for (const sim::NodeId s : minority) {
    auto v = cluster_->AppliedValue(s, "k");
    EXPECT_TRUE(!v.has_value() || *v == "v0");
  }
  // Heal: minority catches up to the majority's log.
  net_->Heal();
  sim_->RunFor(5 * kSecond);
  for (const sim::NodeId s : minority) {
    EXPECT_EQ(cluster_->AppliedValue(s, "k"),
              std::optional<std::string>("v1"));
  }
}

TEST_F(PaxosTest, ProgressUnderMessageLoss) {
  Build(3, /*seed=*/9);
  net_->set_loss_rate(0.10);
  int succeeded = 0;
  for (int i = 0; i < 10; ++i) {
    auto put = PutSync("key" + std::to_string(i), "v", 20 * kSecond);
    if (put.ok()) ++succeeded;
  }
  EXPECT_GE(succeeded, 8);  // client retries ride out most loss
  net_->set_loss_rate(0.0);
  auto get = GetSync("key0");
  EXPECT_TRUE(get.ok() || get.status().IsNotFound());
}

TEST_F(PaxosTest, DuplicatedMessagesAreHarmless) {
  Build(3, /*seed=*/13);
  net_->set_duplicate_rate(0.3);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(PutSync("k", "v" + std::to_string(i)).ok());
  }
  auto get = GetSync("k");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(*get, "v9");
}

TEST_F(PaxosTest, FollowerRestartCatchesUpViaHeartbeat) {
  Build();
  // Crash a follower, commit entries, restart it.
  const auto leader = cluster_->CurrentLeader();
  ASSERT_TRUE(leader.has_value());
  sim::NodeId follower = 0;
  for (const sim::NodeId s : servers_) {
    if (s != *leader) {
      follower = s;
      break;
    }
  }
  net_->SetNodeUp(follower, false);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(PutSync("k" + std::to_string(i), "v").ok());
  }
  net_->SetNodeUp(follower, true);
  sim_->RunFor(5 * kSecond);  // heartbeat-driven catch-up
  EXPECT_GE(cluster_->AppliedIndex(follower), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cluster_->AppliedValue(follower, "k" + std::to_string(i)),
              std::optional<std::string>("v"));
  }
  EXPECT_GE(cluster_->stats().catchups, 1u);
}

// Safety under chaos: random crashes, partitions, loss — after healing, all
// servers agree on every chosen slot (divergence would also trip the
// EVC_CHECK inside OnChosen and abort).
class PaxosChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaxosChaosTest, NoDivergenceUnderChaos) {
  const uint64_t seed = GetParam();
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             2 * kMillisecond, 15 * kMillisecond));
  sim::Rpc rpc(&net);
  PaxosCluster cluster(&rpc, PaxosOptions{});
  auto servers = cluster.AddServers(5);
  const sim::NodeId client_node = net.AddNode();
  PaxosKvClient client(&cluster, &sim, client_node, servers);
  cluster.Start();
  sim.RunFor(kSecond);

  Rng rng(seed * 777 + 1);
  int ok_count = 0;
  for (int round = 0; round < 15; ++round) {
    // Random fault injection.
    const double dice = rng.NextDouble();
    if (dice < 0.25) {
      const sim::NodeId victim = servers[rng.NextBounded(5)];
      net.SetNodeUp(victim, false);
    } else if (dice < 0.4) {
      for (const sim::NodeId s : servers) net.SetNodeUp(s, true);
      net.Heal();
    } else if (dice < 0.55) {
      // Partition two random servers away from the rest (client stays with
      // the majority side).
      const size_t x = rng.NextBounded(5);
      size_t y = rng.NextBounded(5);
      if (y == x) y = (y + 1) % 5;
      std::vector<sim::NodeId> minority = {servers[x], servers[y]};
      std::vector<sim::NodeId> majority = {client_node};
      for (const sim::NodeId s : servers) {
        if (s != servers[x] && s != servers[y]) majority.push_back(s);
      }
      net.Partition({minority, majority});
    }
    // Issue a write. The result slot is shared-owned: with retries the
    // callback can fire after this round's 8-second window has passed.
    auto put = std::make_shared<std::optional<Result<uint64_t>>>();
    client.Put("chaos", "v" + std::to_string(round),
               [put](Result<uint64_t> r) { *put = std::move(r); });
    sim.RunFor(8 * kSecond);
    if (put->has_value() && (*put)->ok()) ++ok_count;
  }
  // Heal everything and drain.
  for (const sim::NodeId s : servers) net.SetNodeUp(s, true);
  net.Heal();
  sim.RunFor(10 * kSecond);

  // Every chosen slot agrees across all servers.
  uint64_t max_applied = 0;
  for (const sim::NodeId s : servers) {
    max_applied = std::max(max_applied, cluster.AppliedIndex(s));
  }
  EXPECT_GT(max_applied, 0u);
  for (uint64_t slot = 0; slot < max_applied; ++slot) {
    std::optional<std::string> agreed;
    for (const sim::NodeId s : servers) {
      auto v = cluster.ChosenAt(s, slot);
      if (!v.has_value()) continue;
      if (!agreed.has_value()) {
        agreed = v;
      } else {
        EXPECT_EQ(*v, *agreed) << "divergence at slot " << slot;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace evc::consensus
