#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace evc::workload {
namespace {

TEST(WorkloadTest, MixProportionsRoughlyRespected) {
  WorkloadConfig config = WorkloadConfig::YcsbB();  // 95/5
  WorkloadGenerator gen(config, 1);
  std::map<OpType, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().type];
  EXPECT_NEAR(static_cast<double>(counts[OpType::kRead]) / n, 0.95, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kUpdate]) / n, 0.05, 0.01);
  EXPECT_EQ(counts[OpType::kInsert], 0);
}

TEST(WorkloadTest, YcsbAIsHalfAndHalf) {
  WorkloadGenerator gen(WorkloadConfig::YcsbA(), 2);
  std::map<OpType, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.Next().type];
  EXPECT_NEAR(counts[OpType::kRead], counts[OpType::kUpdate], 600);
}

TEST(WorkloadTest, YcsbCIsReadOnly) {
  WorkloadGenerator gen(WorkloadConfig::YcsbC(), 3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(gen.Next().type, OpType::kRead);
  }
}

TEST(WorkloadTest, YcsbFHasRmw) {
  WorkloadGenerator gen(WorkloadConfig::YcsbF(), 4);
  std::map<OpType, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.Next().type];
  EXPECT_GT(counts[OpType::kReadModifyWrite], 9000);
}

TEST(WorkloadTest, InsertsExtendKeyspace) {
  WorkloadConfig config = WorkloadConfig::YcsbD();
  config.record_count = 100;
  WorkloadGenerator gen(config, 5);
  const uint64_t before = gen.live_record_count();
  int inserts = 0;
  std::set<std::string> inserted_keys;
  for (int i = 0; i < 5000; ++i) {
    const Op op = gen.Next();
    if (op.type == OpType::kInsert) {
      ++inserts;
      EXPECT_TRUE(inserted_keys.insert(op.key).second)
          << "duplicate inserted key " << op.key;
    }
  }
  EXPECT_GT(inserts, 0);
  EXPECT_EQ(gen.live_record_count(), before + inserts);
}

TEST(WorkloadTest, KeysStayInLiveRange) {
  WorkloadConfig config;
  config.record_count = 50;
  WorkloadGenerator gen(config, 6);
  for (int i = 0; i < 5000; ++i) {
    const Op op = gen.Next();
    // Keys are "user<i>" with i < live_record_count.
    const uint64_t index = std::stoull(op.key.substr(4));
    EXPECT_LT(index, gen.live_record_count());
  }
}

TEST(WorkloadTest, ValuesHaveConfiguredSizeAndEmbedKey) {
  WorkloadConfig config = WorkloadConfig::YcsbA();
  config.value_size = 64;
  WorkloadGenerator gen(config, 7);
  for (int i = 0; i < 100; ++i) {
    const Op op = gen.Next();
    if (op.type == OpType::kUpdate) {
      EXPECT_EQ(op.value.size(), 64u);
      EXPECT_EQ(op.value.rfind(op.key, 0), 0u) << "value embeds its key";
    }
  }
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadGenerator a(WorkloadConfig::YcsbA(), 9);
  WorkloadGenerator b(WorkloadConfig::YcsbA(), 9);
  for (int i = 0; i < 1000; ++i) {
    const Op op_a = a.Next();
    const Op op_b = b.Next();
    EXPECT_EQ(op_a.type, op_b.type);
    EXPECT_EQ(op_a.key, op_b.key);
    EXPECT_EQ(op_a.value, op_b.value);
    // Interned ids are part of the determinism contract too: same-seed runs
    // must intern keys in the same order (the ids reach hot paths and
    // caches keyed by them).
    EXPECT_EQ(op_a.key_id, op_b.key_id);
  }
}

TEST(WorkloadTest, KeyIdsRoundTripAndAreInjective) {
  WorkloadGenerator gen(WorkloadConfig::YcsbA(), 4);
  std::map<KeyId, std::string> seen;  // id -> key
  for (int i = 0; i < 2000; ++i) {
    const Op op = gen.Next();
    ASSERT_NE(op.key_id, kInvalidKeyId);
    // Round-trip: the id resolves back to exactly the op's key string.
    EXPECT_EQ(gen.KeyNameOf(op.key_id), op.key);
    // Injective per run: an id never maps to two different keys, and a
    // repeated key always gets its original id.
    auto [it, inserted] = seen.emplace(op.key_id, op.key);
    if (!inserted) EXPECT_EQ(it->second, op.key);
  }
  EXPECT_EQ(gen.interned_keys(), seen.size());
}

TEST(WorkloadTest, ZipfianSkewsTowardFewKeys) {
  WorkloadConfig config = WorkloadConfig::YcsbA();
  config.record_count = 10000;
  WorkloadGenerator gen(config, 10);
  std::map<std::string, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().key];
  // Top-10 keys should absorb a large share of traffic.
  std::vector<int> freq;
  for (const auto& [key, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  int top10 = 0;
  for (int i = 0; i < 10 && i < static_cast<int>(freq.size()); ++i) {
    top10 += freq[i];
  }
  EXPECT_GT(static_cast<double>(top10) / n, 0.2);
}

TEST(WorkloadTest, UniformDoesNotSkew) {
  WorkloadConfig config;
  config.distribution = KeyDistributionKind::kUniform;
  config.record_count = 100;
  WorkloadGenerator gen(config, 11);
  std::map<std::string, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().key];
  for (const auto& [key, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.01, 0.005) << key;
  }
}

class WorkloadPresetTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadPresetTest, ProportionsSumToOne) {
  WorkloadConfig config;
  switch (GetParam()) {
    case 0: config = WorkloadConfig::YcsbA(); break;
    case 1: config = WorkloadConfig::YcsbB(); break;
    case 2: config = WorkloadConfig::YcsbC(); break;
    case 3: config = WorkloadConfig::YcsbD(); break;
    case 4: config = WorkloadConfig::YcsbF(); break;
  }
  EXPECT_NEAR(config.read_proportion + config.update_proportion +
                  config.insert_proportion + config.rmw_proportion,
              1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Presets, WorkloadPresetTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace evc::workload
