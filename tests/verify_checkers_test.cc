// Unit tests for the property checkers in src/verify/ that the fault
// fuzzer composes: eventual convergence, session guarantees, and causal
// consistency. Each test builds a tiny hand-written history with a known
// verdict.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "verify/causal_checker.h"
#include "verify/convergence.h"
#include "verify/session_guarantees.h"

namespace evc::verify {
namespace {

// ---------------------------------------------------------------------------
// Convergence.

TEST(ConvergenceTest, AgreeingReplicasWithCoveredWritesPass) {
  ReplicaState state{{"a", {"1"}}, {"b", {"2", "3"}}};
  std::vector<ReplicaState> replicas{state, state, state};
  std::vector<AckedWrite> acked{{"a", "1"}, {"b", "2"}, {"b", "3"}};
  const ConvergenceResult result = CheckConvergence(replicas, acked);
  EXPECT_TRUE(result.ok()) << result.ToString();
  EXPECT_TRUE(result.replicas_agree);
  EXPECT_EQ(result.lost_write_count, 0u);
}

TEST(ConvergenceTest, DivergentReplicasFailWithKeyNamed) {
  ReplicaState a{{"k", {"1"}}};
  ReplicaState b{{"k", {"2"}}};
  const ConvergenceResult result = CheckConvergence({a, b}, {});
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.replicas_agree);
  ASSERT_FALSE(result.divergent_keys.empty());
  EXPECT_EQ(result.divergent_keys[0], "k");
}

TEST(ConvergenceTest, MissingKeyCountsAsDivergence) {
  ReplicaState a{{"k", {"1"}}};
  ReplicaState b{};
  const ConvergenceResult result = CheckConvergence({a, b}, {});
  EXPECT_FALSE(result.replicas_agree);
}

TEST(ConvergenceTest, LostAckedWriteIsReported) {
  ReplicaState state{{"k", {"new"}}};
  // "gone" was acked but is neither visible nor covered by the default
  // membership predicate.
  const ConvergenceResult result =
      CheckConvergence({state, state}, {{"k", "new"}, {"k", "gone"}});
  EXPECT_TRUE(result.replicas_agree);
  EXPECT_EQ(result.lost_write_count, 1u);
  ASSERT_EQ(result.lost_writes.size(), 1u);
  EXPECT_EQ(result.lost_writes[0].value, "gone");
  EXPECT_FALSE(result.ok());
}

TEST(ConvergenceTest, CoveredPredicateAcceptsSupersededWrites) {
  // A supersession-aware predicate (here: "any final value with a larger
  // numeric suffix dominates") accepts the overwritten write.
  ReplicaState state{{"k", {"v9"}}};
  const CoveredPredicate covered = [](const AckedWrite& write,
                                      const std::vector<std::string>& final) {
    for (const std::string& value : final) {
      if (value.substr(1) >= write.value.substr(1)) return true;
    }
    return false;
  };
  const ConvergenceResult result =
      CheckConvergence({state}, {{"k", "v3"}, {"k", "v9"}}, covered);
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST(ConvergenceTest, ZeroReplicasIsVacuouslyConvergedButWritesStillChecked) {
  const ConvergenceResult result = CheckConvergence({}, {{"k", "v"}});
  EXPECT_TRUE(result.replicas_agree);
  EXPECT_EQ(result.lost_write_count, 1u);
}

// ---------------------------------------------------------------------------
// Session guarantees.

TEST(SessionGuaranteeTest, CleanMultiSessionHistoryPasses) {
  std::vector<RecordedOp> history{
      RecWrite(0, "k", "w0", 0, 10),
      RecRead(0, "k", {"w0"}, 20, 30),
      RecWrite(1, "k", "w1", 40, 50),
      RecRead(1, "k", {"w1"}, 60, 70),
      RecRead(0, "k", {"w1"}, 80, 90),  // newer than w0: fine
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST(SessionGuaranteeTest, RywViolationOnProvablyStaleRead) {
  // Session 0 acks w1 then reads back only w0, whose write wholly precedes
  // w1 — a provable read-your-writes violation.
  std::vector<RecordedOp> history{
      RecWrite(1, "k", "w0", 0, 10),
      RecWrite(0, "k", "w1", 20, 30),
      RecRead(0, "k", {"w0"}, 40, 50),
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_EQ(result.ryw_violations, 1u);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations[0].kind, SessionViolation::Kind::kRyw);
  EXPECT_EQ(result.violations[0].expected, "w1");
}

TEST(SessionGuaranteeTest, RywViolationOnNotFound) {
  std::vector<RecordedOp> history{
      RecWrite(0, "k", "w0", 0, 10),
      RecRead(0, "k", {}, 20, 30),  // not-found after own acked write
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_EQ(result.ryw_violations, 1u);
}

TEST(SessionGuaranteeTest, UnackedWritesCreateNoObligations) {
  std::vector<RecordedOp> history{
      RecWrite(0, "k", "w0", 0, 10, /*acked=*/false),
      RecRead(0, "k", {}, 20, 30),
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST(SessionGuaranteeTest, ConcurrentValuesAreConservativelyAccepted) {
  // The read returns a value whose producing write overlaps the obligated
  // write in real time — not provably stale, so no violation.
  std::vector<RecordedOp> history{
      RecWrite(1, "k", "w0", 0, 100),   // overlaps w1
      RecWrite(0, "k", "w1", 20, 30),
      RecRead(0, "k", {"w0"}, 40, 50),
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST(SessionGuaranteeTest, MonotonicReadsViolation) {
  // Session 0 observes w1 then later reads back only the older w0.
  std::vector<RecordedOp> history{
      RecWrite(1, "k", "w0", 0, 10),
      RecWrite(1, "k", "w1", 20, 30),
      RecRead(0, "k", {"w1"}, 40, 50),
      RecRead(0, "k", {"w0"}, 60, 70),
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_EQ(result.mr_violations, 1u);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations[0].kind, SessionViolation::Kind::kMr);
}

TEST(SessionGuaranteeTest, MonotonicWritesViolation) {
  // Session 1 writes a then b (different keys). Session 0 observes b but a
  // later read of the first key provably misses a.
  std::vector<RecordedOp> history{
      RecWrite(1, "x", "wx", 0, 10),
      RecWrite(1, "y", "wy", 20, 30),
      RecRead(0, "y", {"wy"}, 40, 50),
      RecRead(0, "x", {}, 60, 70),  // not-found: wx invisible
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_EQ(result.mw_violations, 1u);
}

TEST(SessionGuaranteeTest, WritesFollowReadsViolation) {
  // Session 1 reads wx, then writes wy. Session 0 observes wy, so wx is
  // owed; its later read of x provably misses it.
  std::vector<RecordedOp> history{
      RecWrite(2, "x", "wx", 0, 10),
      RecRead(1, "x", {"wx"}, 20, 30),
      RecWrite(1, "y", "wy", 40, 50),
      RecRead(0, "y", {"wy"}, 60, 70),
      RecRead(0, "x", {}, 80, 90),
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_EQ(result.wfr_violations, 1u);
}

TEST(SessionGuaranteeTest, DuplicateWriteValuesMarkHistoryMalformed) {
  std::vector<RecordedOp> history{
      RecWrite(0, "k", "dup", 0, 10),
      RecWrite(1, "k", "dup", 20, 30),
  };
  const SessionCheckResult result = CheckSessionGuarantees(history);
  EXPECT_TRUE(result.malformed);
  EXPECT_FALSE(result.ok());
}

TEST(SessionGuaranteeTest, OptionsDisableIndividualGuarantees) {
  std::vector<RecordedOp> history{
      RecWrite(1, "k", "w0", 0, 10),
      RecWrite(0, "k", "w1", 20, 30),
      RecRead(0, "k", {"w0"}, 40, 50),  // RYW violation if checked
  };
  SessionCheckOptions options;
  options.check_ryw = false;
  const SessionCheckResult result = CheckSessionGuarantees(history, options);
  EXPECT_TRUE(result.ok()) << result.ToString();
}

// ---------------------------------------------------------------------------
// Causal consistency.

CausalRecordedOp CausalWrite(int session, std::string key, causal::WriteId id,
                             std::vector<causal::Dependency> deps = {}) {
  CausalRecordedOp op;
  op.kind = CausalRecordedOp::Kind::kWrite;
  op.session = session;
  op.key = std::move(key);
  op.id = id;
  op.deps = std::move(deps);
  return op;
}

CausalRecordedOp CausalReadOp(int session, std::string key, causal::WriteId id,
                              std::vector<causal::Dependency> deps = {}) {
  CausalRecordedOp op;
  op.kind = CausalRecordedOp::Kind::kRead;
  op.session = session;
  op.key = std::move(key);
  op.id = id;
  op.deps = std::move(deps);
  return op;
}

CausalRecordedOp CausalMiss(int session, std::string key) {
  CausalRecordedOp op;
  op.kind = CausalRecordedOp::Kind::kRead;
  op.session = session;
  op.key = std::move(key);
  op.found = false;
  return op;
}

TEST(CausalCheckerTest, CleanHistoryPasses) {
  std::vector<CausalRecordedOp> history{
      CausalWrite(0, "photo", {1, 0}),
      CausalReadOp(1, "photo", {1, 0}),
      CausalWrite(1, "comment", {2, 1}, {{"photo", {1, 0}}}),
      CausalReadOp(2, "comment", {2, 1}, {{"photo", {1, 0}}}),
      CausalReadOp(2, "photo", {1, 0}),
  };
  const CausalCheckResult result = CheckCausalHistory(history);
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST(CausalCheckerTest, MonotonicViolationWhenIdGoesBackwards) {
  std::vector<CausalRecordedOp> history{
      CausalReadOp(0, "k", {5, 0}),
      CausalReadOp(0, "k", {3, 0}),
  };
  const CausalCheckResult result = CheckCausalHistory(history);
  EXPECT_EQ(result.monotonic_violations, 1u);
  EXPECT_FALSE(result.ok());
}

TEST(CausalCheckerTest, DependencyViolationWhenOwedWriteInvisible) {
  // Session 0 observes the comment (which depends on photo@2) but then
  // reads an older photo.
  std::vector<CausalRecordedOp> history{
      CausalReadOp(0, "comment", {3, 1}, {{"photo", {2, 0}}}),
      CausalReadOp(0, "photo", {1, 0}),
  };
  const CausalCheckResult result = CheckCausalHistory(history);
  EXPECT_EQ(result.dependency_violations, 1u);
  ASSERT_FALSE(result.details.empty());
}

TEST(CausalCheckerTest, NotFoundOnOwedKeyIsViolation) {
  std::vector<CausalRecordedOp> history{
      CausalReadOp(0, "comment", {3, 1}, {{"photo", {2, 0}}}),
      CausalMiss(0, "photo"),
  };
  const CausalCheckResult result = CheckCausalHistory(history);
  EXPECT_EQ(result.not_found_violations, 1u);
}

TEST(CausalCheckerTest, OwnWritesCreateObligations) {
  // A session's own write of photo obliges its later reads of photo to be
  // at least that new (local datacenter moves forward only).
  std::vector<CausalRecordedOp> history{
      CausalWrite(0, "photo", {4, 0}),
      CausalReadOp(0, "photo", {2, 0}),
  };
  const CausalCheckResult result = CheckCausalHistory(history);
  EXPECT_GE(result.total(), 1u) << result.ToString();
}

TEST(CausalCheckerTest, SessionsAreIndependent) {
  // Another session reading an older version is eventual-consistency slack,
  // not a causal violation.
  std::vector<CausalRecordedOp> history{
      CausalReadOp(0, "k", {5, 0}),
      CausalReadOp(1, "k", {3, 0}),
  };
  const CausalCheckResult result = CheckCausalHistory(history);
  EXPECT_TRUE(result.ok()) << result.ToString();
}

}  // namespace
}  // namespace evc::verify
