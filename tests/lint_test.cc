// Self-test for tools/evc_lint: fixture-based positive/negative coverage per
// check, suppression-comment parsing, --werror exit codes, and the
// compile-fail proof that a dropped Status is now a compile error (the
// [[nodiscard]] attribute on Status/Result), not just a scanner finding.

#include "evc_lint/lint.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace evc::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(EVC_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Scans one fixture file (by real path, so path-based exemptions see the
/// fixture directory, not src/obs).
std::vector<Finding> ScanFixture(const std::string& name) {
  std::vector<std::string> errors;
  std::vector<Finding> findings =
      ScanPaths({FixturePath(name)}, Options{}, &errors);
  EXPECT_TRUE(errors.empty());
  return findings;
}

std::vector<int> LinesOf(const std::vector<Finding>& findings,
                         const std::string& check) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    if (f.check == check) lines.push_back(f.line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(EvcLint, ListsFiveChecks) {
  const std::vector<std::string>& names = AllCheckNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_NE(std::find(names.begin(), names.end(), "wall-clock"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "raw-random"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "unordered-iteration"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "discarded-status"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "check-macro"), names.end());
}

TEST(EvcLint, WallClockPositive) {
  std::vector<Finding> findings = ScanFixture("wall_clock_bad.cc");
  EXPECT_EQ(LinesOf(findings, "wall-clock"),
            (std::vector<int>{7, 8, 9, 10, 12}));
  EXPECT_EQ(findings.size(), 5u) << "no other checks should fire";
}

TEST(EvcLint, WallClockNegative) {
  EXPECT_TRUE(ScanFixture("wall_clock_ok.cc").empty());
}

TEST(EvcLint, WallClockObsExporterPathIsExempt) {
  // The same violating content, presented as the obs exporter shim, is clean:
  // the exporter is the one component allowed to stamp real timestamps.
  SourceFile shim{"src/obs/export.cc", ReadFixture("wall_clock_bad.cc")};
  EXPECT_TRUE(ScanFiles({shim}).empty());
}

TEST(EvcLint, RawRandomPositive) {
  std::vector<Finding> findings = ScanFixture("raw_random_bad.cc");
  EXPECT_EQ(LinesOf(findings, "raw-random"),
            (std::vector<int>{6, 7, 8, 9, 10}));
  EXPECT_EQ(findings.size(), 5u);
}

TEST(EvcLint, RawRandomNegative) {
  EXPECT_TRUE(ScanFixture("raw_random_ok.cc").empty());
}

TEST(EvcLint, UnorderedIterationPositive) {
  std::vector<Finding> findings = ScanFixture("unordered_iteration_bad.cc");
  // Member, getter, local, and alias-typed parameter.
  EXPECT_EQ(LinesOf(findings, "unordered-iteration"),
            (std::vector<int>{18, 19, 21, 22}));
  EXPECT_EQ(findings.size(), 4u);
}

TEST(EvcLint, UnorderedIterationNegative) {
  EXPECT_TRUE(ScanFixture("unordered_iteration_ok.cc").empty());
}

TEST(EvcLint, UnorderedDeclarationInHeaderFlagsIterationInOtherFile) {
  // The declaration (a header) and the iteration (a .cc) are different
  // files; the symbol table must span the whole scan.
  SourceFile header{"reg.h",
                    "#include <unordered_map>\n"
                    "struct Reg { std::unordered_map<int, int> by_id_; };\n"};
  SourceFile impl{"reg.cc",
                  "#include \"reg.h\"\n"
                  "int Sum(const Reg& r) {\n"
                  "  int t = 0;\n"
                  "  for (const auto& kv : r.by_id_) t += kv.second;\n"
                  "  return t;\n"
                  "}\n"};
  std::vector<Finding> findings = ScanFiles({header, impl});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "unordered-iteration");
  EXPECT_EQ(findings[0].file, "reg.cc");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(EvcLint, DiscardedStatusPositive) {
  std::vector<Finding> findings = ScanFixture("discarded_status_bad.cc");
  // Free function, member call, and a dropped Result<T>.
  EXPECT_EQ(LinesOf(findings, "discarded-status"),
            (std::vector<int>{19, 20, 21}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(EvcLint, DiscardedStatusNegative) {
  EXPECT_TRUE(ScanFixture("discarded_status_ok.cc").empty());
}

TEST(EvcLint, CheckMacroPositive) {
  std::vector<Finding> findings = ScanFixture("check_macro_bad.cc");
  EXPECT_EQ(LinesOf(findings, "check-macro"), (std::vector<int>{4, 7}));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(EvcLint, CheckMacroNegative) {
  EXPECT_TRUE(ScanFixture("check_macro_ok.cc").empty());
}

TEST(EvcLint, MalformedSuppressionsReportAndDoNotSilence) {
  std::vector<Finding> findings = ScanFixture("suppression_bad.cc");
  // Each malformed directive is reported...
  EXPECT_EQ(LinesOf(findings, "bad-suppression"),
            (std::vector<int>{10, 12, 14, 16}));
  // ...and the finding it sat on survives.
  EXPECT_EQ(LinesOf(findings, "unordered-iteration"),
            (std::vector<int>{11, 13, 15, 17}));
}

TEST(EvcLint, WellFormedSuppressionsSilence) {
  // Line-above, same-line, and multi-check allow() forms, all with reasons.
  EXPECT_TRUE(ScanFixture("suppression_ok.cc").empty());
}

TEST(EvcLint, FindingFormatIsFileLineCheck) {
  Finding f{"wall-clock", "src/sim/foo.cc", 12, "no wall clocks"};
  EXPECT_EQ(FormatFinding(f), "src/sim/foo.cc:12: [wall-clock] no wall clocks");
}

TEST(EvcLint, ExitCodeCleanScanIsZero) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({FixturePath("wall_clock_ok.cc"), "--werror"},
                           &out),
            0);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), "evc_lint: clean");
}

TEST(EvcLint, ExitCodeFindingsWithoutWerrorIsZero) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({FixturePath("wall_clock_bad.cc")}, &out), 0);
  EXPECT_GT(out.size(), 1u);  // findings are still printed
}

TEST(EvcLint, ExitCodeFindingsWithWerrorIsOne) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({FixturePath("wall_clock_bad.cc"), "--werror"},
                           &out),
            1);
}

TEST(EvcLint, ExitCodeBadSuppressionWithWerrorIsOne) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({FixturePath("suppression_bad.cc"), "--werror"},
                           &out),
            1);
}

TEST(EvcLint, ExitCodeUsageErrorsAreTwo) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({"--no-such-flag"}, &out), 2);
  out.clear();
  EXPECT_EQ(RunCommandLine({"--check=no-such-check"}, &out), 2);
  out.clear();
  EXPECT_EQ(RunCommandLine({"no/such/path.cc"}, &out), 2);
}

TEST(EvcLint, CheckFilterRunsOnlySelectedChecks) {
  std::vector<std::string> out;
  // raw_random_bad has only raw-random findings; filtering to wall-clock
  // must make it scan clean.
  EXPECT_EQ(RunCommandLine({"--check=wall-clock",
                            FixturePath("raw_random_bad.cc"), "--werror"},
                           &out),
            0);
}

TEST(EvcLint, ListChecksExitsZero) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({"--list-checks"}, &out), 0);
  EXPECT_EQ(out.size(), 5u);
}

// --- intern-table unordered-iteration audit ------------------------------
//
// KeyInterner's reverse index is an unordered_map whose exemption stance is
// "lookup-only": the check stays armed for the file, and the header must
// scan clean because nothing iterates the index — not because the container
// is whitelisted. Both directions are pinned here against the REAL header.

std::string ReadRealSource(const std::string& rel) {
  std::ifstream in(std::string(EVC_SRC_INCLUDE_DIR) + "/" + rel,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing source " << rel;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(EvcLint, InternTableLookupOnlyScansClean) {
  // The shipped interner performs only find()/emplace() on index_; a full
  // unfiltered scan of the real header must produce zero findings.
  SourceFile header{"src/common/interner.h",
                    ReadRealSource("common/interner.h")};
  std::vector<Finding> findings = ScanFiles({header});
  EXPECT_TRUE(findings.empty())
      << "common/interner.h no longer scans clean; if a loop over the "
         "reverse index was added, it breaks the lookup-only contract";
}

TEST(EvcLint, InternTableIterationWouldStillBeFlagged) {
  // The exemption is NOT a blanket one for interner code: appending a loop
  // over index_ to the very same header must trip unordered-iteration. This
  // proves the audit above is load-bearing (the check is armed for the
  // file), not vacuously green.
  std::string code = ReadRealSource("common/interner.h");
  code +=
      "\nnamespace evc {\ninline size_t SumIds(const KeyInterner& in) {\n"
      "  size_t total = 0;\n"
      "  for (const auto& [name, id] : in.debug_index()) total += id;\n"
      "  return total;\n}\n}  // namespace evc\n";
  // Give the scanner an unambiguous declaration for the iterated name in
  // the same translation unit (mirrors how a real accessor would leak it).
  code +=
      "\nnamespace evc {\nstd::unordered_map<std::string_view, KeyId>"
      " debug_index;\n"
      "inline size_t SumAll() {\n  size_t t = 0;\n"
      "  for (const auto& [k, v] : debug_index) t += v;\n  return t;\n}\n"
      "}  // namespace evc\n";
  SourceFile patched{"src/common/interner.h", std::move(code)};
  std::vector<Finding> findings = ScanFiles({patched});
  EXPECT_FALSE(LinesOf(findings, "unordered-iteration").empty())
      << "iterating the intern table went unflagged: the unordered-"
         "iteration check has been disarmed for common/interner.h";
}

// --- [[nodiscard]] compile-fail regression -------------------------------
//
// The scanner's discarded-status check is a belt; the compiler attribute is
// the suspenders. These two tests invoke the project compiler on paired
// fixtures and pin that dropping a Status/Result FAILS to compile while the
// consuming twin compiles cleanly.

int CompileFixture(const std::string& name, bool quiet) {
  std::string cmd = std::string(EVC_CXX_COMPILER) +
                    " -std=c++20 -fsyntax-only -Wall -Werror=unused-result -I" +
                    std::string(EVC_SRC_INCLUDE_DIR) + " " + FixturePath(name);
  if (quiet) cmd += " 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(NodiscardRegression, DroppedStatusFailsToCompile) {
  EXPECT_NE(CompileFixture("nodiscard_fail.cc", /*quiet=*/true), 0)
      << "a dropped Status/Result compiled: [[nodiscard]] regressed";
}

TEST(NodiscardRegression, ConsumedStatusCompiles) {
  EXPECT_EQ(CompileFixture("nodiscard_ok.cc", /*quiet=*/false), 0);
}

}  // namespace
}  // namespace evc::lint
