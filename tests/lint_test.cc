// Self-test for tools/evc_lint: fixture-based positive/negative coverage per
// check (including the v2 checks: unordered-snapshot, pointer-taint,
// thread-hostile, layering, include-cycle), suppression-comment parsing,
// --werror exit codes, the JSON/DOT/worklist output modes, deterministic
// directory walks, and the compile-fail proof that a dropped Status is now a
// compile error (the [[nodiscard]] attribute on Status/Result), not just a
// scanner finding. The real tree is pinned too: zero layering violations,
// zero cycles, and a clean --werror sweep over src/bench/tools/tests.

#include "evc_lint/lint.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace evc::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(EVC_LINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Scans one fixture file (by real path, so path-based exemptions see the
/// fixture directory, not src/obs).
std::vector<Finding> ScanFixture(const std::string& name) {
  std::vector<std::string> errors;
  std::vector<Finding> findings =
      ScanPaths({FixturePath(name)}, Options{}, &errors);
  EXPECT_TRUE(errors.empty());
  return findings;
}

std::vector<int> LinesOf(const std::vector<Finding>& findings,
                         const std::string& check) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    if (f.check == check) lines.push_back(f.line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(EvcLint, ListsTenChecks) {
  const std::vector<std::string>& names = AllCheckNames();
  ASSERT_EQ(names.size(), 10u);
  for (const char* expected :
       {"wall-clock", "raw-random", "unordered-iteration",
        "unordered-snapshot", "discarded-status", "check-macro",
        "pointer-taint", "thread-hostile", "layering", "include-cycle"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing check " << expected;
  }
}

TEST(EvcLint, WallClockPositive) {
  std::vector<Finding> findings = ScanFixture("wall_clock_bad.cc");
  EXPECT_EQ(LinesOf(findings, "wall-clock"),
            (std::vector<int>{7, 8, 9, 10, 12}));
  EXPECT_EQ(findings.size(), 5u) << "no other checks should fire";
}

TEST(EvcLint, WallClockNegative) {
  EXPECT_TRUE(ScanFixture("wall_clock_ok.cc").empty());
}

TEST(EvcLint, WallClockObsExporterPathIsExempt) {
  // The same violating content, presented as the obs exporter shim, is clean:
  // the exporter is the one component allowed to stamp real timestamps.
  SourceFile shim{"src/obs/export.cc", ReadFixture("wall_clock_bad.cc")};
  EXPECT_TRUE(ScanFiles({shim}).empty());
}

TEST(EvcLint, RawRandomPositive) {
  std::vector<Finding> findings = ScanFixture("raw_random_bad.cc");
  EXPECT_EQ(LinesOf(findings, "raw-random"),
            (std::vector<int>{6, 7, 8, 9, 10}));
  EXPECT_EQ(findings.size(), 5u);
}

TEST(EvcLint, RawRandomNegative) {
  EXPECT_TRUE(ScanFixture("raw_random_ok.cc").empty());
}

TEST(EvcLint, UnorderedIterationPositive) {
  std::vector<Finding> findings = ScanFixture("unordered_iteration_bad.cc");
  // Member, getter, local, and alias-typed parameter.
  EXPECT_EQ(LinesOf(findings, "unordered-iteration"),
            (std::vector<int>{18, 19, 21, 22}));
  EXPECT_EQ(findings.size(), 4u);
}

TEST(EvcLint, UnorderedIterationNegative) {
  EXPECT_TRUE(ScanFixture("unordered_iteration_ok.cc").empty());
}

TEST(EvcLint, UnorderedDeclarationInHeaderFlagsIterationInOtherFile) {
  // The declaration (a header) and the iteration (a .cc) are different
  // files; the symbol table must span the whole scan.
  SourceFile header{"reg.h",
                    "#include <unordered_map>\n"
                    "struct Reg { std::unordered_map<int, int> by_id_; };\n"};
  SourceFile impl{"reg.cc",
                  "#include \"reg.h\"\n"
                  "int Sum(const Reg& r) {\n"
                  "  int t = 0;\n"
                  "  for (const auto& kv : r.by_id_) t += kv.second;\n"
                  "  return t;\n"
                  "}\n"};
  std::vector<Finding> findings = ScanFiles({header, impl});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "unordered-iteration");
  EXPECT_EQ(findings[0].file, "reg.cc");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(EvcLint, UnorderedSnapshotPositive) {
  std::vector<Finding> findings = ScanFixture("unordered_snapshot_bad.cc");
  // Iterator-pair constructor, assign(), and a back_inserter copy.
  EXPECT_EQ(LinesOf(findings, "unordered-snapshot"),
            (std::vector<int>{14, 20, 25}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(EvcLint, UnorderedSnapshotNegative) {
  // Same copies, but every target is std::sort'ed before use.
  EXPECT_TRUE(ScanFixture("unordered_snapshot_ok.cc").empty());
}

TEST(EvcLint, PointerTaintPositive) {
  std::vector<Finding> findings = ScanFixture("pointer_taint_bad.cc");
  // %p format, reinterpret_cast to uintptr_t, C-style cast, hash of pointer.
  EXPECT_EQ(LinesOf(findings, "pointer-taint"),
            (std::vector<int>{15, 19, 23, 27}));
  EXPECT_EQ(findings.size(), 4u);
}

TEST(EvcLint, PointerTaintNegative) {
  // Stable-id alternatives; pointer-to-pointer reinterpret_cast stays legal.
  EXPECT_TRUE(ScanFixture("pointer_taint_ok.cc").empty());
}

TEST(EvcLint, ThreadHostilePositive) {
  // The audit is scoped to src/, so the fixture content is presented under a
  // synthetic src/ path (core is a real module, so no layering noise).
  SourceFile f{"src/core/fixture.cc", ReadFixture("thread_hostile_bad.cc")};
  std::vector<Finding> findings = ScanFiles({f});
  // Mutable global, mutable function-local static, thread_local.
  EXPECT_EQ(LinesOf(findings, "thread-hostile"),
            (std::vector<int>{10, 13, 17}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(EvcLint, ThreadHostileNegative) {
  SourceFile f{"src/core/fixture.cc", ReadFixture("thread_hostile_ok.cc")};
  EXPECT_TRUE(ScanFiles({f}).empty());
}

TEST(EvcLint, ThreadHostileOnlyAuditsSrc) {
  // The same hostile content under its real tests/lint_fixtures path is not
  // audited: tests and tools may keep process-wide state.
  std::vector<Finding> findings = ScanFixture("thread_hostile_bad.cc");
  EXPECT_TRUE(LinesOf(findings, "thread-hostile").empty());
}

// --- layering DAG ---------------------------------------------------------

TEST(EvcLint, LayerOfPathMapsModulesToLayers) {
  EXPECT_EQ(LayerOfPath("src/common/status.h"), "common");
  EXPECT_EQ(LayerOfPath("src/sim/simulator.h"), "sim");
  // The sim directory hosts two higher sub-layers: the network/fault model
  // and the RPC stack.
  EXPECT_EQ(LayerOfPath("src/sim/network.h"), "net");
  EXPECT_EQ(LayerOfPath("src/sim/rpc.h"), "rpc");
  EXPECT_EQ(LayerOfPath("src/evc.h"), "api");
  EXPECT_EQ(LayerOfPath("src/cache/edge_cache.cc"), "cache");
  EXPECT_EQ(LayerOfPath("tools/evc_lint/lint.cc"), "tools");
}

TEST(EvcLint, LayeringUpwardIncludeIsFlagged) {
  // obs (rank 1) reaching up into sim (rank 2).
  SourceFile f{"src/obs/uses_sim.cc", ReadFixture("layering_upward_bad.cc")};
  std::vector<Finding> findings = ScanFiles({f});
  EXPECT_EQ(LinesOf(findings, "layering"), (std::vector<int>{4}));
  EXPECT_EQ(findings.size(), 1u);
}

TEST(EvcLint, LayeringDownwardIncludeIsClean) {
  // sim (rank 2) depending on common (rank 0) and obs (rank 1) is the legal
  // direction.
  SourceFile f{"src/sim/uses_common.cc", ReadFixture("layering_ok.cc")};
  EXPECT_TRUE(ScanFiles({f}).empty());
}

TEST(EvcLint, LayeringUnknownSrcDirectoryIsFlagged) {
  // A src/ module outside the declared layer table must be reported (at line
  // 1) so new directories get ranked instead of silently escaping the DAG.
  SourceFile f{"src/newmod/foo.cc", "int F() { return 0; }\n"};
  std::vector<Finding> findings = ScanFiles({f});
  EXPECT_EQ(LinesOf(findings, "layering"), (std::vector<int>{1}));
}

TEST(EvcLint, IncludeCycleAcrossFixtureHeadersIsFlagged) {
  std::vector<std::string> errors;
  std::vector<Finding> findings =
      ScanPaths({FixturePath("layering_cycle_a.h"),
                 FixturePath("layering_cycle_b.h")},
                Options{}, &errors);
  EXPECT_TRUE(errors.empty());
  // One deduplicated report for the two-file cycle, anchored at the
  // lexicographically-first member's include line.
  std::vector<int> lines = LinesOf(findings, "include-cycle");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 6);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(EvcLint, HalfOfACycleAloneIsNotACycle) {
  // Scanning only one half leaves the include unresolved inside the scanned
  // set; no edge, no cycle.
  std::vector<std::string> errors;
  std::vector<Finding> findings =
      ScanPaths({FixturePath("layering_cycle_a.h")}, Options{}, &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(LinesOf(findings, "include-cycle").empty());
}

TEST(EvcLint, SameRankLayerCycleIsFlagged) {
  // clock and obs share rank 1: each may include the other's layer only
  // while the layer-level graph stays acyclic.
  SourceFile tick{"src/clock/tick.h", "#include \"obs/hook.h\"\nint T();\n"};
  SourceFile hook{"src/obs/hook.h", "#include \"clock/tick.h\"\nint H();\n"};
  std::vector<Finding> findings = ScanFiles({tick, hook});
  // Both the file-level cycle and the same-rank layer cycle are reported.
  EXPECT_EQ(LinesOf(findings, "include-cycle").size(), 2u);
  EXPECT_TRUE(LinesOf(findings, "layering").empty())
      << "same-rank includes are not upward edges";
}

// --- real-tree pins -------------------------------------------------------

std::string ReadRealSource(const std::string& rel) {
  std::ifstream in(std::string(EVC_SRC_INCLUDE_DIR) + "/" + rel,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing source " << rel;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string ReadRepoFile(const std::string& rel) {
  std::ifstream in(std::string(EVC_REPO_ROOT_DIR) + "/" + rel,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing repo file " << rel;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Removes the first line containing `marker`; fails the test if absent.
std::string StripLineContaining(std::string code, const std::string& marker) {
  size_t at = code.find(marker);
  EXPECT_NE(at, std::string::npos) << "marker vanished: " << marker;
  if (at == std::string::npos) return code;
  size_t begin = code.rfind('\n', at);
  begin = (begin == std::string::npos) ? 0 : begin + 1;
  size_t end = code.find('\n', at);
  end = (end == std::string::npos) ? code.size() : end + 1;
  return code.erase(begin, end - begin);
}

TEST(EvcLint, RealTreeLayeringIsAcyclicAndDownwardOnly) {
  // The acceptance bar for the layer DAG: zero upward edges and zero cycles
  // across the real src/ tree.
  Options options;
  options.only_checks = {"layering", "include-cycle"};
  std::vector<std::string> errors;
  std::vector<Finding> findings =
      ScanPaths({std::string(EVC_REPO_ROOT_DIR) + "/src"}, options, &errors);
  EXPECT_TRUE(errors.empty());
  for (const Finding& f : findings) {
    ADD_FAILURE() << "layer violation in real tree: " << FormatFinding(f);
  }
}

TEST(EvcLint, GLevelThreadHostileAllowIsLoadBearing) {
  // logging.cc's g_level carries allow(thread-hostile) because it is an
  // atomic with relaxed ordering. As shipped the file scans clean...
  std::string code = ReadRealSource("common/logging.cc");
  SourceFile as_shipped{"src/common/logging.cc", code};
  EXPECT_TRUE(LinesOf(ScanFiles({as_shipped}), "thread-hostile").empty());
  // ...and stripping the allow line resurfaces exactly that finding, so the
  // suppression is load-bearing, not decorative.
  SourceFile stripped{"src/common/logging.cc",
                      StripLineContaining(code, "allow(thread-hostile)")};
  EXPECT_EQ(LinesOf(ScanFiles({stripped}), "thread-hostile").size(), 1u);
}

TEST(EvcLint, SlabTestPointerTaintAllowIsLoadBearing) {
  // slab_test asserts alignment via an address cast under a reasoned
  // allow(pointer-taint); the finding must come back if the allow goes.
  std::string code = ReadRepoFile("tests/slab_test.cc");
  SourceFile as_shipped{"tests/slab_test.cc", code};
  EXPECT_TRUE(LinesOf(ScanFiles({as_shipped}), "pointer-taint").empty());
  SourceFile stripped{"tests/slab_test.cc",
                      StripLineContaining(code, "allow(pointer-taint)")};
  EXPECT_EQ(LinesOf(ScanFiles({stripped}), "pointer-taint").size(), 1u);
}

TEST(EvcLint, TreeWideWerrorSweepIsClean) {
  // The exact invocation CI runs (fixtures excluded — they are deliberately
  // dirty). This pins the whole-tree acceptance criterion as a unit test.
  std::string root(EVC_REPO_ROOT_DIR);
  std::vector<std::string> out;
  int rc = RunCommandLine({"--werror", "--exclude=lint_fixtures",
                           root + "/src", root + "/bench", root + "/tools",
                           root + "/tests"},
                          &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(rc, 0) << "tree no longer lint-clean; first line: " << out.front();
  EXPECT_EQ(out.back(), "evc_lint: clean");
}

// --- deterministic directory walk ----------------------------------------

TEST(EvcLint, ListSourceFilesWalksInSortedOrder) {
  namespace fs = std::filesystem;
  fs::path root = fs::path(testing::TempDir()) / "evc_lint_walk";
  fs::remove_all(root);
  fs::create_directories(root / "zeta");
  fs::create_directories(root / "alpha");
  for (const char* rel :
       {"zeta/m.cc", "alpha/b.h", "alpha/a.cc", "top.cc", "notes.txt"}) {
    std::ofstream(root / rel) << "// stub\n";
  }
  std::vector<std::string> errors;
  std::vector<std::string> files = ListSourceFiles({root.string()}, &errors);
  EXPECT_TRUE(errors.empty());
  // Directories and files interleave in bytewise order; each directory's
  // entries are sorted before recursing; non-source files are skipped.
  std::vector<std::string> expected = {
      (root / "alpha/a.cc").generic_string(),
      (root / "alpha/b.h").generic_string(),
      (root / "top.cc").generic_string(),
      (root / "zeta/m.cc").generic_string(),
  };
  EXPECT_EQ(files, expected);
  // And the walk is reproducible call-over-call.
  EXPECT_EQ(ListSourceFiles({root.string()}, &errors), expected);
  fs::remove_all(root);
}

// --- suppressions ---------------------------------------------------------

TEST(EvcLint, DiscardedStatusPositive) {
  std::vector<Finding> findings = ScanFixture("discarded_status_bad.cc");
  // Free function, member call, and a dropped Result<T>.
  EXPECT_EQ(LinesOf(findings, "discarded-status"),
            (std::vector<int>{19, 20, 21}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(EvcLint, DiscardedStatusNegative) {
  EXPECT_TRUE(ScanFixture("discarded_status_ok.cc").empty());
}

TEST(EvcLint, CheckMacroPositive) {
  std::vector<Finding> findings = ScanFixture("check_macro_bad.cc");
  EXPECT_EQ(LinesOf(findings, "check-macro"), (std::vector<int>{4, 7}));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(EvcLint, CheckMacroNegative) {
  EXPECT_TRUE(ScanFixture("check_macro_ok.cc").empty());
}

TEST(EvcLint, MalformedSuppressionsReportAndDoNotSilence) {
  std::vector<Finding> findings = ScanFixture("suppression_bad.cc");
  // Each malformed directive is reported...
  EXPECT_EQ(LinesOf(findings, "bad-suppression"),
            (std::vector<int>{10, 12, 14, 16}));
  // ...and the finding it sat on survives.
  EXPECT_EQ(LinesOf(findings, "unordered-iteration"),
            (std::vector<int>{11, 13, 15, 17}));
}

TEST(EvcLint, WellFormedSuppressionsSilence) {
  // Line-above, same-line, and multi-check allow() forms, all with reasons.
  EXPECT_TRUE(ScanFixture("suppression_ok.cc").empty());
}

TEST(EvcLint, FindingFormatIsFileLineCheck) {
  Finding f{"wall-clock", "src/sim/foo.cc", 12, "no wall clocks"};
  EXPECT_EQ(FormatFinding(f), "src/sim/foo.cc:12: [wall-clock] no wall clocks");
}

// --- command line ---------------------------------------------------------

TEST(EvcLint, ExitCodeCleanScanIsZero) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({FixturePath("wall_clock_ok.cc"), "--werror"},
                           &out),
            0);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), "evc_lint: clean");
}

TEST(EvcLint, ExitCodeFindingsWithoutWerrorIsZero) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({FixturePath("wall_clock_bad.cc")}, &out), 0);
  EXPECT_GT(out.size(), 1u);  // findings are still printed
}

TEST(EvcLint, ExitCodeFindingsWithWerrorIsOne) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({FixturePath("wall_clock_bad.cc"), "--werror"},
                           &out),
            1);
}

TEST(EvcLint, ExitCodeBadSuppressionWithWerrorIsOne) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({FixturePath("suppression_bad.cc"), "--werror"},
                           &out),
            1);
}

TEST(EvcLint, ExitCodeUsageErrorsAreTwo) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({"--no-such-flag"}, &out), 2);
  out.clear();
  EXPECT_EQ(RunCommandLine({"--check=no-such-check"}, &out), 2);
  out.clear();
  EXPECT_EQ(RunCommandLine({"no/such/path.cc"}, &out), 2);
  out.clear();
  EXPECT_EQ(RunCommandLine({"--format=bogus"}, &out), 2);
  out.clear();
  EXPECT_EQ(RunCommandLine({"--layers=bogus"}, &out), 2);
}

TEST(EvcLint, CheckFilterRunsOnlySelectedChecks) {
  std::vector<std::string> out;
  // raw_random_bad has only raw-random findings; filtering to wall-clock
  // must make it scan clean.
  EXPECT_EQ(RunCommandLine({"--check=wall-clock",
                            FixturePath("raw_random_bad.cc"), "--werror"},
                           &out),
            0);
}

TEST(EvcLint, ExcludeFlagSkipsMatchingPaths) {
  std::vector<std::string> out;
  // The dirty fixture is the only input; excluding it leaves a clean scan.
  EXPECT_EQ(RunCommandLine({"--werror", "--exclude=wall_clock",
                            FixturePath("wall_clock_bad.cc")},
                           &out),
            0);
}

TEST(EvcLint, ListChecksExitsZero) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({"--list-checks"}, &out), 0);
  EXPECT_EQ(out.size(), 10u);
}

// --- machine-readable outputs ---------------------------------------------

TEST(EvcLint, JsonFormatEmitsParsableSchema) {
  std::vector<std::string> out;
  EXPECT_EQ(
      RunCommandLine({"--format=json", FixturePath("wall_clock_bad.cc")},
                     &out),
      0);
  ASSERT_EQ(out.size(), 1u) << "json mode must emit exactly one document";
  auto doc = obs::Json::Parse(out[0]);
  ASSERT_TRUE(doc.ok()) << "--format=json emitted invalid JSON";
  ASSERT_TRUE(doc.value().is_array());
  const auto& arr = doc.value().AsArray();
  ASSERT_EQ(arr.size(), 5u);
  std::vector<int> lines;
  for (const obs::Json& item : arr) {
    ASSERT_TRUE(item.is_object());
    const obs::Json* path = item.Find("path");
    const obs::Json* line = item.Find("line");
    const obs::Json* check = item.Find("check");
    const obs::Json* message = item.Find("message");
    ASSERT_NE(path, nullptr);
    ASSERT_NE(line, nullptr);
    ASSERT_NE(check, nullptr);
    ASSERT_NE(message, nullptr);
    EXPECT_TRUE(path->is_string());
    EXPECT_TRUE(line->is_int());
    EXPECT_TRUE(check->is_string());
    EXPECT_TRUE(message->is_string());
    EXPECT_EQ(check->AsString(), "wall-clock");
    EXPECT_NE(path->AsString().find("wall_clock_bad.cc"), std::string::npos);
    lines.push_back(static_cast<int>(line->AsInt()));
  }
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<int>{7, 8, 9, 10, 12}));
}

TEST(EvcLint, JsonFormatCleanScanIsEmptyArray) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({"--format=json", FixturePath("wall_clock_ok.cc")},
                           &out),
            0);
  ASSERT_EQ(out.size(), 1u);
  auto doc = obs::Json::Parse(out[0]);
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc.value().is_array());
  EXPECT_TRUE(doc.value().AsArray().empty());
}

TEST(EvcLint, JsonEscapesSpecialCharacters) {
  std::vector<Finding> findings = {
      {"wall-clock", "we\"ird\\path.cc", 3, "msg with \"quotes\"\nand tab\t"}};
  auto doc = obs::Json::Parse(FindingsToJson(findings));
  ASSERT_TRUE(doc.ok()) << "escaping produced invalid JSON";
  const auto& arr = doc.value().AsArray();
  ASSERT_EQ(arr.size(), 1u);
  EXPECT_EQ(arr[0].Find("path")->AsString(), "we\"ird\\path.cc");
  EXPECT_EQ(arr[0].Find("message")->AsString(),
            "msg with \"quotes\"\nand tab\t");
}

TEST(EvcLint, LayersDotExportsTheObservedGraph) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine(
                {"--layers=dot", std::string(EVC_REPO_ROOT_DIR) + "/src"},
                &out),
            0);
  ASSERT_GT(out.size(), 2u);
  EXPECT_EQ(out.front(), "digraph evc_layers {");
  EXPECT_EQ(out.back(), "}");
  std::string joined;
  for (const std::string& l : out) joined += l + "\n";
  // A known downward edge from the real tree...
  EXPECT_NE(joined.find("\"sim\" -> \"common\""), std::string::npos);
  // ...and no red upward edges anywhere.
  EXPECT_EQ(joined.find("UPWARD"), std::string::npos);
}

TEST(EvcLint, RuntimeWorklistReportsSimReferencesInStoreLayers) {
  std::vector<std::string> out;
  EXPECT_EQ(RunCommandLine({"--runtime-worklist",
                            std::string(EVC_REPO_ROOT_DIR) + "/src"},
                           &out),
            0);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().rfind("runtime-worklist:", 0), 0u)
      << "summary line missing; got: " << out.back();
  // The store layers still lean on sim:: today (that is the point of the
  // worklist); at least one concrete reference must be listed.
  bool has_sim_ref = false;
  for (const std::string& l : out) {
    if (l.find("sim::") != std::string::npos) has_sim_ref = true;
  }
  EXPECT_TRUE(has_sim_ref);
}

// --- intern-table unordered-iteration audit ------------------------------
//
// KeyInterner's reverse index is an unordered_map whose exemption stance is
// "lookup-only": the check stays armed for the file, and the header must
// scan clean because nothing iterates the index — not because the container
// is whitelisted. Both directions are pinned here against the REAL header.

TEST(EvcLint, InternTableLookupOnlyScansClean) {
  // The shipped interner performs only find()/emplace() on index_; a full
  // unfiltered scan of the real header must produce zero findings.
  SourceFile header{"src/common/interner.h",
                    ReadRealSource("common/interner.h")};
  std::vector<Finding> findings = ScanFiles({header});
  EXPECT_TRUE(findings.empty())
      << "common/interner.h no longer scans clean; if a loop over the "
         "reverse index was added, it breaks the lookup-only contract";
}

TEST(EvcLint, InternTableIterationWouldStillBeFlagged) {
  // The exemption is NOT a blanket one for interner code: appending a loop
  // over index_ to the very same header must trip unordered-iteration. This
  // proves the audit above is load-bearing (the check is armed for the
  // file), not vacuously green.
  std::string code = ReadRealSource("common/interner.h");
  code +=
      "\nnamespace evc {\ninline size_t SumIds(const KeyInterner& in) {\n"
      "  size_t total = 0;\n"
      "  for (const auto& [name, id] : in.debug_index()) total += id;\n"
      "  return total;\n}\n}  // namespace evc\n";
  // Give the scanner an unambiguous declaration for the iterated name in
  // the same translation unit (mirrors how a real accessor would leak it).
  code +=
      "\nnamespace evc {\nstd::unordered_map<std::string_view, KeyId>"
      " debug_index;\n"
      "inline size_t SumAll() {\n  size_t t = 0;\n"
      "  for (const auto& [k, v] : debug_index) t += v;\n  return t;\n}\n"
      "}  // namespace evc\n";
  SourceFile patched{"src/common/interner.h", std::move(code)};
  std::vector<Finding> findings = ScanFiles({patched});
  EXPECT_FALSE(LinesOf(findings, "unordered-iteration").empty())
      << "iterating the intern table went unflagged: the unordered-"
         "iteration check has been disarmed for common/interner.h";
}

// --- [[nodiscard]] compile-fail regression -------------------------------
//
// The scanner's discarded-status check is a belt; the compiler attribute is
// the suspenders. These two tests invoke the project compiler on paired
// fixtures and pin that dropping a Status/Result FAILS to compile while the
// consuming twin compiles cleanly.

int CompileFixture(const std::string& name, bool quiet) {
  std::string cmd = std::string(EVC_CXX_COMPILER) +
                    " -std=c++20 -fsyntax-only -Wall -Werror=unused-result -I" +
                    std::string(EVC_SRC_INCLUDE_DIR) + " " + FixturePath(name);
  if (quiet) cmd += " 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(NodiscardRegression, DroppedStatusFailsToCompile) {
  EXPECT_NE(CompileFixture("nodiscard_fail.cc", /*quiet=*/true), 0)
      << "a dropped Status/Result compiled: [[nodiscard]] regressed";
}

TEST(NodiscardRegression, ConsumedStatusCompiles) {
  EXPECT_EQ(CompileFixture("nodiscard_ok.cc", /*quiet=*/false), 0);
}

}  // namespace
}  // namespace evc::lint
