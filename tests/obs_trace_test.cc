#include "obs/trace.h"

#include <gtest/gtest.h>

namespace evc::obs {
namespace {

TEST(Tracer, RecordsSpanFieldsOnEnd) {
  Tracer tracer;
  const uint64_t id = tracer.Begin(/*node=*/4, "rpc.put", /*now=*/100);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(tracer.open_count(), 1u);
  tracer.End(id, /*now=*/250, "ok");
  EXPECT_EQ(tracer.open_count(), 0u);
  ASSERT_EQ(tracer.finished().size(), 1u);
  const Span& span = tracer.finished().front();
  EXPECT_EQ(span.id, id);
  EXPECT_EQ(span.parent, 0u);
  EXPECT_EQ(span.node, 4u);
  EXPECT_EQ(tracer.NameOf(span.name), "rpc.put");
  EXPECT_EQ(span.start, 100);
  EXPECT_EQ(span.end, 250);
  EXPECT_EQ(tracer.NameOf(span.outcome), "ok");
}

TEST(Tracer, BeginParentsToAmbientCurrentSpan) {
  Tracer tracer;
  const uint64_t root = tracer.Begin(0, "root", 0);
  uint64_t child = 0;
  {
    Tracer::Scope scope(&tracer, root);
    EXPECT_EQ(tracer.current(), root);
    child = tracer.Begin(0, "child", 10);
  }
  // Scope restored the previous (empty) ambient parent.
  EXPECT_EQ(tracer.current(), 0u);
  const uint64_t sibling = tracer.Begin(0, "sibling", 20);
  tracer.End(child, 15, "ok");
  tracer.End(sibling, 25, "ok");
  tracer.End(root, 30, "ok");
  ASSERT_EQ(tracer.finished().size(), 3u);
  EXPECT_EQ(tracer.finished()[0].parent, root);    // child
  EXPECT_EQ(tracer.finished()[1].parent, 0u);      // sibling
  EXPECT_EQ(tracer.finished()[2].parent, 0u);      // root
}

TEST(Tracer, ScopesNestAndRestore) {
  Tracer tracer;
  const uint64_t a = tracer.Begin(0, "a", 0);
  const uint64_t b = tracer.Begin(0, "b", 0);
  {
    Tracer::Scope outer(&tracer, a);
    {
      Tracer::Scope inner(&tracer, b);
      EXPECT_EQ(tracer.current(), b);
    }
    EXPECT_EQ(tracer.current(), a);
  }
  EXPECT_EQ(tracer.current(), 0u);
}

TEST(Tracer, BeginChildUsesExplicitParentAcrossNodes) {
  Tracer tracer;
  const uint64_t client = tracer.Begin(1, "rpc.get", 0);
  const uint64_t server = tracer.BeginChild(client, /*node=*/2,
                                            "rpc.server.get", 5);
  tracer.End(server, 9, "ok");
  tracer.End(client, 12, "ok");
  EXPECT_EQ(tracer.finished()[0].parent, client);
  EXPECT_EQ(tracer.finished()[0].node, 2u);
}

TEST(Tracer, RingOverflowDropsOldestKeepsNewest) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    const uint64_t id = tracer.Begin(0, "s", i);
    tracer.End(id, i, "ok");
  }
  EXPECT_EQ(tracer.finished().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.started(), 10u);
  EXPECT_EQ(tracer.ended(), 10u);
  // Ids are assigned 1..10; the survivors must be the newest four.
  EXPECT_EQ(tracer.finished().front().id, 7u);
  EXPECT_EQ(tracer.finished().back().id, 10u);
}

TEST(Tracer, EndOfUnknownIdIsIgnored) {
  Tracer tracer;
  tracer.End(12345, 0, "ok");
  const uint64_t id = tracer.Begin(0, "s", 0);
  tracer.End(id, 1, "ok");
  tracer.End(id, 2, "again");  // already closed
  EXPECT_EQ(tracer.finished().size(), 1u);
  EXPECT_EQ(tracer.NameOf(tracer.finished().front().outcome), "ok");
}

TEST(Tracer, DisabledTracerIsANoOp) {
  Tracer tracer;
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.Begin(0, "s", 0), 0u);
  EXPECT_EQ(tracer.started(), 0u);
  tracer.End(0, 1, "ok");
  EXPECT_TRUE(tracer.finished().empty());
}

TEST(Tracer, ClearDropsSpansButKeepsLifetimeCounters) {
  Tracer tracer;
  const uint64_t a = tracer.Begin(0, "a", 0);
  tracer.End(a, 1, "ok");
  tracer.Begin(0, "open", 2);
  tracer.Clear();
  EXPECT_TRUE(tracer.finished().empty());
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.started(), 2u);
  EXPECT_EQ(tracer.ended(), 1u);
}

}  // namespace
}  // namespace evc::obs
