#include "storage/versioned_store.h"

#include <gtest/gtest.h>

#include "common/encoding.h"
#include "common/rng.h"

namespace evc {
namespace {

LamportTimestamp Ts(uint64_t c, uint32_t node = 0) {
  return LamportTimestamp{c, node};
}

TEST(VersionedStoreTest, GetMissingIsEmpty) {
  VersionedStore store(0);
  EXPECT_TRUE(store.Get("nope").empty());
  EXPECT_TRUE(store.ContextFor("nope").empty());
  EXPECT_EQ(store.KeyDigest("nope"), 0u);
}

TEST(VersionedStoreTest, PutThenGet) {
  VersionedStore store(0);
  store.Put("k", "v1", VersionVector(), Ts(1));
  auto versions = store.Get("k");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "v1");
  EXPECT_FALSE(versions[0].tombstone);
}

TEST(VersionedStoreTest, CausalOverwriteReplacesVersion) {
  VersionedStore store(0);
  store.Put("k", "v1", VersionVector(), Ts(1));
  const VersionVector ctx = store.ContextFor("k");
  store.Put("k", "v2", ctx, Ts(2));
  auto versions = store.Get("k");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "v2");
}

TEST(VersionedStoreTest, BlindWritesSameCoordinatorFalselyOverwrite) {
  // With plain server-id version vectors, two blind writes through the SAME
  // coordinator get vv {r0:1} then {r0:2}: the second "dominates" and
  // silently discards the first even though the clients were concurrent.
  // This is the documented false-overwrite weakness of version vectors that
  // dotted version vectors repair (see DottedVersionVector tests).
  VersionedStore store(0);
  store.Put("k", "a", VersionVector(), Ts(1));
  store.Put("k", "b", VersionVector(), Ts(2));
  auto versions = store.Get("k");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "b");
}

TEST(VersionedStoreTest, BlindWritesAtDifferentReplicasCreateSiblings) {
  VersionedStore a(0), b(1);
  a.Put("k", "from-a", VersionVector(), Ts(1, 0));
  b.Put("k", "from-b", VersionVector(), Ts(1, 1));
  a.MergeRemote("k", b.GetRaw("k"));
  EXPECT_EQ(a.Get("k").size(), 2u);
}

TEST(VersionedStoreTest, WriteAfterRemoteMergeDominatesOwnSlot) {
  // Regression: if the context's own-replica slot is ahead of the local
  // write counter (possible after merging remote state that includes our
  // earlier writes), a new write must still strictly dominate the context.
  VersionedStore a(0);
  VersionVector ctx;
  ctx.Set(0, 10);  // context claims to have seen our event #10
  Version v = a.Put("k", "x", ctx, Ts(1));
  EXPECT_GT(v.vv.Get(0), 10u);
  EXPECT_TRUE(v.vv.Dominates(ctx));
}

TEST(VersionedStoreTest, WriteWithMergedContextResolvesSiblings) {
  VersionedStore store(0);
  store.Put("k", "a", VersionVector(), Ts(1));
  store.Put("k", "b", VersionVector(), Ts(2));
  const VersionVector ctx = store.ContextFor("k");
  store.Put("k", "merged", ctx, Ts(3));
  auto versions = store.Get("k");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "merged");
}

TEST(VersionedStoreTest, LwwPolicyKeepsNewestTimestamp) {
  VersionedStore store(0, {ConflictPolicy::kLastWriterWins});
  store.Put("k", "older", VersionVector(), Ts(5, 1));
  store.Put("k", "newer", VersionVector(), Ts(9, 2));
  auto versions = store.Get("k");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "newer");
}

TEST(VersionedStoreTest, LwwLosesConcurrentUpdate) {
  // The lost-update anomaly: two concurrent writes, LWW silently discards
  // one. This is the behaviour Fig. 5 quantifies.
  VersionedStore store(0, {ConflictPolicy::kLastWriterWins});
  store.Put("cart", "milk", VersionVector(), Ts(10, 1));
  store.Put("cart", "eggs", VersionVector(), Ts(11, 2));
  auto versions = store.Get("cart");
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "eggs");  // "milk" is gone forever
}

TEST(VersionedStoreTest, DeleteWritesTombstone) {
  VersionedStore store(0);
  store.Put("k", "v", VersionVector(), Ts(1));
  store.Delete("k", store.ContextFor("k"), Ts(2));
  EXPECT_TRUE(store.Get("k").empty());
  auto raw = store.GetRaw("k");
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_TRUE(raw[0].tombstone);
}

TEST(VersionedStoreTest, ConcurrentDeleteAndWriteBothSurvive) {
  // Delete at replica 0 concurrent with an overwrite at replica 1 (both
  // started from the same read context): after merging, both the tombstone
  // and the new value coexist as siblings; the live read sees the value.
  VersionedStore a(0), b(1);
  a.Put("k", "v", VersionVector(), Ts(1, 0));
  b.MergeRemote("k", a.GetRaw("k"));
  const VersionVector ctx = a.ContextFor("k");
  a.Delete("k", ctx, Ts(2, 0));
  b.Put("k", "resurrect", ctx, Ts(3, 1));
  a.MergeRemote("k", b.GetRaw("k"));
  auto raw = a.GetRaw("k");
  EXPECT_EQ(raw.size(), 2u);
  auto live = a.Get("k");
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].value, "resurrect");
}

TEST(VersionedStoreTest, MergeRemoteIdempotent) {
  VersionedStore a(0), b(1);
  a.Put("k", "x", VersionVector(), Ts(1));
  const auto versions = a.GetRaw("k");
  EXPECT_TRUE(b.MergeRemote("k", versions));
  EXPECT_FALSE(b.MergeRemote("k", versions));  // no change second time
  EXPECT_EQ(b.Get("k").size(), 1u);
}

TEST(VersionedStoreTest, MergeRemoteKeepsConcurrentFromBothReplicas) {
  VersionedStore a(0), b(1);
  a.Put("k", "from-a", VersionVector(), Ts(1, 0));
  b.Put("k", "from-b", VersionVector(), Ts(1, 1));
  EXPECT_TRUE(a.MergeRemote("k", b.GetRaw("k")));
  EXPECT_EQ(a.Get("k").size(), 2u);
  // And merging back the union into b converges both replicas.
  EXPECT_TRUE(b.MergeRemote("k", a.GetRaw("k")));
  EXPECT_EQ(a.KeyDigest("k"), b.KeyDigest("k"));
}

TEST(VersionedStoreTest, MergeRemoteDropsDominated) {
  VersionedStore a(0), b(1);
  a.Put("k", "v1", VersionVector(), Ts(1));
  b.MergeRemote("k", a.GetRaw("k"));
  // b overwrites causally.
  b.Put("k", "v2", b.ContextFor("k"), Ts(2));
  // Old version from a must not resurrect in b, and v2 replaces v1 in a.
  EXPECT_FALSE(b.MergeRemote("k", a.GetRaw("k")));
  EXPECT_TRUE(a.MergeRemote("k", b.GetRaw("k")));
  ASSERT_EQ(a.Get("k").size(), 1u);
  EXPECT_EQ(a.Get("k")[0].value, "v2");
}

TEST(VersionedStoreTest, KeyDigestIsOrderIndependent) {
  VersionedStore a(0), b(1);
  a.Put("k", "x", VersionVector(), Ts(1, 0));
  b.Put("k", "y", VersionVector(), Ts(1, 1));
  VersionedStore m1(2), m2(3);
  m1.MergeRemote("k", a.GetRaw("k"));
  m1.MergeRemote("k", b.GetRaw("k"));
  m2.MergeRemote("k", b.GetRaw("k"));
  m2.MergeRemote("k", a.GetRaw("k"));
  EXPECT_EQ(m1.KeyDigest("k"), m2.KeyDigest("k"));
  EXPECT_NE(m1.KeyDigest("k"), 0u);
}

TEST(VersionedStoreTest, CountsTrackState) {
  VersionedStore store(0);
  VersionedStore peer(1);
  EXPECT_EQ(store.key_count(), 0u);
  store.Put("a", "1", VersionVector(), Ts(1, 0));
  store.Put("b", "2", VersionVector(), Ts(2, 0));
  peer.Put("b", "3", VersionVector(), Ts(3, 1));
  store.MergeRemote("b", peer.GetRaw("b"));  // creates a sibling under "b"
  EXPECT_EQ(store.key_count(), 2u);
  EXPECT_EQ(store.version_count(), 3u);
}

TEST(VersionedStoreTest, PurgeTombstonesRemovesFullyDeletedKeys) {
  VersionedStore store(0);
  store.Put("gone", "v", VersionVector(), Ts(1));
  store.Delete("gone", store.ContextFor("gone"), Ts(2));
  store.Put("alive", "v", VersionVector(), Ts(3));
  EXPECT_EQ(store.PurgeTombstones(), 1u);
  EXPECT_EQ(store.key_count(), 1u);
  EXPECT_FALSE(store.Get("alive").empty());
}

TEST(VersionedStoreTest, ForEachKeyIteratesInOrder) {
  VersionedStore store(0);
  store.Put("b", "2", VersionVector(), Ts(1));
  store.Put("a", "1", VersionVector(), Ts(2));
  std::vector<std::string> keys;
  store.ForEachKey([&](const std::string& k, const std::vector<Version>&) {
    keys.push_back(k);
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

TEST(VersionTest, EncodeDecodeRoundTrip) {
  Version v;
  v.value = "payload \x01\x02";
  v.vv.Set(3, 9);
  v.lww_ts = Ts(77, 5);
  v.tombstone = true;
  std::string buf;
  v.EncodeTo(&buf);
  Decoder dec(buf);
  auto decoded = Version::DecodeFrom(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->value, v.value);
  EXPECT_EQ(decoded->vv, v.vv);
  EXPECT_EQ(decoded->lww_ts, v.lww_ts);
  EXPECT_EQ(decoded->tombstone, v.tombstone);
  EXPECT_EQ(decoded->Digest(), v.Digest());
}

// Property: random cross-merging of three replicas converges to identical
// sibling sets regardless of merge order (strong eventual consistency of the
// sibling-store itself).
class StoreConvergencePropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreConvergencePropertyTest, ReplicasConvergeUnderAnyMergeOrder) {
  Rng rng(GetParam());
  VersionedStore replicas[3] = {VersionedStore(0), VersionedStore(1),
                                VersionedStore(2)};
  const std::string key = "k";
  uint64_t ts = 1;
  // Random local writes (sometimes causal, sometimes blind) at random
  // replicas, interleaved with random pairwise merges.
  for (int step = 0; step < 200; ++step) {
    const int r = static_cast<int>(rng.NextBounded(3));
    if (rng.NextBool(0.5)) {
      const VersionVector ctx =
          rng.NextBool(0.5) ? replicas[r].ContextFor(key) : VersionVector();
      replicas[r].Put(key, "v" + std::to_string(step), ctx,
                      Ts(ts++, static_cast<uint32_t>(r)));
    } else {
      const int peer = static_cast<int>(rng.NextBounded(3));
      replicas[r].MergeRemote(key, replicas[peer].GetRaw(key));
    }
  }
  // Full pairwise exchange until quiescent.
  bool changed = true;
  int rounds = 0;
  while (changed && rounds < 20) {
    changed = false;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i == j) continue;
        changed |= replicas[i].MergeRemote(key, replicas[j].GetRaw(key));
      }
    }
    ++rounds;
  }
  EXPECT_LT(rounds, 20);
  EXPECT_EQ(replicas[0].KeyDigest(key), replicas[1].KeyDigest(key));
  EXPECT_EQ(replicas[1].KeyDigest(key), replicas[2].KeyDigest(key));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreConvergencePropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace evc
