#include "sim/rpc.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace evc::sim {
namespace {

struct EchoReq {
  std::string text;
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : sim_(7),
        net_(&sim_, std::make_unique<ConstantLatency>(5 * kMillisecond)),
        rpc_(&net_) {
    client_ = net_.AddNode();
    server_ = net_.AddNode();
  }

  Simulator sim_;
  Network net_;
  Rpc rpc_;
  NodeId client_;
  NodeId server_;
};

TEST_F(RpcTest, RoundTripDeliversReply) {
  rpc_.RegisterHandler(server_, "echo",
                       [](NodeId, Payload req, RpcResponder respond) {
                         auto r = std::move(req).Take<EchoReq>();
                         respond(r.text + "!");
                       });
  std::string reply;
  Time completed_at = -1;
  rpc_.Call(client_, server_, "echo", EchoReq{"hi"}, kSecond,
            [&](Result<Payload> r) {
              ASSERT_TRUE(r.ok());
              reply = std::move(*r).Take<std::string>();
              completed_at = sim_.Now();
            });
  sim_.Run();
  EXPECT_EQ(reply, "hi!");
  EXPECT_EQ(completed_at, 10 * kMillisecond);  // request + reply latency
}

TEST_F(RpcTest, ServerErrorPropagates) {
  rpc_.RegisterHandler(server_, "fail",
                       [](NodeId, Payload, RpcResponder respond) {
                         respond(Status::NotFound("nope"));
                       });
  Status got;
  rpc_.Call(client_, server_, "fail", EchoReq{}, kSecond,
            [&](Result<Payload> r) { got = r.status(); });
  sim_.Run();
  EXPECT_TRUE(got.IsNotFound());
  EXPECT_EQ(got.message(), "nope");
}

TEST_F(RpcTest, TimeoutWhenServerCrashed) {
  rpc_.RegisterHandler(server_, "echo",
                       [](NodeId, Payload, RpcResponder respond) {
                         respond(1);
                       });
  net_.SetNodeUp(server_, false);
  Status got;
  Time completed_at = -1;
  rpc_.Call(client_, server_, "echo", EchoReq{}, 100 * kMillisecond,
            [&](Result<Payload> r) {
              got = r.status();
              completed_at = sim_.Now();
            });
  sim_.Run();
  EXPECT_TRUE(got.IsTimedOut());
  EXPECT_EQ(completed_at, 100 * kMillisecond);
}

TEST_F(RpcTest, TimeoutWhenPartitioned) {
  rpc_.RegisterHandler(server_, "echo",
                       [](NodeId, Payload, RpcResponder respond) {
                         respond(1);
                       });
  net_.Partition({{client_}, {server_}});
  Status got;
  rpc_.Call(client_, server_, "echo", EchoReq{}, 50 * kMillisecond,
            [&](Result<Payload> r) { got = r.status(); });
  sim_.Run();
  EXPECT_TRUE(got.IsTimedOut());
}

TEST_F(RpcTest, LateReplyAfterTimeoutIsIgnored) {
  // Server replies asynchronously after the client's timeout.
  rpc_.RegisterHandler(
      server_, "slow", [this](NodeId, Payload, RpcResponder respond) {
        sim_.ScheduleAfter(500 * kMillisecond,
                           [respond] { respond(1); });
      });
  int callbacks = 0;
  Status first;
  rpc_.Call(client_, server_, "slow", EchoReq{}, 50 * kMillisecond,
            [&](Result<Payload> r) {
              ++callbacks;
              first = r.status();
            });
  sim_.Run();
  EXPECT_EQ(callbacks, 1);  // exactly once
  EXPECT_TRUE(first.IsTimedOut());
}

TEST_F(RpcTest, AsynchronousServerReplyWorks) {
  rpc_.RegisterHandler(
      server_, "defer", [this](NodeId, Payload, RpcResponder respond) {
        sim_.ScheduleAfter(20 * kMillisecond,
                           [respond] { respond(std::string("late")); });
      });
  std::string reply;
  rpc_.Call(client_, server_, "defer", EchoReq{}, kSecond,
            [&](Result<Payload> r) {
              ASSERT_TRUE(r.ok());
              reply = std::move(*r).Take<std::string>();
            });
  sim_.Run();
  EXPECT_EQ(reply, "late");
}

TEST_F(RpcTest, ManyConcurrentCallsMatchReplies) {
  rpc_.RegisterHandler(server_, "id",
                       [](NodeId, Payload req, RpcResponder respond) {
                         respond(std::move(req).Take<int>());
                       });
  int matched = 0;
  for (int i = 0; i < 100; ++i) {
    rpc_.Call(client_, server_, "id", i, kSecond, [&, i](Result<Payload> r) {
      ASSERT_TRUE(r.ok());
      if (std::move(*r).Take<int>() == i) ++matched;
    });
  }
  sim_.Run();
  EXPECT_EQ(matched, 100);
}

TEST_F(RpcTest, UnknownMethodTimesOut) {
  Status got;
  rpc_.Call(client_, server_, "no-such-method", EchoReq{}, 30 * kMillisecond,
            [&](Result<Payload> r) { got = r.status(); });
  sim_.Run();
  EXPECT_TRUE(got.IsTimedOut());
}

TEST_F(RpcTest, SelfCallWorks) {
  rpc_.RegisterHandler(client_, "self",
                       [](NodeId, Payload, RpcResponder respond) {
                         respond(std::string("me"));
                       });
  std::string reply;
  rpc_.Call(client_, client_, "self", EchoReq{}, kSecond,
            [&](Result<Payload> r) {
              ASSERT_TRUE(r.ok());
              reply = std::move(*r).Take<std::string>();
            });
  sim_.Run();
  EXPECT_EQ(reply, "me");
}

}  // namespace
}  // namespace evc::sim
