#include "crdt/gcounter.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace evc::crdt {
namespace {

TEST(GCounterTest, StartsAtZero) {
  GCounter c;
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(GCounterTest, IncrementAccumulates) {
  GCounter c;
  c.Increment(0);
  c.Increment(0, 4);
  c.Increment(1, 2);
  EXPECT_EQ(c.Value(), 7u);
  EXPECT_EQ(c.ShareOf(0), 5u);
  EXPECT_EQ(c.ShareOf(1), 2u);
  EXPECT_EQ(c.ShareOf(9), 0u);
}

TEST(GCounterTest, MergeTakesPointwiseMax) {
  GCounter a, b;
  a.Increment(0, 5);
  a.Increment(1, 1);
  b.Increment(1, 3);
  b.Increment(2, 2);
  a.Merge(b);
  EXPECT_EQ(a.Value(), 10u);  // 5 + 3 + 2
}

TEST(GCounterTest, MergeIsIdempotent) {
  GCounter a, b;
  a.Increment(0, 5);
  b.Increment(1, 3);
  a.Merge(b);
  const GCounter snapshot = a;
  a.Merge(b);
  a.Merge(b);
  EXPECT_EQ(a, snapshot);
}

TEST(GCounterTest, ConcurrentIncrementsAreNotLost) {
  // Unlike LWW on a plain integer, both replicas' increments survive merge.
  GCounter a, b;
  for (int i = 0; i < 10; ++i) a.Increment(0);
  for (int i = 0; i < 20; ++i) b.Increment(1);
  GCounter merged_ab = a;
  merged_ab.Merge(b);
  GCounter merged_ba = b;
  merged_ba.Merge(a);
  EXPECT_EQ(merged_ab.Value(), 30u);
  EXPECT_EQ(merged_ab, merged_ba);
}

TEST(GCounterTest, DeltaCarriesOnlyChangedEntry) {
  GCounter c;
  c.Increment(0, 3);
  const GCounter delta = c.Increment(1, 2);
  EXPECT_EQ(delta.entry_count(), 1u);
  EXPECT_EQ(delta.ShareOf(1), 2u);
  // Applying the delta to a fresh replica transfers exactly that share.
  GCounter peer;
  peer.Merge(delta);
  EXPECT_EQ(peer.Value(), 2u);
}

TEST(GCounterTest, DeltaStreamReconstructsFullState) {
  GCounter source, sink;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const GCounter delta = source.Increment(
        static_cast<uint32_t>(rng.NextBounded(4)), rng.NextBounded(5) + 1);
    sink.Merge(delta);
  }
  EXPECT_EQ(sink, source);
}

TEST(GCounterTest, IncludesDetectsStaleness) {
  GCounter a, b;
  a.Increment(0, 2);
  b.Merge(a);
  EXPECT_TRUE(b.Includes(a));
  a.Increment(0);
  EXPECT_FALSE(b.Includes(a));
  EXPECT_TRUE(a.Includes(b));
}

TEST(GCounterTest, StateBytesGrowsWithReplicas) {
  GCounter c;
  const size_t empty = c.StateBytes();
  c.Increment(0);
  c.Increment(1);
  c.Increment(2);
  EXPECT_GT(c.StateBytes(), empty);
}

TEST(PNCounterTest, IncrementAndDecrement) {
  PNCounter c;
  c.Increment(0, 10);
  c.Decrement(0, 3);
  c.Decrement(1, 12);
  EXPECT_EQ(c.Value(), -5);
}

TEST(PNCounterTest, MergeCommutative) {
  PNCounter a, b;
  a.Increment(0, 5);
  a.Decrement(0, 1);
  b.Increment(1, 2);
  b.Decrement(1, 9);
  PNCounter ab = a;
  ab.Merge(b);
  PNCounter ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.Value(), -3);
}

TEST(PNCounterTest, DeltaRoundTrip) {
  PNCounter source, sink;
  sink.Merge(source.Increment(0, 7));
  sink.Merge(source.Decrement(1, 2));
  EXPECT_EQ(sink, source);
  EXPECT_EQ(sink.Value(), 5);
}

// Property: arbitrary interleavings of increments and pairwise merges across
// N replicas converge to the sum of all increments.
class GCounterConvergenceTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(GCounterConvergenceTest, AllReplicasConvergeToTotalSum) {
  const int replica_count = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  std::vector<GCounter> replicas(replica_count);
  uint64_t expected_total = 0;
  for (int step = 0; step < 500; ++step) {
    const auto r = static_cast<uint32_t>(rng.NextBounded(replica_count));
    if (rng.NextBool(0.6)) {
      const uint64_t amount = rng.NextBounded(3) + 1;
      replicas[r].Increment(r, amount);
      expected_total += amount;
    } else {
      const auto peer = static_cast<uint32_t>(rng.NextBounded(replica_count));
      replicas[r].Merge(replicas[peer]);
    }
  }
  // Final all-pairs exchange.
  for (int round = 0; round < 2; ++round) {
    for (auto& a : replicas) {
      for (const auto& b : replicas) a.Merge(b);
    }
  }
  for (const auto& r : replicas) {
    EXPECT_EQ(r.Value(), expected_total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GCounterConvergenceTest,
    ::testing::Combine(::testing::Values(2, 3, 8),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace evc::crdt
