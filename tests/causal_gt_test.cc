// Get-transactions (COPS-GT): causally consistent multi-key reads.

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "causal/causal_store.h"

namespace evc::causal {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class CausalGtTest : public ::testing::Test {
 protected:
  void Build(double jitter = 0.05, uint64_t seed = 77) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    auto latency = std::make_unique<sim::WanMatrixLatency>(
        sim::WanMatrixLatency::ThreeRegionBaseUs(), jitter);
    wan_ = latency.get();
    net_ = std::make_unique<sim::Network>(sim_.get(), std::move(latency));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    cluster_ = std::make_unique<CausalCluster>(rpc_.get(), CausalOptions{});
    dcs_ = cluster_->AddDatacenters(3);
    for (int i = 0; i < 3; ++i) wan_->AssignNode(dcs_[i], i);
  }

  sim::NodeId MakeClientNode(int dc) {
    const sim::NodeId node = net_->AddNode();
    wan_->AssignNode(node, dc);
    return node;
  }

  void StepUntil(const bool& flag) {
    while (!flag && sim_->Step()) {
    }
    EVC_CHECK(flag);
  }

  std::unique_ptr<sim::Simulator> sim_;
  sim::WanMatrixLatency* wan_ = nullptr;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<CausalCluster> cluster_;
  std::vector<sim::NodeId> dcs_;
};

TEST_F(CausalGtTest, EmptyKeySetReturnsEmpty) {
  Build();
  const sim::NodeId client = MakeClientNode(0);
  bool done = false;
  cluster_->GetTransaction(client, dcs_[0], {},
                           [&](Result<std::vector<CausalRead>> r) {
                             done = true;
                             ASSERT_TRUE(r.ok());
                             EXPECT_TRUE(r->empty());
                           });
  StepUntil(done);
}

TEST_F(CausalGtTest, ReadsLatestWhenQuiescent) {
  Build();
  const sim::NodeId client = MakeClientNode(0);
  CausalClient writer(cluster_.get(), client, dcs_[0]);
  bool ok = false;
  writer.Put("a", "1", [&](Result<WriteId> r) { ok = r.ok(); });
  StepUntil(ok);
  ok = false;
  writer.Put("b", "2", [&](Result<WriteId> r) { ok = r.ok(); });
  StepUntil(ok);
  sim_->RunFor(kSecond);

  bool done = false;
  cluster_->GetTransaction(client, dcs_[0], {"a", "b", "missing"},
                           [&](Result<std::vector<CausalRead>> r) {
                             done = true;
                             ASSERT_TRUE(r.ok());
                             ASSERT_EQ(r->size(), 3u);
                             EXPECT_EQ((*r)[0].value, "1");
                             EXPECT_EQ((*r)[1].value, "2");
                             EXPECT_FALSE((*r)[2].found);
                           });
  StepUntil(done);
}

// The core scenario: writer updates photo then comment (comment depends on
// the NEW photo). A reader at a remote DC issuing plain sequential Gets can
// see the new comment with the OLD photo; a GetTransaction never can.
//
// The check: if the returned comment's deps name the photo at version v,
// the returned photo version must be >= v.
struct PairResult {
  int plain_violations = 0;
  int gt_violations = 0;
  int trials_with_comment = 0;
};

PairResult RunPairWorkload(CausalCluster* cluster, sim::Simulator* sim,
                           sim::NodeId writer_node, sim::NodeId writer_dc,
                           sim::NodeId reader_node, sim::NodeId reader_dc,
                           int trials) {
  PairResult result;
  CausalClient writer(cluster, writer_node, writer_dc);
  auto step_until = [&](const bool& flag) {
    while (!flag && sim->Step()) {
    }
    EVC_CHECK(flag);
  };
  auto violates = [](const CausalRead& photo, const CausalRead& comment) {
    if (!comment.found) return false;
    for (const Dependency& dep : comment.deps) {
      if (dep.key == "photo" && (!photo.found || photo.id < dep.id)) {
        return true;
      }
    }
    return false;
  };

  for (int t = 0; t < trials; ++t) {
    // Causal pair: put photo, read it back, put comment.
    bool ok = false;
    writer.Put("photo", "img" + std::to_string(t),
               [&](Result<WriteId> r) { ok = r.ok(); });
    step_until(ok);
    ok = false;
    writer.Get("photo", [&](Result<CausalRead> r) { ok = r.ok(); });
    step_until(ok);
    ok = false;
    writer.Put("comment", "c" + std::to_string(t),
               [&](Result<WriteId> r) { ok = r.ok(); });
    step_until(ok);

    // Reader races the replication: plain sequential gets...
    std::optional<CausalRead> plain_photo, plain_comment;
    bool got_photo = false;
    cluster->Get(reader_node, reader_dc, "photo",
                 [&](Result<CausalRead> r) {
                   got_photo = true;
                   if (r.ok()) plain_photo = *r;
                 });
    step_until(got_photo);
    bool got_comment = false;
    cluster->Get(reader_node, reader_dc, "comment",
                 [&](Result<CausalRead> r) {
                   got_comment = true;
                   if (r.ok()) plain_comment = *r;
                 });
    step_until(got_comment);
    // ...and a get-transaction at the same moment in the same trial.
    bool gt_done = false;
    std::vector<CausalRead> gt;
    cluster->GetTransaction(reader_node, reader_dc, {"photo", "comment"},
                            [&](Result<std::vector<CausalRead>> r) {
                              gt_done = true;
                              ASSERT_TRUE(r.ok());
                              gt = std::move(*r);
                            });
    step_until(gt_done);

    if (plain_photo && plain_comment) {
      if (plain_comment->found) ++result.trials_with_comment;
      if (violates(*plain_photo, *plain_comment)) ++result.plain_violations;
    }
    if (violates(gt[0], gt[1])) ++result.gt_violations;

    // Let the system settle a little (not fully) before the next trial.
    sim->RunFor(50 * kMillisecond);
  }
  return result;
}

TEST_F(CausalGtTest, GetTransactionNeverInconsistentPlainGetsAre) {
  Build(/*jitter=*/1.0, /*seed=*/11);
  const sim::NodeId writer_node = MakeClientNode(1);   // EU
  const sim::NodeId reader_node = MakeClientNode(2);   // Asia
  const PairResult r = RunPairWorkload(cluster_.get(), sim_.get(),
                                       writer_node, dcs_[1], reader_node,
                                       dcs_[2], /*trials=*/300);
  // The race is real: plain sequential reads straddle replication arrivals
  // at least sometimes under heavy jitter...
  EXPECT_GT(r.plain_violations, 0);
  // ...and GT repairs every one of them.
  EXPECT_EQ(r.gt_violations, 0);
  EXPECT_GT(r.trials_with_comment, 0);
}

TEST_F(CausalGtTest, GtZeroViolationsAcrossSeeds) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Build(/*jitter=*/1.0, seed);
    const sim::NodeId writer_node = MakeClientNode(0);
    const sim::NodeId reader_node = MakeClientNode(2);
    const PairResult r = RunPairWorkload(cluster_.get(), sim_.get(),
                                         writer_node, dcs_[0], reader_node,
                                         dcs_[2], /*trials=*/100);
    EXPECT_EQ(r.gt_violations, 0) << "seed " << seed;
  }
}

TEST_F(CausalGtTest, RoundTwoServesHistoricalVersion) {
  // Directly exercise the version-history fetch: write photo v1, read it,
  // write comment (dep photo@v1), then overwrite photo v2 ... v5. A GT of
  // {photo, comment} must return photo >= v1 — trivially satisfied by the
  // latest — but a GT issued while the reader's DC has comment and only
  // photo@v1 exercises the min-version path. Here we at least verify the
  // GT result is consistent and that history retains versions.
  Build();
  const sim::NodeId client = MakeClientNode(0);
  CausalClient writer(cluster_.get(), client, dcs_[0]);
  bool ok = false;
  writer.Put("photo", "v1", [&](Result<WriteId> r) { ok = r.ok(); });
  StepUntil(ok);
  ok = false;
  writer.Get("photo", [&](Result<CausalRead> r) { ok = r.ok(); });
  StepUntil(ok);
  ok = false;
  writer.Put("comment", "on-v1", [&](Result<WriteId> r) { ok = r.ok(); });
  StepUntil(ok);
  for (int i = 2; i <= 5; ++i) {
    ok = false;
    writer.Put("photo", "v" + std::to_string(i),
               [&](Result<WriteId> r) { ok = r.ok(); });
    StepUntil(ok);
  }
  sim_->RunFor(2 * kSecond);
  bool done = false;
  cluster_->GetTransaction(
      client, dcs_[2], {"photo", "comment"},
      [&](Result<std::vector<CausalRead>> r) {
        done = true;
        ASSERT_TRUE(r.ok());
        ASSERT_TRUE((*r)[0].found);
        ASSERT_TRUE((*r)[1].found);
        // Consistency: photo version >= comment's photo-dependency.
        for (const Dependency& dep : (*r)[1].deps) {
          if (dep.key == "photo") {
            EXPECT_FALSE((*r)[0].id < dep.id);
          }
        }
      });
  StepUntil(done);
}

}  // namespace
}  // namespace evc::causal
