// Server-side admission control: priority classes, bounded queues with
// retry-after rejections, CoDel-style sojourn shedding, the piggybacked
// load signal, and crash semantics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "resilience/admission.h"
#include "sim/latency.h"
#include "sim/rpc.h"

namespace evc::resilience {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(RetryAfterHintTest, RoundTripsThroughTheStatusMessage) {
  const Status shed = ResourceExhaustedWithRetryAfter(50 * kMillisecond);
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_EQ(RetryAfterHint(shed), 50 * kMillisecond);
  // Absent or foreign statuses carry no hint.
  EXPECT_EQ(RetryAfterHint(Status::OK()), 0);
  EXPECT_EQ(RetryAfterHint(Status::Unavailable("overloaded")), 0);
  EXPECT_EQ(RetryAfterHint(Status::ResourceExhausted("no tag here")), 0);
}

struct Req {
  int id = 0;
};

class AdmissionQueueTest : public ::testing::Test {
 protected:
  AdmissionQueueTest()
      : sim_(17),
        net_(&sim_, std::make_unique<sim::ConstantLatency>(5 * kMillisecond)),
        rpc_(&net_) {
    client_ = net_.AddNode();
    server_ = net_.AddNode();
    m_work_ = rpc_.InternMethod("work");
    m_bg_ = rpc_.InternMethod("bg.work");
    m_ping_ = rpc_.InternMethod("ping");
    for (sim::MethodId m : {m_work_, m_bg_, m_ping_}) {
      rpc_.RegisterHandler(
          server_, m, [this, m](sim::NodeId, sim::Payload req,
                                sim::RpcResponder respond) {
            served_.push_back({m, std::move(req).Take<Req>().id});
            respond(true);
          });
    }
  }

  std::unique_ptr<AdmissionQueue> MakeGate(AdmissionOptions options) {
    auto gate = std::make_unique<AdmissionQueue>(&rpc_, server_, options);
    gate->SetPriority(m_ping_, AdmissionPriority::kControl);
    gate->SetPriority(m_bg_, AdmissionPriority::kBackground);
    return gate;
  }

  /// Issues one call and records its completion status by request id.
  void Issue(sim::MethodId method, int id,
             sim::Time timeout = 10 * kSecond) {
    rpc_.Call(client_, server_, method, Req{id}, timeout,
              [this, id](Result<sim::Payload> r) {
                done_.push_back({id, r.status()});
              });
  }

  sim::Simulator sim_;
  sim::Network net_;
  sim::Rpc rpc_;
  sim::NodeId client_ = 0;
  sim::NodeId server_ = 0;
  sim::MethodId m_work_ = 0;
  sim::MethodId m_bg_ = 0;
  sim::MethodId m_ping_ = 0;
  std::vector<std::pair<sim::MethodId, int>> served_;  // dispatch order
  std::vector<std::pair<int, Status>> done_;           // completion order
};

// Control traffic is never queued: with every service slot busy and a deep
// foreground backlog, a ping still dispatches the instant it arrives.
TEST_F(AdmissionQueueTest, ControlBypassesSlotsAndQueues) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.service_time = 100 * kMillisecond;
  options.sojourn_target = 0;  // keep the backlog alive for the whole test
  auto gate = MakeGate(options);

  for (int i = 0; i < 4; ++i) Issue(m_work_, i);
  Issue(m_ping_, 99);
  sim_.RunFor(20 * kMillisecond);
  // All requests landed at 5ms. One work request holds the only slot for
  // 100ms; the ping was dispatched anyway and its reply is already back.
  ASSERT_EQ(served_.size(), 2u);
  EXPECT_EQ(served_[0], std::make_pair(m_work_, 0));
  EXPECT_EQ(served_[1], std::make_pair(m_ping_, 99));
  bool ping_done = false;
  for (const auto& [id, status] : done_) {
    if (id == 99) {
      ping_done = true;
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
  EXPECT_TRUE(ping_done);
}

// Foreground is served strictly before background, even when the background
// request has been waiting longer.
TEST_F(AdmissionQueueTest, ForegroundPreemptsQueuedBackground) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.service_time = 10 * kMillisecond;
  options.sojourn_target = kSecond;  // no sheds in this test
  auto gate = MakeGate(options);

  // t=5ms: work#0 takes the slot. bg#1 queues first, work#2 queues second.
  Issue(m_work_, 0);
  Issue(m_bg_, 1);
  Issue(m_work_, 2);
  sim_.Run();
  ASSERT_EQ(served_.size(), 3u);
  EXPECT_EQ(served_[0].second, 0);
  EXPECT_EQ(served_[1].second, 2);  // foreground overtakes the queued bg
  EXPECT_EQ(served_[2].second, 1);
  EXPECT_EQ(gate->stats().admitted, 3u);
  EXPECT_EQ(gate->stats().total_shed(), 0u);
}

// A full class queue rejects at enqueue with kResourceExhausted carrying the
// machine-readable retry-after hint.
TEST_F(AdmissionQueueTest, FullQueueRejectsWithRetryAfter) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.service_time = 100 * kMillisecond;
  options.foreground_queue_limit = 2;
  options.sojourn_target = 0;
  options.retry_after = 70 * kMillisecond;
  auto gate = MakeGate(options);

  // One in service + two queued = at capacity; two more are rejected.
  for (int i = 0; i < 5; ++i) Issue(m_work_, i);
  sim_.RunFor(50 * kMillisecond);
  EXPECT_EQ(gate->stats().rejected_queue_full, 2u);
  EXPECT_EQ(gate->stats().shed_foreground, 2u);
  int rejected = 0;
  for (const auto& [id, status] : done_) {
    if (!status.IsResourceExhausted()) continue;
    ++rejected;
    EXPECT_GE(id, 3);  // the two arrivals past queue capacity
    EXPECT_EQ(RetryAfterHint(status), 70 * kMillisecond);
  }
  EXPECT_EQ(rejected, 2);
}

// CoDel-style dequeue shed: work that waited past the sojourn target is
// dropped instead of served — its caller has likely already given up.
TEST_F(AdmissionQueueTest, SojournTargetShedsStaleWorkAtDequeue) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.service_time = 10 * kMillisecond;
  options.sojourn_target = 5 * kMillisecond;
  auto gate = MakeGate(options);

  // All three arrive at t=5ms: #0 is served immediately; #1 and #2 reach
  // the queue front at t=15ms with a 10ms sojourn — past the 5ms target.
  for (int i = 0; i < 3; ++i) Issue(m_work_, i);
  sim_.Run();
  EXPECT_EQ(gate->stats().admitted, 1u);
  EXPECT_EQ(gate->stats().shed_sojourn, 2u);
  ASSERT_EQ(served_.size(), 1u);
  EXPECT_EQ(served_[0].second, 0);
}

// The load signal is monotone in pressure: idle = 0, busy slots push it
// toward 50, queued work pushes it toward 100.
TEST_F(AdmissionQueueTest, LoadPercentTracksSlotsThenQueues) {
  AdmissionOptions options;
  options.max_concurrent = 2;
  options.service_time = 100 * kMillisecond;
  options.foreground_queue_limit = 8;
  options.background_queue_limit = 8;
  options.sojourn_target = 0;
  auto gate = MakeGate(options);

  EXPECT_EQ(gate->LoadPercent(), 0u);
  Issue(m_work_, 0);
  sim_.RunFor(6 * kMillisecond);  // one slot busy
  EXPECT_EQ(gate->LoadPercent(), 25u);
  Issue(m_work_, 1);
  sim_.RunFor(6 * kMillisecond);  // both slots busy, nothing queued
  EXPECT_EQ(gate->LoadPercent(), 50u);
  for (int i = 2; i < 10; ++i) Issue(m_work_, i);
  sim_.RunFor(6 * kMillisecond);  // 8 of 16 queue slots full
  EXPECT_EQ(gate->LoadPercent(), 75u);
  EXPECT_LE(gate->LoadPercent(), 100u);
}

// A crash drops queued requests and occupied slots; the old incarnation's
// slot-release timers must not free the new incarnation's slots.
TEST_F(AdmissionQueueTest, CrashClearsQueueAndRestartStartsFresh) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.service_time = 50 * kMillisecond;
  options.sojourn_target = 0;
  auto gate = MakeGate(options);

  for (int i = 0; i < 3; ++i) Issue(m_work_, i);
  sim_.RunFor(10 * kMillisecond);  // #0 in service, #1/#2 queued
  EXPECT_EQ(gate->queue_depth(), 2u);

  sim_.NotifyCrash(server_);
  EXPECT_EQ(gate->queue_depth(), 0u);
  sim_.NotifyRestart(server_);

  // The new incarnation serves fresh work normally — and the pre-crash
  // slot-release timer (due at 55ms) must not underflow its slot count.
  served_.clear();
  Issue(m_work_, 7);
  sim_.Run();
  ASSERT_EQ(served_.size(), 1u);
  EXPECT_EQ(served_[0].second, 7);
  EXPECT_EQ(gate->LoadPercent(), 0u);
}

}  // namespace
}  // namespace evc::resilience
