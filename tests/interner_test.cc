#include "common/interner.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace evc {
namespace {

TEST(KeyInternerTest, RoundTripsAndIsIdempotent) {
  KeyInterner in;
  const KeyId a = in.Intern("alpha");
  const KeyId b = in.Intern("beta");
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.Intern("beta"), b);
  EXPECT_EQ(in.NameOf(a), "alpha");
  EXPECT_EQ(in.NameOf(b), "beta");
  EXPECT_EQ(in.size(), 2u);
}

TEST(KeyInternerTest, IdsAreDenseFirstInternOrder) {
  KeyInterner in;
  for (KeyId i = 0; i < 100; ++i) {
    EXPECT_EQ(in.Intern("k" + std::to_string(i)), i);
  }
}

TEST(KeyInternerTest, InjectivePerRun) {
  // No two distinct names share an id; no two ids share a name.
  KeyInterner in;
  std::vector<std::string> names;
  for (int i = 0; i < 500; ++i) names.push_back("key." + std::to_string(i * 7));
  std::set<KeyId> ids;
  for (const auto& n : names) ids.insert(in.Intern(n));
  EXPECT_EQ(ids.size(), names.size());
  std::set<std::string_view> back;
  for (KeyId id : ids) back.insert(in.NameOf(id));
  EXPECT_EQ(back.size(), names.size());
}

TEST(KeyInternerTest, DeterministicAcrossIdenticalRuns) {
  // Two interners fed the same name sequence assign identical ids — the
  // property same-seed simulation runs rely on (ids appear in exports).
  auto run = [] {
    KeyInterner in;
    std::vector<KeyId> ids;
    for (int i = 0; i < 200; ++i) {
      ids.push_back(in.Intern("m" + std::to_string((i * 37) % 50)));
    }
    return ids;
  };
  EXPECT_EQ(run(), run());
}

TEST(KeyInternerTest, LookupNeverAssigns) {
  KeyInterner in;
  EXPECT_EQ(in.Lookup("ghost"), kInvalidKeyId);
  EXPECT_EQ(in.size(), 0u);
  const KeyId id = in.Intern("real");
  EXPECT_EQ(in.Lookup("real"), id);
  EXPECT_EQ(in.Lookup("ghost"), kInvalidKeyId);
  EXPECT_EQ(in.size(), 1u);
}

TEST(KeyInternerTest, NameViewsStayValidAsTableGrows) {
  KeyInterner in;
  const std::string_view first = in.NameOf(in.Intern("first"));
  const char* data_before = first.data();
  for (int i = 0; i < 10000; ++i) in.Intern("grow" + std::to_string(i));
  // Stable storage: the view taken before growth still points at the same
  // bytes (components cache these views for the simulator's lifetime).
  EXPECT_EQ(first.data(), data_before);
  EXPECT_EQ(first, "first");
  EXPECT_EQ(in.NameOf(0), "first");
}

TEST(KeyInternerTest, EmptyAndUnusualNames) {
  KeyInterner in;
  const KeyId empty = in.Intern("");
  const KeyId spaced = in.Intern("a b");
  const KeyId dotted = in.Intern("a.b");
  EXPECT_NE(empty, spaced);
  EXPECT_NE(spaced, dotted);
  EXPECT_EQ(in.NameOf(empty), "");
  EXPECT_EQ(in.Intern(""), empty);
}

}  // namespace
}  // namespace evc
