#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace evc::sim {
namespace {

// Every scheduler-contract test runs under both implementations: the
// calendar queue (hot path) and the legacy heap (seed baseline kept for the
// differential harness). The contract is identical; only EventId encodings
// differ, and those are opaque.
class SchedulerTest : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  std::unique_ptr<Simulator> NewSim(uint64_t seed = 1) {
    return std::make_unique<Simulator>(seed, GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(BothSchedulers, SchedulerTest,
                         ::testing::Values(SchedulerKind::kCalendar,
                                           SchedulerKind::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == SchedulerKind::kCalendar
                                      ? "Calendar"
                                      : "LegacyHeap";
                         });

TEST_P(SchedulerTest, EventsRunInTimeOrder) {
  auto sim = NewSim();
  std::vector<int> order;
  sim->ScheduleAt(30, [&] { order.push_back(3); });
  sim->ScheduleAt(10, [&] { order.push_back(1); });
  sim->ScheduleAt(20, [&] { order.push_back(2); });
  sim->Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim->Now(), 30);
  EXPECT_EQ(sim->events_executed(), 3u);
}

TEST_P(SchedulerTest, SameTimeEventsRunFifo) {
  auto sim = NewSim();
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim->ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim->Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  auto sim = NewSim();
  Time fired_at = -1;
  sim->ScheduleAt(100, [&] {
    sim->ScheduleAfter(50, [&] { fired_at = sim->Now(); });
  });
  sim->Run();
  EXPECT_EQ(fired_at, 150);
}

TEST_P(SchedulerTest, ScheduleReturnsNonzeroIds) {
  auto sim = NewSim();
  // Callers use id == 0 as a "no pending event" sentinel; both schedulers
  // must never hand it out.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(sim->ScheduleAt(i, [] {}), 0u);
  }
}

TEST_P(SchedulerTest, CancelPreventsExecution) {
  auto sim = NewSim();
  bool ran = false;
  const EventId id = sim->ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(sim->Cancel(id));
  EXPECT_FALSE(sim->Cancel(id));  // double-cancel reports false
  sim->Run();
  EXPECT_FALSE(ran);
}

TEST_P(SchedulerTest, CancelUnknownIdIsFalse) {
  auto sim = NewSim();
  EXPECT_FALSE(sim->Cancel(999));
  EXPECT_FALSE(sim->Cancel(0));
}

TEST_P(SchedulerTest, RunUntilStopsAtDeadline) {
  auto sim = NewSim();
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim->ScheduleAfter(10, tick);
  };
  sim->ScheduleAt(0, tick);
  sim->RunUntil(100);
  EXPECT_EQ(count, 11);  // t=0,10,...,100 inclusive
  EXPECT_EQ(sim->Now(), 100);
  sim->RunUntil(200);
  EXPECT_EQ(count, 21);
}

TEST_P(SchedulerTest, RunUntilAdvancesClockWhenIdle) {
  auto sim = NewSim();
  sim->RunUntil(500);
  EXPECT_EQ(sim->Now(), 500);
}

TEST_P(SchedulerTest, RunUntilEndsAtDeadlineWhenQueueDrainsEarly) {
  // Contract: the clock always lands exactly on the deadline, even when the
  // last scheduled event fires well before it. Callers rely on this to
  // compose fixed-length measurement windows (RunFor = RunUntil(Now+d)).
  auto sim = NewSim();
  bool ran = false;
  sim->ScheduleAt(10, [&] { ran = true; });
  sim->RunUntil(1000);
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim->Now(), 1000);
  // A later RunFor window starts from the deadline, not the last event.
  sim->RunFor(50);
  EXPECT_EQ(sim->Now(), 1050);
}

TEST_P(SchedulerTest, ScheduleAfterRunUntilSkippedAheadStillFires) {
  // RunUntil can advance the clock far past the last executed event. A
  // subsequent schedule close to Now() must fire on the next run — this is
  // the cursor-pull-back case in the calendar queue (the event's bucket
  // index is behind the cursor's resting position).
  auto sim = NewSim();
  sim->ScheduleAt(10, [] {});
  sim->RunUntil(1'000'000);
  bool ran = false;
  sim->ScheduleAfter(5, [&] { ran = true; });
  sim->RunFor(10);
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim->Now(), 1'000'010);
}

TEST_P(SchedulerTest, StepReturnsFalseWhenEmpty) {
  auto sim = NewSim();
  EXPECT_FALSE(sim->Step());
  sim->ScheduleAt(1, [] {});
  EXPECT_TRUE(sim->Step());
  EXPECT_FALSE(sim->Step());
}

TEST_P(SchedulerTest, EventsScheduledDuringRunExecute) {
  auto sim = NewSim();
  int depth = 0;
  std::function<void(int)> recurse = [&](int d) {
    depth = d;
    if (d < 5) sim->ScheduleAfter(1, [&, d] { recurse(d + 1); });
  };
  sim->ScheduleAt(0, [&] { recurse(1); });
  sim->Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim->Now(), 4);
}

TEST_P(SchedulerTest, DeterministicAcrossRuns) {
  auto run = [this](uint64_t seed) {
    auto sim = NewSim(seed);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 50; ++i) {
      const Time t = static_cast<Time>(sim->rng().NextBounded(1000));
      sim->ScheduleAt(t, [&trace, &sim] {
        trace.push_back(static_cast<uint64_t>(sim->Now()));
      });
    }
    sim->Run();
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_P(SchedulerTest, PendingEventsCountsAccurately) {
  auto sim = NewSim();
  EXPECT_EQ(sim->pending_events(), 0u);
  const EventId a = sim->ScheduleAt(10, [] {});
  const EventId b = sim->ScheduleAt(20, [] {});
  sim->ScheduleAt(30, [] {});
  EXPECT_EQ(sim->pending_events(), 3u);
  // Cancelling removes from the pending count immediately, even though the
  // entry is still physically in the queue.
  EXPECT_TRUE(sim->Cancel(b));
  EXPECT_EQ(sim->pending_events(), 2u);
  EXPECT_TRUE(sim->Step());  // runs a
  EXPECT_EQ(sim->pending_events(), 1u);
  // Cancelling an already-executed event must not create a phantom
  // tombstone that would make the count underflow.
  EXPECT_FALSE(sim->Cancel(a));
  EXPECT_EQ(sim->pending_events(), 1u);
  sim->Run();
  EXPECT_EQ(sim->pending_events(), 0u);
}

TEST_P(SchedulerTest, CancelAfterExecutionReturnsFalse) {
  auto sim = NewSim();
  const EventId id = sim->ScheduleAt(5, [] {});
  sim->Run();
  // Regression: this used to return true and leave the id in the cancelled
  // set forever, so pending_events() (size_t subtraction) underflowed to a
  // huge value once the queue drained.
  EXPECT_FALSE(sim->Cancel(id));
  EXPECT_EQ(sim->pending_events(), 0u);
  sim->ScheduleAt(10, [] {});
  EXPECT_EQ(sim->pending_events(), 1u);
}

TEST_P(SchedulerTest, PendingEventsExactUnderCancelHeavyLoad) {
  auto sim = NewSim();
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(sim->ScheduleAt(i, [] {}));
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(sim->Cancel(ids[i]));
  EXPECT_EQ(sim->pending_events(), 50u);
  for (int i = 0; i < 25; ++i) EXPECT_TRUE(sim->Step());
  EXPECT_EQ(sim->pending_events(), 25u);
  // Double-cancel and cancel-after-run are both no-ops.
  for (int i = 0; i < 100; ++i) sim->Cancel(ids[i]);
  EXPECT_EQ(sim->pending_events(), 0u);
  sim->Run();
  EXPECT_EQ(sim->pending_events(), 0u);
}

TEST_P(SchedulerTest, CancelInsideEarlierEventAtSameTime) {
  auto sim = NewSim();
  bool second_ran = false;
  EventId second = 0;
  sim->ScheduleAt(10, [&] { sim->Cancel(second); });
  second = sim->ScheduleAt(10, [&] { second_ran = true; });
  sim->Run();
  EXPECT_FALSE(second_ran);
}

TEST_P(SchedulerTest, MoveOnlyCapturesAreSupported) {
  // Payload handles are move-only; closures carrying them must schedule.
  auto sim = NewSim();
  auto owned = std::make_unique<std::string>("cargo");
  std::string got;
  sim->ScheduleAt(5, [&got, boxed = std::move(owned)] { got = *boxed; });
  sim->Run();
  EXPECT_EQ(got, "cargo");
}

// --- closure-lifetime regressions -----------------------------------------
// The seed scheduler moved events out of priority_queue::top() through a
// const_cast and ran the closure while bookkeeping around it was mutating.
// These pin the safe-lifetime contract: while an event executes, its closure
// is detached from every scheduler structure, so the event may destroy its
// own captured state, reallocate the queue under itself, or tear down the
// object that transitively owns it.

TEST_P(SchedulerTest, EventMayDestroyItsOwnCapturedState) {
  auto sim = NewSim();
  auto state = std::make_shared<std::vector<int>>(1000, 7);
  std::weak_ptr<std::vector<int>> alive = state;
  bool checked = false;
  sim->ScheduleAt(10, [&checked, s = std::move(state)]() mutable {
    EXPECT_EQ((*s)[999], 7);
    s.reset();  // drop the last reference mid-execution
    checked = true;
  });
  sim->Run();
  EXPECT_TRUE(checked);
  EXPECT_TRUE(alive.expired());
}

TEST_P(SchedulerTest, EventMayReallocateTheQueueWhileRunning) {
  // Schedule enough events from inside a running event to force the backing
  // containers (heap vector / wheel buckets / slab chunks) to grow. The
  // running closure's captures must stay intact across that growth.
  auto sim = NewSim();
  int fired = 0;
  const std::string sentinel(512, 'x');
  sim->ScheduleAt(1, [&, sentinel] {
    for (int i = 0; i < 5000; ++i) {
      sim->ScheduleAfter(1 + i % 97, [&fired] { ++fired; });
    }
    EXPECT_EQ(sentinel, std::string(512, 'x'));
  });
  sim->Run();
  EXPECT_EQ(fired, 5000);
}

TEST_P(SchedulerTest, DestructorCancellingOwnEventDuringRunIsSafe) {
  // A closure holding the last reference to an object whose destructor
  // cancels "its" event id — the very id now executing. The cancel must
  // report false (the event already left the queue) and not corrupt
  // pending-count bookkeeping.
  auto sim = NewSim();
  struct TimerOwner {
    Simulator* sim = nullptr;
    EventId id = 0;
    ~TimerOwner() {
      if (id != 0) EXPECT_FALSE(sim->Cancel(id));
    }
  };
  auto owner = std::make_shared<TimerOwner>();
  owner->sim = sim.get();
  bool ran = false;
  owner->id = sim->ScheduleAt(10, [&ran, owner]() mutable {
    ran = true;
    owner.reset();  // destroys TimerOwner; its dtor cancels this very event
  });
  owner.reset();  // the closure now holds the only reference
  sim->Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim->pending_events(), 0u);
  sim->ScheduleAt(20, [] {});
  EXPECT_EQ(sim->pending_events(), 1u);
}

TEST_P(SchedulerTest, BothSchedulersProduceIdenticalExecutionOrder) {
  // Same workload, both schedulers: the observable (time, payload) sequence
  // must match event for event. This is the unit-sized version of the
  // 25-seed differential harness in simcore_diff_test.cc.
  auto run = [](SchedulerKind kind) {
    Simulator sim(99, kind);
    std::vector<std::pair<Time, int>> seen;
    for (int i = 0; i < 300; ++i) {
      const Time t = static_cast<Time>(sim.rng().NextBounded(500));
      sim.ScheduleAt(t, [&seen, &sim, i] { seen.emplace_back(sim.Now(), i); });
    }
    // Mix in some cancels and nested schedules.
    std::vector<EventId> ids;
    for (int i = 0; i < 50; ++i) {
      ids.push_back(sim.ScheduleAt(250 + i, [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 3) sim.Cancel(ids[i]);
    sim.ScheduleAt(100, [&] {
      sim.ScheduleAfter(7, [&seen, &sim] { seen.emplace_back(sim.Now(), -1); });
    });
    sim.Run();
    return seen;
  };
  EXPECT_EQ(run(SchedulerKind::kCalendar), run(SchedulerKind::kLegacyHeap));
}

}  // namespace
}  // namespace evc::sim
