#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace evc::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Time fired_at = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel reports false
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelUnknownIdIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(999));
  EXPECT_FALSE(sim.Cancel(0));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.ScheduleAfter(10, tick);
  };
  sim.ScheduleAt(0, tick);
  sim.RunUntil(100);
  EXPECT_EQ(count, 11);  // t=0,10,...,100 inclusive
  EXPECT_EQ(sim.Now(), 100);
  sim.RunUntil(200);
  EXPECT_EQ(count, 21);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(SimulatorTest, RunUntilEndsAtDeadlineWhenQueueDrainsEarly) {
  // Contract: the clock always lands exactly on the deadline, even when the
  // last scheduled event fires well before it. Callers rely on this to
  // compose fixed-length measurement windows (RunFor = RunUntil(Now+d)).
  Simulator sim;
  bool ran = false;
  sim.ScheduleAt(10, [&] { ran = true; });
  sim.RunUntil(1000);
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), 1000);
  // A later RunFor window starts from the deadline, not the last event.
  sim.RunFor(50);
  EXPECT_EQ(sim.Now(), 1050);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void(int)> recurse = [&](int d) {
    depth = d;
    if (d < 5) sim.ScheduleAfter(1, [&, d] { recurse(d + 1); });
  };
  sim.ScheduleAt(0, [&] { recurse(1); });
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 4);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 50; ++i) {
      const Time t = static_cast<Time>(sim.rng().NextBounded(1000));
      sim.ScheduleAt(t, [&trace, &sim] { trace.push_back(
          static_cast<uint64_t>(sim.Now())); });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimulatorTest, PendingEventsCountsAccurately) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  const EventId a = sim.ScheduleAt(10, [] {});
  const EventId b = sim.ScheduleAt(20, [] {});
  sim.ScheduleAt(30, [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  // Cancelling removes from the pending count immediately, even though the
  // entry is still physically in the queue.
  EXPECT_TRUE(sim.Cancel(b));
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.Step());  // runs a
  EXPECT_EQ(sim.pending_events(), 1u);
  // Cancelling an already-executed event must not create a phantom
  // tombstone that would make the count underflow.
  EXPECT_FALSE(sim.Cancel(a));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(5, [] {});
  sim.Run();
  // Regression: this used to return true and leave the id in the cancelled
  // set forever, so pending_events() (size_t subtraction) underflowed to a
  // huge value once the queue drained.
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.ScheduleAt(10, [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, PendingEventsExactUnderCancelHeavyLoad) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(sim.ScheduleAt(i, [] {}));
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(sim.Cancel(ids[i]));
  EXPECT_EQ(sim.pending_events(), 50u);
  for (int i = 0; i < 25; ++i) EXPECT_TRUE(sim.Step());
  EXPECT_EQ(sim.pending_events(), 25u);
  // Double-cancel and cancel-after-run are both no-ops.
  for (int i = 0; i < 100; ++i) sim.Cancel(ids[i]);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelInsideEarlierEventAtSameTime) {
  Simulator sim;
  bool second_ran = false;
  EventId second = 0;
  sim.ScheduleAt(10, [&] { sim.Cancel(second); });
  second = sim.ScheduleAt(10, [&] { second_ran = true; });
  sim.Run();
  EXPECT_FALSE(second_ran);
}

}  // namespace
}  // namespace evc::sim
