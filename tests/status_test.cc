#include "common/status.h"

#include <gtest/gtest.h>

namespace evc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("k").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::FailedPrecondition().IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange().IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::Unavailable("no quorum");
  EXPECT_EQ(s.ToString(), "Unavailable: no quorum");
  EXPECT_EQ(Status::Aborted().ToString(), "Aborted");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Aborted("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  EVC_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  EVC_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusMacroTest, AssignOrReturnPropagates) {
  Result<int> ok = DoubleIt(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = DoubleIt(0);
  EXPECT_TRUE(err.status().IsOutOfRange());
}

}  // namespace
}  // namespace evc
