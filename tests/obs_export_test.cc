// Export-layer tests: JSON round trips, deterministic serialization, and
// the end-to-end guarantee that two same-seed simulated runs export
// byte-identical metrics and trace documents.

#include "obs/export.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "obs/json.h"
#include "sim/rpc.h"

namespace evc::obs {
namespace {

TEST(Json, DumpSortsObjectKeysAndRoundTrips) {
  Json::Object o;
  o["zeta"] = Json(1);
  o["alpha"] = Json(2.5);
  o["mid"] = Json("s");
  o["flag"] = Json(true);
  o["nothing"] = Json();
  Json::Array a;
  a.push_back(Json(1));
  a.push_back(Json("two"));
  o["list"] = Json(std::move(a));
  const Json doc{std::move(o)};

  const std::string compact = doc.Dump();
  EXPECT_EQ(compact,
            "{\"alpha\":2.5,\"flag\":true,\"list\":[1,\"two\"],"
            "\"mid\":\"s\",\"nothing\":null,\"zeta\":1}");

  auto reparsed = Json::Parse(compact);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), compact);
  // Pretty output parses back to the same document too.
  auto pretty = Json::Parse(doc.Dump(2));
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(pretty->Dump(), compact);
}

TEST(Json, ParseRejectsTrailingGarbage) {
  EXPECT_FALSE(Json::Parse("{} x").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_TRUE(Json::Parse(" {\"a\": [1, 2]} ").ok());
}

TEST(RegistryToJson, EmitsAllInstrumentKindsNameSorted) {
  MetricsRegistry reg;
  reg.CounterFor("b.count").Inc(3);
  reg.CounterFor("a.count").Inc(1);
  reg.GaugeFor("level").Set(2.5);
  reg.HistogramFor("lat").Add(10.0);
  reg.HistogramFor("lat").Add(20.0);
  const Json doc = RegistryToJson(reg);
  const Json* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->AsObject().at("a.count").AsInt(), 1);
  EXPECT_EQ(counters->AsObject().at("b.count").AsInt(), 3);
  EXPECT_DOUBLE_EQ(doc.Find("gauges")->AsObject().at("level").AsDouble(), 2.5);
  const Json& h = doc.Find("histograms")->AsObject().at("lat");
  EXPECT_EQ(h.Find("count")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(h.Find("min")->AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(h.Find("max")->AsDouble(), 20.0);
  // First key of the counters object is the lexicographically smallest.
  EXPECT_EQ(counters->AsObject().begin()->first, "a.count");
}

TEST(RegistryToCsv, OneLinePerCounterAndPerHistogramField) {
  MetricsRegistry reg;
  reg.CounterFor("ops").Inc(5);
  reg.HistogramFor("lat").Add(1.0);
  const std::string csv = RegistryToCsv(reg);
  EXPECT_NE(csv.find("counter,ops,value,5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,p99,"), std::string::npos);
}

// Runs a small RPC workload (some calls succeed, some hit a dead server and
// time out) and returns the serialized metrics + trace documents.
struct RunOutput {
  std::string metrics;
  std::string trace;
  std::string trace_csv;
};

RunOutput RunWorkload(uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, std::make_unique<sim::UniformLatency>(
                             sim::kMillisecond, 20 * sim::kMillisecond));
  sim::Rpc rpc(&net);
  const sim::NodeId client = net.AddNode();
  const sim::NodeId server = net.AddNode();
  const sim::NodeId dead = net.AddNode();
  net.SetNodeUp(dead, false);
  rpc.RegisterHandler(server, "echo",
                      [](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
                        respond(std::move(req));
                      });
  for (int i = 0; i < 20; ++i) {
    rpc.Call(client, server, "echo", std::string("x"), sim::kSecond,
             [](Result<sim::Payload>) {});
    if (i % 5 == 0) {
      rpc.Call(client, dead, "echo", std::string("x"), 100 * sim::kMillisecond,
               [](Result<sim::Payload>) {});
    }
  }
  sim.Run();
  RunOutput out;
  out.metrics = MetricsToJson(sim.metrics()).Dump(2);
  out.trace = TraceToJson(sim.tracer()).Dump(2);
  out.trace_csv = TraceToCsv(sim.tracer());
  return out;
}

TEST(Determinism, SameSeedRunsExportByteIdenticalDocuments) {
  const RunOutput a = RunWorkload(42);
  const RunOutput b = RunWorkload(42);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.trace_csv, b.trace_csv);
  // And the run actually recorded something.
  EXPECT_NE(a.metrics.find("rpc.calls"), std::string::npos);
  EXPECT_NE(a.metrics.find("net.delivered"), std::string::npos);
  EXPECT_NE(a.trace.find("rpc.server.echo"), std::string::npos);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Latency jitter differs, so histograms (and span times) must differ.
  EXPECT_NE(RunWorkload(1).metrics, RunWorkload(2).metrics);
}

TEST(WorkloadInstrumentation, CountsCallsTimeoutsAndSpans) {
  sim::Simulator sim(7);
  sim::Network net(&sim, std::make_unique<sim::ConstantLatency>(
                             5 * sim::kMillisecond));
  sim::Rpc rpc(&net);
  const sim::NodeId client = net.AddNode();
  const sim::NodeId server = net.AddNode();
  const sim::NodeId dead = net.AddNode();
  net.SetNodeUp(dead, false);
  rpc.RegisterHandler(server, "echo",
                      [](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
                        respond(std::move(req));
                      });
  rpc.Call(client, server, "echo", std::string("a"), sim::kSecond,
           [](Result<sim::Payload>) {});
  rpc.Call(client, dead, "echo", std::string("b"), 50 * sim::kMillisecond,
           [](Result<sim::Payload>) {});
  sim.Run();

  MetricsRegistry& g = sim.metrics().global();
  EXPECT_EQ(g.CounterFor("rpc.calls").value(), 2u);
  EXPECT_EQ(g.CounterFor("rpc.timeouts").value(), 1u);
  EXPECT_EQ(g.HistogramFor("rpc.call_latency_us").count(), 1u);
  EXPECT_DOUBLE_EQ(g.HistogramFor("rpc.call_latency_us").min(),
                   10.0 * sim::kMillisecond);

  // Client span for the successful call + its server child; the timed-out
  // call contributes a client span with outcome "timeout".
  int ok_client = 0, ok_server = 0, timeouts = 0;
  uint64_t client_span = 0;
  const Tracer& tracer = sim.tracer();
  for (const Span& s : tracer.finished()) {
    if (tracer.NameOf(s.name) == "rpc.echo" &&
        tracer.NameOf(s.outcome) == "ok") {
      ++ok_client;
      client_span = s.id;
    }
    if (tracer.NameOf(s.name) == "rpc.server.echo") ++ok_server;
    if (tracer.NameOf(s.outcome) == "timeout") ++timeouts;
  }
  EXPECT_EQ(ok_client, 1);
  EXPECT_EQ(ok_server, 1);
  EXPECT_EQ(timeouts, 1);
  for (const Span& s : tracer.finished()) {
    if (tracer.NameOf(s.name) == "rpc.server.echo") {
      EXPECT_EQ(s.parent, client_span);
    }
  }
}

TEST(WriteFile, WritesAndFailsOnBadPath) {
  const std::string path = ::testing::TempDir() + "/obs_export_test.json";
  ASSERT_TRUE(WriteFile(path, "{}\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[8] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "{}\n");
  EXPECT_FALSE(WriteFile("/nonexistent-dir/x.json", "{}").ok());
}

}  // namespace
}  // namespace evc::obs
