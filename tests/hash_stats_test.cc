#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/stats.h"

namespace evc {
namespace {

TEST(HashTest, Fnv1aIsDeterministicAndSpreads) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("cba"));
  EXPECT_NE(Fnv1a64(""), 0u);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(Fnv1a64("key" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);  // no collisions in a small set
}

TEST(HashTest, Mix64IsBijectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
  EXPECT_EQ(Mix64(0), 0u);  // finalizer fixed point: 0 maps to 0
}

TEST(HashTest, HashCombineIsOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  const uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(Crc32c(mutated), base) << "flip at " << i;
  }
}

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(HistogramTest, ExactForSingleValue) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(50.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 3.0);
  EXPECT_NEAR(h.mean(), 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(HistogramTest, PercentilesOrderedAndBounded) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 5000, 5000 * 0.05);
  EXPECT_NEAR(p95, 9500, 9500 * 0.05);
  EXPECT_NEAR(p99, 9900, 9900 * 0.05);
  EXPECT_LE(h.Percentile(1.0), 10000.0);
  EXPECT_GE(h.Percentile(0.0), 0.0);
}

TEST(HistogramTest, MergeEqualsCombinedSamples) {
  Histogram a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    a.Add(i);
    combined.Add(i);
  }
  for (int i = 1000; i < 3000; ++i) {
    b.Add(i);
    combined.Add(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_DOUBLE_EQ(a.Percentile(0.9), combined.Percentile(0.9));
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace evc
