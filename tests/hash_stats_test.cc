#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/stats.h"

namespace evc {
namespace {

TEST(HashTest, Fnv1aIsDeterministicAndSpreads) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("cba"));
  EXPECT_NE(Fnv1a64(""), 0u);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(Fnv1a64("key" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);  // no collisions in a small set
}

TEST(HashTest, Mix64IsBijectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
  EXPECT_EQ(Mix64(0), 0u);  // finalizer fixed point: 0 maps to 0
}

TEST(HashTest, HashCombineIsOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  const uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(Crc32c(mutated), base) << "flip at " << i;
  }
}

TEST(OnlineStatsTest, MeanVarianceMinMax) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(HistogramTest, ExactForSingleValue) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(50.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 3.0);
  EXPECT_NEAR(h.mean(), 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(HistogramTest, PercentilesOrderedAndBounded) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 5000, 5000 * 0.05);
  EXPECT_NEAR(p95, 9500, 9500 * 0.05);
  EXPECT_NEAR(p99, 9900, 9900 * 0.05);
  EXPECT_LE(h.Percentile(1.0), 10000.0);
  EXPECT_GE(h.Percentile(0.0), 0.0);
}

TEST(HistogramTest, MergeEqualsCombinedSamples) {
  Histogram a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    a.Add(i);
    combined.Add(i);
  }
  for (int i = 1000; i < 3000; ++i) {
    b.Add(i);
    combined.Add(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_DOUBLE_EQ(a.Percentile(0.9), combined.Percentile(0.9));
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

// Regression: BucketFor used to trust the truncated log2, which misplaced
// values at (and one ulp below) bucket boundaries by one bucket — e.g.
// 2^(1/16) landed in bucket 1 instead of 2, and nextafter(8.0, 0.0) rounded
// up into 8.0's bucket. That skewed every percentile computed from the
// affected buckets.
TEST(HistogramTest, BucketForExactBoundaries) {
  // Bucket i >= 1 covers [2^((i-1)/16), 2^(i/16)): each boundary value is
  // the *lower* edge of its own bucket.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(Histogram::BucketFor(0.999), 0);
  EXPECT_EQ(Histogram::BucketFor(1.0), 1);
  EXPECT_EQ(Histogram::BucketFor(std::exp2(1.0 / 16.0)), 2);
  EXPECT_EQ(Histogram::BucketFor(2.0), 17);
  EXPECT_EQ(Histogram::BucketFor(8.0), 49);
  EXPECT_EQ(Histogram::BucketFor(std::nextafter(2.0, 0.0)), 16);
  EXPECT_EQ(Histogram::BucketFor(std::nextafter(8.0, 0.0)), 48);
}

TEST(HistogramTest, BucketForAgreesWithBucketEdgesEverywhere) {
  for (int b = 1; b < Histogram::kBucketCount - 1; ++b) {
    const double lo = Histogram::BucketLower(b);
    const double just_below_hi = std::nextafter(Histogram::BucketUpper(b), 0.0);
    EXPECT_EQ(Histogram::BucketFor(lo), b) << "lower edge of bucket " << b;
    EXPECT_EQ(Histogram::BucketFor(just_below_hi), b)
        << "upper edge of bucket " << b;
  }
}

TEST(HistogramTest, PercentileEndpointsReturnMinAndMax) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000.0);
  // Tail quantiles stay within the recorded range and ordered.
  const double p999 = h.Percentile(0.999);
  EXPECT_GE(p999, h.Percentile(0.99));
  EXPECT_LE(p999, 1000.0);
  EXPECT_GE(p999, 990.0);  // ~2% relative error bound at the tail
}

TEST(HistogramTest, BoundaryHeavySamplesKeepPercentilesInRange) {
  // All mass exactly on bucket boundaries: with the old off-by-one
  // bucketing, p50 of {8, 8, 8, 8} could report from the wrong bucket.
  Histogram h;
  for (int i = 0; i < 4; ++i) h.Add(8.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.999), 8.0);
}

}  // namespace
}  // namespace evc
