#include "sim/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace evc::sim {
namespace {

struct Payload {
  int value;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : sim_(42),
        net_(&sim_, std::make_unique<ConstantLatency>(10 * kMillisecond)) {}

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  Time delivered_at = -1;
  int got = 0;
  net_.RegisterHandler(b, "ping", [&](Message msg) {
    delivered_at = sim_.Now();
    got = msg.payload.Peek<Payload>().value;
    EXPECT_EQ(msg.from, a);
    EXPECT_EQ(msg.to, b);
  });
  net_.Send(a, b, "ping", Payload{7});
  sim_.Run();
  EXPECT_EQ(delivered_at, 10 * kMillisecond);
  EXPECT_EQ(got, 7);
  EXPECT_EQ(net_.messages_delivered(), 1u);
}

TEST_F(NetworkTest, DropWhenNoHandler) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  net_.Send(a, b, "unknown", Payload{1});
  sim_.Run();
  EXPECT_EQ(net_.messages_delivered(), 0u);
  EXPECT_EQ(net_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, CrashedDestinationDropsAtDelivery) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.Send(a, b, "m", Payload{1});
  // Crash b while the message is in flight.
  sim_.ScheduleAt(5 * kMillisecond, [&] { net_.SetNodeUp(b, false); });
  sim_.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, CrashedSenderCannotSend) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.SetNodeUp(a, false);
  net_.Send(a, b, "m", Payload{1});
  sim_.Run();
  EXPECT_EQ(received, 0);
}

TEST_F(NetworkTest, RestartedNodeReceivesAgain) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.SetNodeUp(b, false);
  net_.Send(a, b, "m", Payload{1});
  sim_.Run();
  net_.SetNodeUp(b, true);
  net_.Send(a, b, "m", Payload{2});
  sim_.Run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  const NodeId c = net_.AddNode();
  std::vector<NodeId> received_from;
  net_.RegisterHandler(c, "m", [&](Message msg) {
    received_from.push_back(msg.from);
  });
  net_.Partition({{a}, {b, c}});
  EXPECT_FALSE(net_.CanCommunicate(a, b));
  EXPECT_TRUE(net_.CanCommunicate(b, c));
  net_.Send(a, c, "m", Payload{1});  // blocked
  net_.Send(b, c, "m", Payload{2});  // same side, allowed
  sim_.Run();
  ASSERT_EQ(received_from.size(), 1u);
  EXPECT_EQ(received_from[0], b);
}

TEST_F(NetworkTest, PartitionDuringFlightDropsMessage) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.Send(a, b, "m", Payload{1});
  sim_.ScheduleAt(1, [&] { net_.Partition({{a}, {b}}); });
  sim_.Run();
  EXPECT_EQ(received, 0);
}

TEST_F(NetworkTest, HealRestoresConnectivity) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.Partition({{a}, {b}});
  net_.Heal();
  EXPECT_TRUE(net_.CanCommunicate(a, b));
  net_.Send(a, b, "m", Payload{1});
  sim_.Run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, LossRateDropsApproximateFraction) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.set_loss_rate(0.5);
  const int n = 10000;
  for (int i = 0; i < n; ++i) net_.Send(a, b, "m", Payload{i});
  sim_.Run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.5, 0.03);
}

TEST_F(NetworkTest, DuplicationDeliversTwice) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.set_duplicate_rate(1.0);
  net_.Send(a, b, "m", Payload{1});
  sim_.Run();
  EXPECT_EQ(received, 2);
}

TEST_F(NetworkTest, DuplicateSecondCopyDropsIfReceiverCrashesBetween) {
  // The duplicate is an independent delivery with its own payload copy: a
  // crash between the two delivery times must drop only the second copy.
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message msg) {
    ++received;
    // Each delivery owns its payload — safe to consume it by move.
    EXPECT_EQ(std::move(msg.payload).Take<Payload>().value, 1);
  });
  net_.set_duplicate_rate(1.0);
  net_.Send(a, b, "m", Payload{1});
  // First copy lands at 10 ms; crash before the duplicate's later slot.
  sim_.ScheduleAt(10 * kMillisecond + 1, [&] { net_.SetNodeUp(b, false); });
  sim_.Run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, SendWhilePartitionedStaysDroppedAfterHeal) {
  // Connectivity is checked at send time: a message refused under the
  // partition does not spring back to life when the partition heals before
  // its would-be delivery time.
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.Partition({{a}, {b}});
  net_.Send(a, b, "m", Payload{1});
  sim_.ScheduleAt(1 * kMillisecond, [&] { net_.Heal(); });  // before 10 ms
  sim_.Run();
  EXPECT_EQ(received, 0);
  EXPECT_GE(net_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, CanCommunicateIsSymmetricUnderPartition) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  const NodeId c = net_.AddNode();
  net_.Partition({{a, b}, {c}});
  const NodeId nodes[] = {a, b, c};
  for (NodeId x : nodes) {
    for (NodeId y : nodes) {
      EXPECT_EQ(net_.CanCommunicate(x, y), net_.CanCommunicate(y, x))
          << x << " vs " << y;
    }
  }
  EXPECT_TRUE(net_.CanCommunicate(a, b));
  EXPECT_FALSE(net_.CanCommunicate(b, c));
  // A crashed node cannot communicate either way, itself included.
  net_.Heal();
  net_.SetNodeUp(b, false);
  EXPECT_FALSE(net_.CanCommunicate(a, b));
  EXPECT_FALSE(net_.CanCommunicate(b, a));
}

TEST_F(NetworkTest, SlowLinkScalesLatencyBothWays) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  net_.SetLinkLatencyFactor(a, b, 3.0);
  Time delivered_at = -1;
  net_.RegisterHandler(b, "m", [&](Message) { delivered_at = sim_.Now(); });
  net_.RegisterHandler(a, "m", [&](Message) { delivered_at = sim_.Now(); });
  net_.Send(a, b, "m", Payload{1});
  sim_.Run();
  EXPECT_EQ(delivered_at, 30 * kMillisecond);
  net_.Send(b, a, "m", Payload{2});  // symmetric: same key both directions
  sim_.Run();
  EXPECT_EQ(delivered_at, 60 * kMillisecond);
  net_.SetLinkLatencyFactor(a, b, 1.0);  // neutral value clears the fault
  EXPECT_FALSE(net_.HasGrayFaults());
}

TEST_F(NetworkTest, FlakyLinkDropsProbabilisticallyAndCounts) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  int received = 0;
  net_.RegisterHandler(b, "m", [&](Message) { ++received; });
  net_.SetLinkDropRate(a, b, 1.0);
  for (int i = 0; i < 10; ++i) net_.Send(a, b, "m", Payload{i});
  sim_.Run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net_.messages_dropped(), 10u);
  // The oracle stays blind: the link is 100% lossy yet "reachable".
  EXPECT_TRUE(net_.CanCommunicate(a, b));
  net_.SetLinkDropRate(a, b, 0.0);
  net_.Send(a, b, "m", Payload{99});
  sim_.Run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, SlowNodeDelaysItsSendsAndReceives) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  const NodeId c = net_.AddNode();
  net_.SetNodeProcessingDelay(b, 25 * kMillisecond);
  Time delivered_at = -1;
  net_.RegisterHandler(b, "m", [&](Message) { delivered_at = sim_.Now(); });
  net_.RegisterHandler(c, "m", [&](Message) { delivered_at = sim_.Now(); });
  net_.Send(a, b, "m", Payload{1});  // slow receiver
  sim_.Run();
  EXPECT_EQ(delivered_at, 35 * kMillisecond);
  net_.Send(b, c, "m", Payload{2});  // slow sender
  sim_.Run();
  EXPECT_EQ(delivered_at, 70 * kMillisecond);
  net_.ClearGrayFaults();
  EXPECT_FALSE(net_.HasGrayFaults());
}

TEST_F(NetworkTest, SentByTypeAccounts) {
  const NodeId a = net_.AddNode();
  const NodeId b = net_.AddNode();
  net_.RegisterHandler(b, "x", [](Message) {});
  net_.Send(a, b, "x", Payload{1});
  net_.Send(a, b, "x", Payload{2});
  net_.Send(a, b, "y", Payload{3});
  sim_.Run();
  EXPECT_EQ(net_.sent_of_type(net_.InternType("x")), 2u);
  EXPECT_EQ(net_.sent_of_type(net_.InternType("y")), 1u);
}

TEST(WanMatrixTest, CrossDcSlowerThanIntraDc) {
  Simulator sim(1);
  auto latency =
      std::make_unique<WanMatrixLatency>(WanMatrixLatency::ThreeRegionBaseUs(),
                                         /*jitter_fraction=*/0.0);
  WanMatrixLatency* wan = latency.get();
  Network net(&sim, std::move(latency));
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId c = net.AddNode();
  wan->AssignNode(a, 0);
  wan->AssignNode(b, 0);
  wan->AssignNode(c, 2);
  Rng rng(1);
  const Time intra = wan->Sample(a, b, rng);
  const Time cross = wan->Sample(a, c, rng);
  EXPECT_LT(intra, 1 * kMillisecond);
  EXPECT_GT(cross, 50 * kMillisecond);
}

TEST(WanMatrixTest, JitterOnlyIncreasesLatency) {
  WanMatrixLatency wan(WanMatrixLatency::ThreeRegionBaseUs(), 0.2);
  wan.AssignNode(0, 0);
  wan.AssignNode(1, 1);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(wan.Sample(0, 1, rng), 38000);
  }
}

TEST(WanMatrixTest, DatacenterOfUnassignedNodeAborts) {
  // This used to silently default unassigned nodes to datacenter 0, which
  // made forgotten AssignNode calls corrupt WAN experiments (every stray
  // node looked US-East-local). It is now a hard check.
  WanMatrixLatency wan(WanMatrixLatency::ThreeRegionBaseUs());
  EXPECT_DEATH(wan.DatacenterOf(99), "EVC_CHECK failed");
  wan.AssignNode(99, 2);
  EXPECT_EQ(wan.DatacenterOf(99), 2u);
  EXPECT_TRUE(wan.IsAssigned(99));
  EXPECT_FALSE(wan.IsAssigned(98));
}

}  // namespace
}  // namespace evc::sim
