#include "replication/anti_entropy.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/rpc.h"

namespace evc::repl {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class AntiEntropyTest : public ::testing::Test {
 protected:
  void Build(int replica_count, AntiEntropyOptions options = {},
             uint64_t seed = 11) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    net_ = std::make_unique<sim::Network>(
        sim_.get(), std::make_unique<sim::ConstantLatency>(5 * kMillisecond));
    for (int i = 0; i < replica_count; ++i) {
      nodes_.push_back(net_->AddNode());
      storages_.push_back(std::make_unique<ReplicaStorage>(
          static_cast<uint32_t>(i), ReplicaStorageOptions{}));
      raw_storages_.push_back(storages_.back().get());
    }
    ae_ = std::make_unique<AntiEntropy>(net_.get(), nodes_, raw_storages_,
                                        options);
  }

  LamportTimestamp Ts(uint64_t c, uint32_t node = 0) {
    return LamportTimestamp{c, node};
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<sim::NodeId> nodes_;
  std::vector<std::unique_ptr<ReplicaStorage>> storages_;
  std::vector<ReplicaStorage*> raw_storages_;
  std::unique_ptr<AntiEntropy> ae_;
};

TEST_F(AntiEntropyTest, SyncPairTransfersMissingKeys) {
  Build(2);
  storages_[0]->Put("a", "1", {}, Ts(1));
  storages_[0]->Put("b", "2", {}, Ts(2));
  EXPECT_FALSE(ae_->Converged());
  EXPECT_TRUE(ae_->SyncPair(0, 1));
  EXPECT_TRUE(ae_->Converged());
  EXPECT_EQ(storages_[1]->Get("a").size(), 1u);
  EXPECT_EQ(storages_[1]->Get("b").size(), 1u);
}

TEST_F(AntiEntropyTest, SyncPairIsBidirectional) {
  Build(2);
  storages_[0]->Put("only-on-0", "x", {}, Ts(1, 0));
  storages_[1]->Put("only-on-1", "y", {}, Ts(1, 1));
  ae_->SyncPair(0, 1);
  EXPECT_TRUE(ae_->Converged());
  EXPECT_FALSE(storages_[0]->Get("only-on-1").empty());
  EXPECT_FALSE(storages_[1]->Get("only-on-0").empty());
}

TEST_F(AntiEntropyTest, SyncPairSkipsWhenIdentical) {
  Build(2);
  storages_[0]->Put("k", "v", {}, Ts(1));
  ae_->SyncPair(0, 1);
  const auto shipped_before = ae_->stats().keys_shipped;
  EXPECT_FALSE(ae_->SyncPair(0, 1));
  EXPECT_EQ(ae_->stats().keys_shipped, shipped_before);
  EXPECT_GE(ae_->stats().syncs_skipped, 1u);
}

TEST_F(AntiEntropyTest, SyncCostProportionalToDivergenceNotDbSize) {
  Build(2);
  // Large shared database.
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "shared" + std::to_string(i);
    storages_[0]->Put(key, "v", {}, Ts(i + 1));
    storages_[1]->MergeRemote(key, storages_[0]->GetRaw(key));
  }
  // Small divergence.
  for (int i = 0; i < 5; ++i) {
    storages_[0]->Put("fresh" + std::to_string(i), "v", {}, Ts(10000 + i));
  }
  ae_->SyncPair(0, 1);
  EXPECT_TRUE(ae_->Converged());
  // Keys shipped should be near the divergence (same-bucket collateral keys
  // allowed), far below database size.
  EXPECT_LT(ae_->stats().keys_shipped, 100u);
}

TEST_F(AntiEntropyTest, GossipConvergesEightReplicas) {
  AntiEntropyOptions options;
  options.interval = 50 * kMillisecond;
  options.fanout = 1;
  Build(8, options);
  for (int i = 0; i < 20; ++i) {
    storages_[0]->Put("key" + std::to_string(i), "v", {}, Ts(i + 1));
  }
  ae_->Start();
  sim_->RunFor(5 * kSecond);
  EXPECT_TRUE(ae_->Converged());
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(storages_[r]->key_count(), 20u) << "replica " << r;
  }
}

TEST_F(AntiEntropyTest, GossipConvergesWithUpdatesAtEveryReplica) {
  AntiEntropyOptions options;
  options.interval = 50 * kMillisecond;
  Build(6, options);
  for (int r = 0; r < 6; ++r) {
    storages_[r]->Put("from" + std::to_string(r), "v", {},
                      Ts(1, static_cast<uint32_t>(r)));
  }
  ae_->Start();
  sim_->RunFor(5 * kSecond);
  EXPECT_TRUE(ae_->Converged());
  EXPECT_EQ(storages_[3]->key_count(), 6u);
}

TEST_F(AntiEntropyTest, DownReplicaCatchesUpAfterRestart) {
  AntiEntropyOptions options;
  options.interval = 50 * kMillisecond;
  Build(4, options);
  net_->SetNodeUp(nodes_[3], false);
  storages_[0]->Put("k", "v", {}, Ts(1));
  ae_->Start();
  sim_->RunFor(2 * kSecond);
  EXPECT_TRUE(storages_[3]->Get("k").empty());  // down: no gossip received
  net_->SetNodeUp(nodes_[3], true);
  sim_->RunFor(3 * kSecond);
  EXPECT_TRUE(ae_->Converged());
  EXPECT_FALSE(storages_[3]->Get("k").empty());
}

TEST_F(AntiEntropyTest, DepartedPeerSkippedInPeerDrawsAndConvergence) {
  // Satellite regression: gossip used to draw peers from the construction-
  // time node list forever, so a departed member kept being dialed (wasted
  // rounds against a node that left) and its frozen copy kept vetoing
  // Converged. Departed peers must be skipped in draws (counted in
  // ae.peer_skips), stop initiating rounds, and drop out of Converged.
  AntiEntropyOptions options;
  options.interval = 50 * kMillisecond;
  Build(4, options);
  ae_->MarkDeparted(nodes_[3]);
  storages_[0]->Put("k", "v", {}, Ts(1));
  ae_->Start();
  sim_->RunFor(5 * kSecond);
  EXPECT_TRUE(ae_->Converged()) << "departed replica still counted";
  EXPECT_TRUE(storages_[3]->Get("k").empty()) << "departed replica gossiped";
  EXPECT_GT(ae_->stats().peers_skipped, 0u);
}

TEST_F(AntiEntropyTest, LiveAddedMemberJoinsGossipAndConverges) {
  AntiEntropyOptions options;
  options.interval = 50 * kMillisecond;
  Build(3, options);
  storages_[0]->Put("k", "v", {}, Ts(1));
  ae_->Start();
  sim_->RunFor(kSecond);
  ReplicaStorage extra_storage(99, ReplicaStorageOptions{});
  const sim::NodeId extra = net_->AddNode();
  ae_->AddMember(extra, &extra_storage);
  sim_->RunFor(5 * kSecond);
  EXPECT_TRUE(ae_->Converged());
  EXPECT_FALSE(extra_storage.Get("k").empty());
}

TEST_F(AntiEntropyTest, ConflictingSiblingsSpreadEverywhere) {
  AntiEntropyOptions options;
  options.interval = 50 * kMillisecond;
  Build(3, options);
  // Concurrent writes of the same key at two replicas.
  storages_[0]->Put("cart", "milk", {}, Ts(1, 0));
  storages_[1]->Put("cart", "eggs", {}, Ts(1, 1));
  ae_->Start();
  sim_->RunFor(5 * kSecond);
  EXPECT_TRUE(ae_->Converged());
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(storages_[r]->Get("cart").size(), 2u) << "replica " << r;
  }
}

TEST_F(AntiEntropyTest, PushOnlyStillConvergesButSlower) {
  // Push-pull moves data both directions per round; push-only needs the
  // reverse pairing to happen by chance. Both converge eventually.
  AntiEntropyOptions pp;
  pp.interval = 50 * kMillisecond;
  pp.push_pull = false;
  Build(4, pp);
  storages_[0]->Put("a", "1", {}, Ts(1, 0));
  storages_[3]->Put("b", "2", {}, Ts(1, 3));
  ae_->Start();
  sim_->RunFor(10 * kSecond);
  EXPECT_TRUE(ae_->Converged());
}

TEST_F(AntiEntropyTest, TombstonesPropagate) {
  AntiEntropyOptions options;
  options.interval = 50 * kMillisecond;
  Build(3, options);
  storages_[0]->Put("k", "v", {}, Ts(1));
  ae_->SyncPair(0, 1);
  ae_->SyncPair(0, 2);
  EXPECT_TRUE(ae_->Converged());
  storages_[1]->Delete("k", storages_[1]->ContextFor("k"), Ts(2, 1));
  ae_->Start();
  sim_->RunFor(5 * kSecond);
  EXPECT_TRUE(ae_->Converged());
  EXPECT_TRUE(storages_[0]->Get("k").empty());
  EXPECT_TRUE(storages_[2]->Get("k").empty());
}

// Property sweep: convergence holds across cluster sizes and fanouts.
class AntiEntropyConvergenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AntiEntropyConvergenceTest, AlwaysConverges) {
  const int replicas = std::get<0>(GetParam());
  const int fanout = std::get<1>(GetParam());
  sim::Simulator sim(static_cast<uint64_t>(replicas * 100 + fanout));
  sim::Network net(&sim,
                   std::make_unique<sim::UniformLatency>(kMillisecond,
                                                         10 * kMillisecond));
  std::vector<sim::NodeId> nodes;
  std::vector<std::unique_ptr<ReplicaStorage>> storages;
  std::vector<ReplicaStorage*> raw;
  for (int i = 0; i < replicas; ++i) {
    nodes.push_back(net.AddNode());
    storages.push_back(std::make_unique<ReplicaStorage>(
        static_cast<uint32_t>(i), ReplicaStorageOptions{}));
    raw.push_back(storages.back().get());
  }
  AntiEntropyOptions options;
  options.interval = 40 * kMillisecond;
  options.fanout = fanout;
  AntiEntropy ae(&net, nodes, raw, options);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const auto r = static_cast<uint32_t>(rng.NextBounded(replicas));
    storages[r]->Put("key" + std::to_string(i), "v", {},
                     LamportTimestamp{static_cast<uint64_t>(i + 1), r});
  }
  ae.Start();
  sim.RunFor(20 * kSecond);
  EXPECT_TRUE(ae.Converged())
      << "replicas=" << replicas << " fanout=" << fanout;
}

INSTANTIATE_TEST_SUITE_P(Shapes, AntiEntropyConvergenceTest,
                         ::testing::Combine(::testing::Values(2, 4, 16, 32),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace evc::repl
