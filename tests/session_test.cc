#include "session/session.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace evc::session {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// Harness that can create staleness on demand: N=3, W=1, R=1, so a write
// can be made invisible at one replica by crashing it around the write.
class SessionTest : public ::testing::Test {
 protected:
  void Build(SessionOptions session_options, uint64_t seed = 3) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    net_ = std::make_unique<sim::Network>(
        sim_.get(), std::make_unique<sim::UniformLatency>(
                        2 * kMillisecond, 30 * kMillisecond));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    repl::QuorumConfig config;
    config.replication_factor = 3;
    config.read_quorum = 1;
    config.write_quorum = 1;
    config.sloppy = false;
    cluster_ = std::make_unique<repl::DynamoCluster>(rpc_.get(), config);
    servers_ = cluster_->AddServers(3);
    client_node_ = net_->AddNode();
    session_ = std::make_unique<Session>(cluster_.get(), sim_.get(),
                                         client_node_, servers_,
                                         session_options);
  }

  Result<Version> PutSync(Session* session, const std::string& key,
                          const std::string& value) {
    std::optional<Result<Version>> out;
    session->Put(key, value, [&](Result<Version> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  Result<repl::ReadResult> GetSync(Session* session, const std::string& key,
                                   sim::Time budget = 10 * kSecond) {
    std::optional<Result<repl::ReadResult>> out;
    session->Get(key,
                 [&](Result<repl::ReadResult> r) { out = std::move(r); });
    sim_->RunFor(budget);
    EVC_CHECK(out.has_value());
    return *out;
  }

  /// Writes while one preference replica of `key` is down, leaving that
  /// replica stale afterwards (it restarts with no hint delivery or
  /// anti-entropy to fill it in). The victim is never the session's
  /// coordinator (servers_[0]), or the write itself would fail.
  Result<Version> StalePut(Session* session, const std::string& key,
                           const std::string& value) {
    const auto pref = cluster_->PreferenceList(key);
    const sim::NodeId victim = pref[2] == servers_[0] ? pref[1] : pref[2];
    net_->SetNodeUp(victim, false);
    auto result = PutSync(session, key, value);
    net_->SetNodeUp(victim, true);
    return result;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<repl::DynamoCluster> cluster_;
  std::vector<sim::NodeId> servers_;
  sim::NodeId client_node_ = 0;
  std::unique_ptr<Session> session_;
};

SessionOptions AllOff() {
  SessionOptions o;
  o.read_your_writes = false;
  o.monotonic_reads = false;
  o.monotonic_writes = false;
  o.writes_follow_reads = false;
  return o;
}

TEST_F(SessionTest, BasicPutGetWithGuarantees) {
  Build(SessionOptions{});
  ASSERT_TRUE(PutSync(session_.get(), "k", "v").ok());
  auto read = GetSync(session_.get(), "k");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->versions.size(), 1u);
  EXPECT_EQ(read->versions[0].value, "v");
}

TEST_F(SessionTest, ReadYourWritesEnforcedUnderStaleness) {
  SessionOptions opts;
  opts.retry_interval = 20 * kMillisecond;
  Build(opts);
  for (int i = 0; i < 25; ++i) {
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(StalePut(session_.get(), "hot", value).ok());
    auto read = GetSync(session_.get(), "hot", 20 * kSecond);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    bool saw = false;
    for (const auto& v : read->versions) saw |= (v.value == value);
    EXPECT_TRUE(saw) << "RYW violated at iteration " << i;
  }
  EXPECT_EQ(session_->stats().guarantee_failures, 0u);
}

TEST_F(SessionTest, ViolationsDetectedWhenGuaranteesOff) {
  Build(AllOff());
  for (int i = 0; i < 40; ++i) {
    const std::string value = "v" + std::to_string(i);
    auto put = StalePut(session_.get(), "hot", value);
    if (!put.ok()) continue;
    auto read = GetSync(session_.get(), "hot");
    ASSERT_TRUE(read.ok());
  }
  // Some R=1 reads hit the stale replica; the session counted the RYW
  // anomalies but never retried or blocked.
  EXPECT_GT(session_->stats().ryw_violations_detected, 0u);
  EXPECT_EQ(session_->stats().guarantee_retries, 0u);
  EXPECT_EQ(session_->stats().guarantee_failures, 0u);
}

TEST_F(SessionTest, MonotonicReadsNeverGoBackwards) {
  SessionOptions opts;
  opts.read_your_writes = false;  // isolate MR
  opts.monotonic_writes = false;
  opts.writes_follow_reads = false;
  opts.retry_interval = 20 * kMillisecond;
  Build(opts);
  VersionVector high_water;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(StalePut(session_.get(), "k",
                         "v" + std::to_string(i)).ok());
    auto read = GetSync(session_.get(), "k", 20 * kSecond);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read->context.Descends(high_water))
        << "read went backwards at iteration " << i;
    high_water = read->context;
  }
}

TEST_F(SessionTest, MonotonicWritesOrderSessionWrites) {
  SessionOptions opts = AllOff();
  opts.monotonic_writes = true;
  opts.rotate_coordinators = true;  // stress: different coordinator per op
  Build(opts);
  Version last;
  for (int i = 0; i < 10; ++i) {
    auto put = PutSync(session_.get(), "k", "v" + std::to_string(i));
    ASSERT_TRUE(put.ok());
    if (i > 0) {
      EXPECT_TRUE(put->vv.Dominates(last.vv)) << "write " << i;
    }
    last = *put;
  }
  sim_->RunFor(2 * kSecond);
  auto read = GetSync(session_.get(), "k");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->versions.size(), 1u);  // totally ordered: no siblings
  EXPECT_EQ(read->versions[0].value, "v9");
}

TEST_F(SessionTest, WithoutMonotonicWritesBlindSiblingsAppear) {
  SessionOptions opts = AllOff();
  opts.rotate_coordinators = true;
  Build(opts);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(PutSync(session_.get(), "k", "v" + std::to_string(i)).ok());
  }
  sim_->RunFor(2 * kSecond);
  auto read = GetSync(session_.get(), "k");
  ASSERT_TRUE(read.ok());
  // Blind writes through different coordinators are concurrent: the lost
  // ordering shows up as sibling accumulation.
  EXPECT_GT(read->versions.size(), 1u);
}

TEST_F(SessionTest, WritesFollowReadsOrdersAcrossSessions) {
  // Session A posts. Session B reads the post, then replies: with WFR the
  // reply's version causally follows the post's.
  Build(SessionOptions{});
  ASSERT_TRUE(PutSync(session_.get(), "thread", "original post").ok());
  sim_->RunFor(2 * kSecond);

  SessionOptions b_opts;
  b_opts.retry_interval = 20 * kMillisecond;
  Session session_b(cluster_.get(), sim_.get(), net_->AddNode(), servers_,
                    b_opts);
  auto read = GetSync(&session_b, "thread");
  ASSERT_TRUE(read.ok());
  const VersionVector post_vv = read->context;
  ASSERT_FALSE(post_vv.empty());

  auto reply = PutSync(&session_b, "thread", "reply");
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->vv.Dominates(post_vv));
}

TEST_F(SessionTest, StickyFreshnessRetriesRepollTheSameCoordinator) {
  // Regression: the seed advanced the coordinator index on every freshness
  // retry regardless of rotate_coordinators, silently turning sticky
  // sessions into rotating ones. A sticky session must re-poll the SAME
  // coordinator and wait for replication to catch up.
  SessionOptions opts;
  opts.rotate_coordinators = false;  // sticky (the default, but explicit)
  opts.retry_interval = 20 * kMillisecond;
  Build(opts);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(
        StalePut(session_.get(), "hot", "v" + std::to_string(i)).ok());
    ASSERT_TRUE(GetSync(session_.get(), "hot", 20 * kSecond).ok());
  }
  ASSERT_GT(session_->stats().guarantee_retries, 0u)
      << "workload never forced a retry; the regression is untested";
  // Every coordinated get, retries included, landed on one node.
  int coordinators_used = 0;
  for (const sim::NodeId node : servers_) {
    const uint64_t gets = sim_->metrics()
                              .node(node)
                              .CounterFor("dyn.coordinated_gets")
                              .value();
    if (gets > 0) ++coordinators_used;
  }
  EXPECT_EQ(coordinators_used, 1);
}

TEST_F(SessionTest, RotatingFreshnessRetriesSpreadAcrossCoordinators) {
  // Contrast case pinning the other routing policy: with rotation on, the
  // same stale workload spreads coordinated gets over several replicas.
  SessionOptions opts;
  opts.rotate_coordinators = true;
  opts.retry_interval = 20 * kMillisecond;
  Build(opts);
  for (int i = 0; i < 25; ++i) {
    // A rotating Put can land on the downed victim replica; skip those ops
    // (the reads still exercise the rotating retry path).
    if (!StalePut(session_.get(), "hot", "v" + std::to_string(i)).ok()) {
      continue;
    }
    (void)GetSync(session_.get(), "hot", 20 * kSecond);
  }
  int coordinators_used = 0;
  for (const sim::NodeId node : servers_) {
    if (sim_->metrics().node(node).CounterFor("dyn.coordinated_gets").value() >
        0) {
      ++coordinators_used;
    }
  }
  EXPECT_GT(coordinators_used, 1);
}

TEST_F(SessionTest, ErrorsPassThroughWhenClusterUnavailable) {
  SessionOptions opts;
  opts.max_retries = 3;
  opts.retry_interval = 20 * kMillisecond;
  Build(opts);
  ASSERT_TRUE(PutSync(session_.get(), "k", "v1").ok());
  for (const auto node : cluster_->PreferenceList("k")) {
    net_->SetNodeUp(node, false);
  }
  auto read = GetSync(session_.get(), "k", 30 * kSecond);
  EXPECT_FALSE(read.ok());
}

TEST_F(SessionTest, StatsCount) {
  Build(SessionOptions{});
  ASSERT_TRUE(PutSync(session_.get(), "a", "1").ok());
  ASSERT_TRUE(GetSync(session_.get(), "a").ok());
  EXPECT_EQ(session_->stats().writes, 1u);
  EXPECT_EQ(session_->stats().reads, 1u);
}

}  // namespace
}  // namespace evc::session
