// Negative fixture for unordered-iteration: ordered containers iterate
// freely; unordered containers may be looked up (find/count/operator[]) or
// iterated under a justified suppression.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Registry {
  std::map<std::string, int> ordered_;
  std::unordered_map<std::string, int> index_;
};

int Sum(const Registry& reg) {
  int total = 0;
  for (const auto& kv : reg.ordered_) total += kv.second;  // ordered: fine
  auto it = reg.index_.find("x");                          // lookup: fine
  if (it != reg.index_.end()) total += it->second;
  std::vector<int> values;
  // evc-lint: allow(unordered-iteration) reason=order-insensitive sum, result does not depend on iteration order
  for (const auto& kv : reg.index_) values.push_back(kv.second);
  for (int v : values) total += v;
  return total;
}
