// Positive fixture: range-for over hash-ordered containers, via a member, a
// local, a getter, and an alias — all four must trip unordered-iteration.
#include <string>
#include <unordered_map>
#include <unordered_set>

using PeerSet = std::unordered_set<int>;

struct Registry {
  const std::unordered_map<std::string, int>& counters() const {
    return counters_;
  }
  std::unordered_map<std::string, int> counters_;
};

int Sum(const Registry& reg, const PeerSet& peers) {
  int total = 0;
  for (const auto& kv : reg.counters_) total += kv.second;    // member
  for (const auto& kv : reg.counters()) total += kv.second;   // getter
  std::unordered_set<int> local = {1, 2, 3};
  for (int v : local) total += v;                             // local
  for (int p : peers) total += p;                             // alias param
  return total;
}
