// Negative fixture for discarded-status: consumed results (assigned,
// returned, tested, passed as argument, or macro-wrapped) are all fine.
#include <string>

namespace evc {
class Status {
 public:
  bool ok() const { return true; }
};
}  // namespace evc

#define EVC_CHECK_OK(expr) \
  do {                     \
    auto _st = (expr);     \
    (void)_st;             \
  } while (0)

evc::Status Flush();
bool Log(evc::Status status);

evc::Status Tick() {
  evc::Status st = Flush();       // assigned
  if (Flush().ok()) return st;    // tested
  Log(Flush());                   // passed as argument
  EVC_CHECK_OK(Flush());          // macro-wrapped
  return Flush();                 // returned
}
