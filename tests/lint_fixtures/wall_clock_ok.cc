// Negative fixture for the wall-clock check: sim time, prose mentions of
// banned symbols in comments/strings, and lookalike identifiers are all fine.
#include <cstdint>

struct Simulator {
  int64_t Now() const { return now_; }
  int64_t now_ = 0;
};

// A comment may freely mention std::chrono::system_clock or gettimeofday;
// the scanner strips comments before matching.
int64_t NowUs(const Simulator& sim) {
  const char* doc = "steady_clock is banned";  // string literals stripped too
  (void)doc;
  int64_t uptime = sim.Now();       // sim time, not wall time
  int64_t lifetime_us = uptime;     // identifier containing "time" is fine
  return lifetime_us;
}
