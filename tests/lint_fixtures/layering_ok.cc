// Fixture: downward includes are the legal direction. Scanned under the
// synthetic path src/sim/uses_common.cc — sim (rank 2) may depend on common
// (rank 0) and obs (rank 1). Zero findings expected.
#include "common/status.h"
#include "obs/metrics.h"

namespace fixture {
int UsesCommonFromSim() { return 2; }
}  // namespace fixture
