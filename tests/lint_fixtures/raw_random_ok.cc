// Negative fixture for the raw-random check: seeded evc::Rng draws and
// lookalike identifiers ("operand", "brand") must not be flagged.
#include <cstdint>

struct Rng {
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t NextU64() { return state_ += 0x9e3779b97f4a7c15ULL; }
  uint64_t state_;
};

uint64_t Draw(uint64_t seed) {
  Rng rng(seed);                  // explicitly seeded: deterministic
  uint64_t operand = rng.NextU64();
  uint64_t brand = operand ^ 7;   // "rand" substring inside identifiers is ok
  // std::rand() in a comment is fine.
  return brand;
}
