// Negative fixture for suppression parsing: well-formed suppressions on the
// same line and on the line above, including a multi-check allow().
#include <cstdlib>
#include <unordered_map>

std::unordered_map<int, int> table_;

int Sum() {
  int total = 0;
  // evc-lint: allow(unordered-iteration) reason=order-insensitive sum
  for (const auto& kv : table_) total += kv.second;
  for (const auto& kv : table_) total += kv.second;  // evc-lint: allow(unordered-iteration) reason=same-line form
  // evc-lint: allow(unordered-iteration,raw-random) reason=multi-check form exercising both rules
  for (const auto& kv : table_) total += kv.second + std::rand();
  return total;
}
