// Fixture: half of a deliberate include cycle (with layering_cycle_b.h).
// Header guards make it compile; the include-cycle check must still flag it.
#ifndef EVC_TESTS_LINT_FIXTURES_LAYERING_CYCLE_A_H_
#define EVC_TESTS_LINT_FIXTURES_LAYERING_CYCLE_A_H_

#include "layering_cycle_b.h"

namespace fixture {
struct A {
  int payload;
};
}  // namespace fixture

#endif  // EVC_TESTS_LINT_FIXTURES_LAYERING_CYCLE_A_H_
