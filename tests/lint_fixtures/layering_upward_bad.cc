// Fixture: an include that climbs the layer order. The test scans this
// content under the synthetic path src/obs/uses_sim.cc — obs (rank 1) may
// not reach up into sim (rank 2). One layering finding expected.
#include "sim/simulator.h"

namespace fixture {
int UsesSimFromObs() { return 1; }
}  // namespace fixture
