// Fixture: the legal way to snapshot a hash-ordered container — copy it out,
// then sort before anything order-sensitive sees it. Zero findings expected.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::unordered_map<std::string, int> counters;

std::vector<std::pair<std::string, int>> ExportedRows() {
  std::vector<std::pair<std::string, int>> rows(counters.begin(),
                                                counters.end());
  std::sort(rows.begin(), rows.end());
  return rows;
}

void FillScratch(std::vector<std::pair<std::string, int>>* scratch) {
  scratch->assign(counters.begin(), counters.end());
  std::sort(scratch->begin(), scratch->end());
}

}  // namespace fixture
