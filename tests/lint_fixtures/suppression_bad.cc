// Positive fixture for suppression parsing: each directive below is
// malformed and must produce a bad-suppression finding (and therefore must
// NOT silence the violation it sits on).
#include <unordered_map>

std::unordered_map<int, int> table_;

int Sum() {
  int total = 0;
  // evc-lint: allow(unordered-iteration)
  for (const auto& kv : table_) total += kv.second;  // missing reason=
  // evc-lint: allow(no-such-check) reason=typo in the check name
  for (const auto& kv : table_) total += kv.second;
  // evc-lint: allow() reason=names no checks
  for (const auto& kv : table_) total += kv.second;
  // evc-lint: permit(unordered-iteration) reason=wrong verb
  for (const auto& kv : table_) total += kv.second;
  return total;
}
