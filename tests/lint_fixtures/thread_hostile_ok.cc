// Fixture: thread-ready shapes — constants are fine, state is owned, and a
// justified global carries an allow(). Zero findings expected.
#include <cstdint>
#include <string>

namespace fixture {

constexpr uint64_t kMaxInflight = 64;
const std::string kClusterName = "evc";

class TicketCounter {
 public:
  int Next() { return ++ticket_; }

 private:
  int ticket_ = 0;  // owned, per-instance: no cross-thread sharing
};

// evc-lint: allow(thread-hostile) reason=fixture demonstrating a justified global
uint64_t g_sanctioned_counter = 0;

int PlainLocal() {
  int local = 3;  // plain locals are always fine
  return local;
}

}  // namespace fixture
