// Fixture: the other half of the deliberate include cycle.
#ifndef EVC_TESTS_LINT_FIXTURES_LAYERING_CYCLE_B_H_
#define EVC_TESTS_LINT_FIXTURES_LAYERING_CYCLE_B_H_

#include "layering_cycle_a.h"

namespace fixture {
struct B {
  int payload;
};
}  // namespace fixture

#endif  // EVC_TESTS_LINT_FIXTURES_LAYERING_CYCLE_B_H_
