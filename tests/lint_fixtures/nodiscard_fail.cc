// Compile-fail fixture: dropping a Status (or Result) must be a compile
// error under -Werror=unused-result now that both types are [[nodiscard]].
// The lint self-test compiles this file with the project compiler and
// asserts that compilation FAILS — proving the dropped-error bug class is
// extinct at compile time, not just flagged by the scanner.
#include "common/status.h"

namespace {

evc::Status Flush() { return evc::Status::OK(); }

evc::Result<int> Parse() { return 7; }

}  // namespace

int main() {
  Flush();  // dropped Status: must not compile
  Parse();  // dropped Result: must not compile
  return 0;
}
