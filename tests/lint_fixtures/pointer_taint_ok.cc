// Fixture: the replay-stable alternatives — key and hash off stable ids,
// never addresses; pointer casts stay pointer-to-pointer. Zero findings.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace fixture {

struct Node {
  uint64_t id;
  std::string name;
};

void LogNode(const Node* n) {
  std::printf("node %llu\n", static_cast<unsigned long long>(n->id));
}

uint64_t NodeKey(const Node* n) { return n->id; }

size_t NodeHash(const Node* n) { return std::hash<uint64_t>{}(n->id); }

struct Header {
  uint32_t magic;
};

const Header* AsHeader(const void* raw) {
  return reinterpret_cast<const Header*>(raw);  // ptr-to-ptr: fine
}

}  // namespace fixture
