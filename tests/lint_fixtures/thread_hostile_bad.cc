// Fixture: thread-hostile state ahead of the Runtime port. Three findings
// expected: a mutable namespace-scope global, a mutable function-local
// static, and a thread_local. (Scanned under a synthetic src/ path — the
// audit only applies to src/.)
#include <cstdint>
#include <string>

namespace fixture {

uint64_t g_request_counter = 0;

int NextTicket() {
  static int ticket = 0;
  return ++ticket;
}

thread_local std::string t_last_error;

}  // namespace fixture
