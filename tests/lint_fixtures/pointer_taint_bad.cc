// Fixture: pointer values flowing into program state. Four findings
// expected: a percent-p format string, a reinterpret_cast to uintptr_t, a
// C-style uintptr_t cast, and std::hash over a pointer type.
#include <cstdint>
#include <cstdio>
#include <functional>

namespace fixture {

struct Node {
  int id;
};

void LogNode(const Node* n) {
  std::printf("node at %p\n", static_cast<const void*>(n));
}

uint64_t NodeKey(const Node* n) {
  return reinterpret_cast<uintptr_t>(n);
}

uint64_t NodeKeyCStyle(const Node* n) {
  return (uintptr_t)n;
}

size_t NodeHash(const Node* n) {
  return std::hash<const Node*>{}(n);
}

}  // namespace fixture
