// Positive fixture: every draw below must trip the raw-random check.
#include <cstdlib>
#include <random>

int Draw() {
  std::random_device rd;
  std::mt19937 gen;  // unseeded: state depends on default ctor, not our seed
  std::srand(42);
  int a = std::rand();
  std::default_random_engine engine;
  (void)gen;
  (void)engine;
  return a + static_cast<int>(rd());
}
