// Fixture: hash-order nondeterminism laundered through a snapshot copy.
// Three findings expected: iterator-pair constructor, assign(), and a
// back_inserter copy — none of the targets is ever sorted.
#include <iterator>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::unordered_map<std::string, int> counters;

std::vector<std::pair<std::string, int>> ExportedRows() {
  std::vector<std::pair<std::string, int>> rows(counters.begin(),
                                                counters.end());
  return rows;  // hash order escapes into the export
}

void FillScratch(std::vector<std::pair<std::string, int>>* scratch) {
  scratch->assign(counters.begin(), counters.end());
}

std::vector<std::pair<std::string, int>> Copied() {
  std::vector<std::pair<std::string, int>> out;
  std::copy(counters.begin(), counters.end(), std::back_inserter(out));
  return out;
}

}  // namespace fixture
