// Compile-pass companion to nodiscard_fail.cc: the same calls with their
// results consumed must compile cleanly under -Werror=unused-result. This
// pins that the [[nodiscard]] attribute rejects only genuine drops.
#include "common/status.h"

namespace {

evc::Status Flush() { return evc::Status::OK(); }

evc::Result<int> Parse() { return 7; }

}  // namespace

int main() {
  evc::Status st = Flush();
  if (!st.ok()) return 1;
  EVC_CHECK_OK(Flush());
  evc::Result<int> r = Parse();
  return r.ok() ? 0 : 1;
}
