// Positive fixture: expression-statement calls that drop a Status / Result
// must trip discarded-status (both free functions and member calls).
#include <string>

namespace evc {
class Status {};
template <typename T>
class Result {};
}  // namespace evc

evc::Status Flush();
evc::Result<int> Decode(const std::string& bytes);

struct Journal {
  evc::Status Append(const std::string& record);
};

void Tick(Journal& journal) {
  Flush();                  // dropped Status
  journal.Append("entry");  // dropped Status via member call
  Decode("payload");        // dropped Result
}
