// Positive fixture: bare assert() and the <cassert> include must trip
// check-macro (assert vanishes under NDEBUG, which is how release and fuzz
// builds run).
#include <cassert>

int Clamp(int v) {
  assert(v >= 0);
  return v > 100 ? 100 : v;
}
