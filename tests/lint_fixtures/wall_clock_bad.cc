// Positive fixture: every line below must trip the wall-clock check.
// (Fixtures are scanned textually by evc_lint, never compiled.)
#include <chrono>
#include <ctime>

long NowMs() {
  auto t = std::chrono::system_clock::now();
  auto u = std::chrono::steady_clock::now();
  auto v = std::chrono::high_resolution_clock::now();
  std::time_t raw = std::time(nullptr);
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  (void)t;
  (void)u;
  (void)v;
  return static_cast<long>(raw);
}
