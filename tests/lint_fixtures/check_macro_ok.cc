// Negative fixture for check-macro: EVC_CHECK, static_assert, and uppercase
// test macros (ASSERT_EQ) are all fine; so is "assert" in prose.
#include <cstdio>
#include <cstdlib>

#define EVC_CHECK(cond) \
  do {                  \
    if (!(cond)) {      \
      std::abort();     \
    }                   \
  } while (0)

#define ASSERT_EQ(a, b) EVC_CHECK((a) == (b))

static_assert(sizeof(int) >= 4, "platform check");

// We assert(x) nothing here; comments are stripped before matching.
int Clamp(int v) {
  EVC_CHECK(v >= 0);
  ASSERT_EQ(v, v);
  return v > 100 ? 100 : v;
}
