// Satellite S3: deterministic time-varying workload shapes — the FlashCrowd
// load profile and the HotKeyShift rotating key distribution.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/distributions.h"
#include "common/rng.h"
#include "workload/shapes.h"

namespace evc::workload {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(FlashCrowdTest, StepProfileIsFlatOutsideAndPeakInsideTheSpike) {
  FlashCrowdConfig config;
  config.base_multiplier = 1.0;
  config.spike_multiplier = 5.0;
  config.spike_start = 5 * kSecond;
  config.spike_duration = 5 * kSecond;
  FlashCrowd crowd(config);

  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(0), 1.0);
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(5 * kSecond - 1), 1.0);
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(5 * kSecond), 5.0);  // closed start
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(7 * kSecond), 5.0);
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(10 * kSecond - 1), 5.0);
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(10 * kSecond), 1.0);  // open end
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(60 * kSecond), 1.0);
}

TEST(FlashCrowdTest, RampedEdgesInterpolateLinearly) {
  FlashCrowdConfig config;
  config.base_multiplier = 1.0;
  config.spike_multiplier = 5.0;
  config.spike_start = 10 * kSecond;
  config.spike_duration = 10 * kSecond;
  config.ramp = 2 * kSecond;
  FlashCrowd crowd(config);

  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(10 * kSecond), 1.0);  // ramp begins
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(11 * kSecond), 3.0);  // halfway up
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(12 * kSecond), 5.0);  // at peak
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(19 * kSecond), 5.0);
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(21 * kSecond), 3.0);  // halfway down
  EXPECT_DOUBLE_EQ(crowd.MultiplierAt(22 * kSecond), 1.0);  // back to base
}

TEST(FlashCrowdTest, GapScalesInverselyAndNeverReachesZero) {
  FlashCrowdConfig config;
  config.spike_multiplier = 4.0;
  config.spike_start = kSecond;
  config.spike_duration = kSecond;
  FlashCrowd crowd(config);

  const sim::Time nominal = 8 * kMillisecond;
  EXPECT_EQ(crowd.GapAt(0, nominal), nominal);
  EXPECT_EQ(crowd.GapAt(kSecond, nominal), 2 * kMillisecond);  // 4x load
  // Even an absurd multiplier cannot produce a zero (busy-loop) gap.
  FlashCrowdConfig extreme = config;
  extreme.spike_multiplier = 1e12;
  EXPECT_EQ(FlashCrowd(extreme).GapAt(kSecond, nominal), 1);
}

TEST(HotKeyShiftTest, IdentityBeforeFirstShiftAndDeterministicAfter) {
  // With no Shift() yet the wrapper is a transparent pass-through, so
  // pinned corpora that never draw the load fault family stay bit-identical.
  Rng draws_a(42);
  Rng draws_b(42);
  auto inner = std::make_unique<ZipfianDistribution>(64);
  ZipfianDistribution bare(64);
  HotKeyShift shifted(std::move(inner), /*seed=*/7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(shifted.Next(draws_a), bare.Next(draws_b));
  }
  EXPECT_EQ(shifted.offset(), 0u);
  EXPECT_EQ(shifted.epoch(), 0u);

  // Same seeds => same shift schedule => identical post-shift streams.
  auto make = [] {
    return HotKeyShift(std::make_unique<ZipfianDistribution>(64), 7);
  };
  HotKeyShift x = make();
  HotKeyShift y = make();
  Rng rx(9), ry(9);
  for (int round = 0; round < 5; ++round) {
    x.Shift();
    y.Shift();
    EXPECT_EQ(x.offset(), y.offset());
    for (int i = 0; i < 50; ++i) EXPECT_EQ(x.Next(rx), y.Next(ry));
  }
}

TEST(HotKeyShiftTest, ShiftAlwaysMovesTheHotSet) {
  HotKeyShift dist(std::make_unique<ZipfianDistribution>(16), 3);
  uint64_t prev = dist.offset();
  for (int i = 0; i < 100; ++i) {
    dist.Shift();
    EXPECT_NE(dist.offset(), prev);  // nonzero delta by construction
    prev = dist.offset();
  }
  EXPECT_EQ(dist.epoch(), 100u);
}

TEST(HotKeyShiftTest, RotationPreservesTheFrequencyLaw) {
  // The rotation relabels keys; it must not change the popularity profile.
  // Draw a large sample before and after a shift and compare the sorted
  // frequency vectors (the law) plus verify the hottest key actually moved.
  constexpr int kDraws = 20000;
  constexpr uint64_t kItems = 32;
  HotKeyShift dist(std::make_unique<ZipfianDistribution>(kItems, 0.99), 11);
  Rng rng(123);

  auto histogram = [&] {
    std::map<uint64_t, int> counts;
    for (int i = 0; i < kDraws; ++i) ++counts[dist.Next(rng)];
    return counts;
  };
  auto hottest = [](const std::map<uint64_t, int>& counts) {
    uint64_t best = 0;
    int best_count = -1;
    for (const auto& [key, count] : counts) {
      if (count > best_count) {
        best = key;
        best_count = count;
      }
    }
    return best;
  };
  auto sorted_freqs = [](const std::map<uint64_t, int>& counts) {
    std::vector<int> freqs;
    for (const auto& [key, count] : counts) freqs.push_back(count);
    std::sort(freqs.rbegin(), freqs.rend());
    return freqs;
  };

  const auto before = histogram();
  dist.Shift();
  const auto after = histogram();

  // Zipf(0.99) over 32 items: the top item draws ~15% of traffic; two
  // independent 20k samples of the same law agree on the shape to a few
  // percent. The hot identity must differ (rotation moved it).
  EXPECT_NE(hottest(before), hottest(after));
  EXPECT_EQ((hottest(before) + dist.offset()) % kItems, hottest(after));
  const auto freq_before = sorted_freqs(before);
  const auto freq_after = sorted_freqs(after);
  ASSERT_FALSE(freq_before.empty());
  ASSERT_FALSE(freq_after.empty());
  // Compare the head of the law (rank-1 and rank-2 frequencies).
  for (size_t rank = 0; rank < 2; ++rank) {
    const double a = freq_before[rank];
    const double b = freq_after[rank];
    EXPECT_NEAR(a, b, 0.15 * a) << "rank " << rank;
  }
}

}  // namespace
}  // namespace evc::workload
