#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "crdt/orset.h"
#include "crdt/sets.h"

namespace evc::crdt {
namespace {

TEST(GSetTest, AddAndContains) {
  GSet s;
  EXPECT_TRUE(s.Add("a"));
  EXPECT_FALSE(s.Add("a"));  // duplicate
  EXPECT_TRUE(s.Contains("a"));
  EXPECT_FALSE(s.Contains("b"));
  EXPECT_EQ(s.size(), 1u);
}

TEST(GSetTest, MergeIsUnion) {
  GSet a, b;
  a.Add("x");
  b.Add("y");
  a.Merge(b);
  EXPECT_TRUE(a.Contains("x"));
  EXPECT_TRUE(a.Contains("y"));
  GSet c = b;
  c.Merge(a);
  EXPECT_TRUE(a == c);
}

TEST(TwoPhaseSetTest, AddThenRemove) {
  TwoPhaseSet s;
  s.Add("a");
  EXPECT_TRUE(s.Contains("a"));
  s.Remove("a");
  EXPECT_FALSE(s.Contains("a"));
}

TEST(TwoPhaseSetTest, RemoveWinsForever) {
  // The 2P-set limitation: re-adding after removal has no effect.
  TwoPhaseSet s;
  s.Add("a");
  s.Remove("a");
  s.Add("a");
  EXPECT_FALSE(s.Contains("a"));
}

TEST(TwoPhaseSetTest, ConcurrentAddRemoveRemoveWins) {
  TwoPhaseSet a, b;
  a.Add("item");
  b.Merge(a);
  a.Remove("item");
  b.Add("item");  // concurrent re-add on b
  a.Merge(b);
  b.Merge(a);
  EXPECT_FALSE(a.Contains("item"));
  EXPECT_TRUE(a == b);
}

TEST(TwoPhaseSetTest, LiveElementsExcludeTombstoned) {
  TwoPhaseSet s;
  s.Add("keep");
  s.Add("drop");
  s.Remove("drop");
  EXPECT_EQ(s.LiveElements(), (std::vector<std::string>{"keep"}));
  EXPECT_EQ(s.tombstone_count(), 1u);
}

// ---------------------------------------------------------------------------
// Observed-remove sets. Every behavioural test runs against both the
// tombstoned OrSet and the optimized OrSwot via a small adapter, proving
// they implement the same semantics.
// ---------------------------------------------------------------------------

template <typename SetT>
struct OrSetAdapter {
  static SetT Make(uint32_t replica) { return SetT(replica); }
};

template <typename SetT>
class ObservedRemoveSetTest : public ::testing::Test {};

using OrSetImplementations = ::testing::Types<OrSet, OrSwot>;
TYPED_TEST_SUITE(ObservedRemoveSetTest, OrSetImplementations);

TYPED_TEST(ObservedRemoveSetTest, AddContainsRemove) {
  TypeParam s(0);
  s.Add("a");
  EXPECT_TRUE(s.Contains("a"));
  s.Remove("a");
  EXPECT_FALSE(s.Contains("a"));
  EXPECT_EQ(s.size(), 0u);
}

TYPED_TEST(ObservedRemoveSetTest, ReAddAfterRemoveWorks) {
  // Unlike 2P-set, OR-sets support re-adding.
  TypeParam s(0);
  s.Add("a");
  s.Remove("a");
  s.Add("a");
  EXPECT_TRUE(s.Contains("a"));
}

TYPED_TEST(ObservedRemoveSetTest, RemoveOfAbsentElementIsNoop) {
  TypeParam s(0);
  s.Remove("ghost");
  EXPECT_FALSE(s.Contains("ghost"));
  s.Add("ghost");
  EXPECT_TRUE(s.Contains("ghost"));
}

TYPED_TEST(ObservedRemoveSetTest, ConcurrentAddSurvivesRemove) {
  // The shopping-cart property: replica 0 removes the item while replica 1
  // concurrently adds it again; the add wins after merge.
  TypeParam a(0), b(1);
  a.Add("beer");
  b.Merge(a);
  a.Remove("beer");   // removes only the tag a observed
  b.Add("beer");      // concurrent new tag
  a.Merge(b);
  b.Merge(a);
  EXPECT_TRUE(a.Contains("beer"));
  EXPECT_TRUE(b.Contains("beer"));
}

TYPED_TEST(ObservedRemoveSetTest, ObservedRemoveDeletesEverywhere) {
  // A remove that observed every tag wins everywhere: no resurrection.
  TypeParam a(0), b(1);
  a.Add("item");
  b.Merge(a);
  b.Remove("item");  // b observed a's tag
  a.Merge(b);
  EXPECT_FALSE(a.Contains("item"));
  EXPECT_FALSE(b.Contains("item"));
}

TYPED_TEST(ObservedRemoveSetTest, MergeCommutative) {
  TypeParam a(0), b(1);
  a.Add("x");
  a.Add("y");
  a.Remove("y");
  b.Add("y");
  b.Add("z");
  TypeParam ab = a;
  ab.Merge(b);
  TypeParam ba = b;
  ba.Merge(a);
  auto ea = ab.Elements();
  auto eb = ba.Elements();
  std::sort(ea.begin(), ea.end());
  std::sort(eb.begin(), eb.end());
  EXPECT_EQ(ea, eb);
}

TYPED_TEST(ObservedRemoveSetTest, MergeIdempotent) {
  TypeParam a(0), b(1);
  a.Add("x");
  b.Add("y");
  b.Remove("y");
  a.Merge(b);
  TypeParam snapshot = a;
  a.Merge(b);
  EXPECT_TRUE(a == snapshot);
}

TYPED_TEST(ObservedRemoveSetTest, ThreeReplicaGossipConverges) {
  Rng rng(42);
  const char* items[] = {"a", "b", "c", "d"};
  TypeParam replicas[3] = {TypeParam(0), TypeParam(1), TypeParam(2)};
  for (int step = 0; step < 400; ++step) {
    auto& r = replicas[rng.NextBounded(3)];
    const std::string item = items[rng.NextBounded(4)];
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      r.Add(item);
    } else if (dice < 0.7) {
      r.Remove(item);
    } else {
      r.Merge(replicas[rng.NextBounded(3)]);
    }
  }
  for (int round = 0; round < 2; ++round) {
    for (auto& x : replicas) {
      for (const auto& y : replicas) x.Merge(y);
    }
  }
  EXPECT_TRUE(replicas[0] == replicas[1]);
  EXPECT_TRUE(replicas[1] == replicas[2]);
}

// --- implementation-specific state-size behaviour ---------------------------

TEST(OrSetStateTest, TombstonesAccumulateForever) {
  OrSet s(0);
  for (int i = 0; i < 100; ++i) {
    s.Add("churn");
    s.Remove("churn");
  }
  EXPECT_FALSE(s.Contains("churn"));
  EXPECT_EQ(s.tombstone_count(), 100u);  // state grows with remove traffic
}

TEST(OrSwotStateTest, RemovesFreeState) {
  OrSwot s(0);
  for (int i = 0; i < 100; ++i) {
    s.Add("churn");
    s.Remove("churn");
  }
  EXPECT_FALSE(s.Contains("churn"));
  EXPECT_EQ(s.live_dot_count(), 0u);
  // Context is a single compact entry for replica 0.
  EXPECT_EQ(s.context().size(), 1u);
  EXPECT_EQ(s.context().Get(0), 100u);
}

TEST(OrSwotStateTest, StateSmallerThanTombstonedAfterChurn) {
  OrSet tombstoned(0);
  OrSwot optimized(0);
  for (int i = 0; i < 500; ++i) {
    const std::string item = "item" + std::to_string(i % 10);
    tombstoned.Add(item);
    tombstoned.Remove(item);
    optimized.Add(item);
    optimized.Remove(item);
  }
  EXPECT_LT(optimized.StateBytes(), tombstoned.StateBytes() / 10);
}

TEST(OrSwotStateTest, SameCoordinatorReAddCoalescesDots) {
  OrSwot s(0);
  s.Add("x");
  s.Add("x");
  s.Add("x");
  EXPECT_EQ(s.live_dot_count(), 1u);  // newest dot supersedes observed ones
}

// Semantic equivalence under a randomized shared script.
class OrSetEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrSetEquivalenceTest, TombstonedAndOptimizedAgree) {
  Rng rng(GetParam());
  OrSet ts[2] = {OrSet(0), OrSet(1)};
  OrSwot opt[2] = {OrSwot(0), OrSwot(1)};
  const char* items[] = {"p", "q", "r"};
  for (int step = 0; step < 300; ++step) {
    const uint32_t r = static_cast<uint32_t>(rng.NextBounded(2));
    const std::string item = items[rng.NextBounded(3)];
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      ts[r].Add(item);
      opt[r].Add(item);
    } else if (dice < 0.7) {
      ts[r].Remove(item);
      opt[r].Remove(item);
    } else {
      const uint32_t peer = static_cast<uint32_t>(rng.NextBounded(2));
      ts[r].Merge(ts[peer]);
      opt[r].Merge(opt[peer]);
    }
    // Observable state must match at every step, on every replica.
    for (int i = 0; i < 2; ++i) {
      auto a = ts[i].Elements();
      auto b = opt[i].Elements();
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "step " << step << " replica " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrSetEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace evc::crdt
