#include "sim/calendar_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/slab.h"

namespace evc::sim {
namespace {

using Time = CalendarQueue::Time;

// Initial wheel geometry (mirrors calendar_queue.cc); used to aim events at
// bucket edges and window boundaries.
constexpr Time kWidth = 64;
constexpr Time kWindow = kWidth * 256;

/// Reference model: a sorted vector of (when, seq) keys with exact-cancel
/// semantics. Everything the calendar queue promises, in twenty lines.
class NaiveQueue {
 public:
  uint64_t Push(Time when, int payload) {
    const uint64_t id = next_id_++;
    entries_.push_back({when, next_seq_++, id, payload});
    return id;
  }
  bool Cancel(uint64_t id) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->id == id) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }
  size_t pending() const { return entries_.size(); }
  /// Pops the least (when, seq) entry.
  std::pair<Time, int> PopMin() {
    auto best = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->when < best->when ||
          (it->when == best->when && it->seq < best->seq)) {
        best = it;
      }
    }
    std::pair<Time, int> out{best->when, best->payload};
    entries_.erase(best);
    return out;
  }

 private:
  struct Entry {
    Time when;
    uint64_t seq;
    uint64_t id;
    int payload;
  };
  std::vector<Entry> entries_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
};

/// Pairs the queue under test with the model and cross-checks every op.
class Harness {
 public:
  Harness() : q_(&slab_) {}

  void Push(Time when, int payload) {
    const uint64_t real = q_.Push(when, Task(&slab_, [this, payload] {
                                    popped_payload_ = payload;
                                  }));
    ASSERT_NE(real, 0u);
    const uint64_t model = model_.Push(when, payload);
    id_map_.push_back({real, model});
  }

  void CancelNth(size_t n) {
    ASSERT_LT(n, id_map_.size());
    const bool real = q_.Cancel(id_map_[n].first);
    const bool model = model_.Cancel(id_map_[n].second);
    EXPECT_EQ(real, model) << "cancel #" << n;
  }

  /// Pops from both queues, cross-checks, and returns the popped time so
  /// callers can keep their simulated clock >= the queue's high-water mark
  /// (the Simulator's `when >= Now()` precondition, which the queue
  /// EVC_CHECKs on push).
  Time PopAndCheck() {
    EXPECT_GT(model_.pending(), 0u);
    const auto [want_when, want_payload] = model_.PopMin();
    Time got_when = -1;
    Time peeked = -1;
    EXPECT_TRUE(q_.PeekWhen(&peeked));
    Task fn = q_.PopMin(&got_when);
    popped_payload_ = -1;
    fn.Run();
    EXPECT_EQ(got_when, want_when);
    EXPECT_EQ(peeked, want_when);
    EXPECT_EQ(popped_payload_, want_payload);
    return got_when;
  }

  void CheckPending() { EXPECT_EQ(q_.pending(), model_.pending()); }
  void DrainAndCheck() {
    while (model_.pending() > 0) PopAndCheck();
    EXPECT_TRUE(q_.empty());
  }

  CalendarQueue& queue() { return q_; }
  size_t scheduled() const { return id_map_.size(); }

 private:
  Slab slab_;
  CalendarQueue q_;
  NaiveQueue model_;
  std::vector<std::pair<uint64_t, uint64_t>> id_map_;  // (real, model)
  int popped_payload_ = -1;
};

TEST(CalendarQueueTest, PopsInKeyOrder) {
  Harness h;
  h.Push(30, 3);
  h.Push(10, 1);
  h.Push(20, 2);
  h.DrainAndCheck();
}

TEST(CalendarQueueTest, SameTimeEventsAreFifo) {
  Harness h;
  for (int i = 0; i < 100; ++i) h.Push(5, i);
  h.DrainAndCheck();
}

TEST(CalendarQueueTest, InterleavedPushPopKeepsFifoWithinTime) {
  Harness h;
  for (int i = 0; i < 10; ++i) h.Push(100, i);
  for (int i = 0; i < 5; ++i) h.PopAndCheck();
  // Same-time pushes issued after some pops still order after the earlier
  // same-time survivors (seq is global, assigned at push).
  for (int i = 10; i < 20; ++i) h.Push(100, i);
  h.DrainAndCheck();
}

TEST(CalendarQueueTest, CancelIsExactAndPendingStaysTrue) {
  Harness h;
  for (int i = 0; i < 50; ++i) h.Push(i * 7, i);
  for (size_t n = 0; n < 50; n += 2) h.CancelNth(n);
  h.CheckPending();
  // Double-cancel is a no-op in both.
  for (size_t n = 0; n < 50; n += 2) h.CancelNth(n);
  h.CheckPending();
  h.DrainAndCheck();
}

TEST(CalendarQueueTest, CancelAfterPopReturnsFalse) {
  Slab slab;
  CalendarQueue q(&slab);
  const uint64_t id = q.Push(10, Task(&slab, [] {}));
  q.PopMin().Run();
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_EQ(q.pending(), 0u);
}

TEST(CalendarQueueTest, ForeignAndZeroIdsCancelFalse) {
  Slab slab;
  CalendarQueue q(&slab);
  q.Push(10, Task(&slab, [] {}));
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(0xdeadbeefull << 32));
  EXPECT_FALSE(q.Cancel((1ull << 32) | 999));  // slot out of range
  EXPECT_EQ(q.pending(), 1u);
}

TEST(CalendarQueueTest, StaleGenerationIdCancelFalse) {
  Slab slab;
  CalendarQueue q(&slab);
  const uint64_t first = q.Push(10, Task(&slab, [] {}));
  q.PopMin().Run();
  // The slot is reused with a bumped generation; the old id must not cancel
  // the new event.
  const uint64_t second = q.Push(20, Task(&slab, [] {}));
  EXPECT_EQ(first & 0xffffffffu, second & 0xffffffffu);  // same slot
  EXPECT_NE(first, second);                              // different gen
  EXPECT_FALSE(q.Cancel(first));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.Cancel(second));
}

TEST(CalendarQueueTest, EventsExactlyOnBucketAndWindowEdges) {
  Harness h;
  // Left edge, interior, and right edge of several buckets, plus both sides
  // of the initial window boundary (where events divert to overflow).
  const Time edges[] = {0,           1,           kWidth - 1, kWidth,
                        kWidth + 1,  2 * kWidth,  kWindow - 1, kWindow,
                        kWindow + 1, 2 * kWindow, 3 * kWindow - 1};
  int payload = 0;
  for (Time t : edges) h.Push(t, payload++);
  for (Time t : edges) h.Push(t, payload++);  // duplicates: FIFO at each edge
  h.CheckPending();
  h.DrainAndCheck();
}

TEST(CalendarQueueTest, PushIntoBucketTheCursorAlreadyPassed) {
  // Regression: after pops advance the cursor past empty buckets, a new
  // event landing in one of those earlier buckets (its time is >= the last
  // popped time but its bucket index is < cursor) must still surface next,
  // not wait for wheel wraparound.
  Slab slab;
  CalendarQueue q(&slab);
  int got = 0;
  // Pop deep into the window so the cursor sits far right.
  q.Push(kWindow - kWidth, Task(&slab, [] {}));
  q.PopMin().Run();
  // Same bucket-range time, earlier bucket than the cursor's position is
  // impossible (times are monotone), but the same bucket re-used is: push at
  // the exact last-popped time.
  q.Push(kWindow - kWidth, Task(&slab, [&] { got = 1; }));
  Time when = -1;
  ASSERT_TRUE(q.PeekWhen(&when));
  EXPECT_EQ(when, kWindow - kWidth);
  q.PopMin().Run();
  EXPECT_EQ(got, 1);
}

TEST(CalendarQueueTest, RefillWidthAdaptationAndGrowthAreExercised) {
  // Dense bursts far apart force refills; thousands of same-window events
  // force bucket growth; the sparse->dense transition forces width changes.
  Slab slab;
  CalendarQueue q(&slab);
  int ran = 0;
  Time t = 0;
  for (int burst = 0; burst < 8; ++burst) {
    for (int i = 0; i < 3000; ++i) {
      q.Push(t + i / 100, Task(&slab, [&ran] { ++ran; }));
    }
    t += 100 * kWindow;  // next burst far outside the current window
    q.Push(t, Task(&slab, [&ran] { ++ran; }));
  }
  Time prev = -1;
  Time when = 0;
  int popped = 0;
  while (!q.empty()) {
    q.PopMin(&when).Run();
    EXPECT_GE(when, prev);
    prev = when;
    ++popped;
  }
  EXPECT_EQ(popped, ran);
  EXPECT_EQ(popped, 8 * 3000 + 8);
  EXPECT_GT(q.stats().refills, 0u);
  EXPECT_GT(q.stats().width_changes, 0u);
  EXPECT_GT(q.stats().grows, 0u);
}

TEST(CalendarQueueTest, OverflowTombstoneCompactionKeepsOrderExact) {
  // RPC-style load: far-future timers that are almost always cancelled
  // before firing. Tombstones must get swept out of the overflow heap (the
  // compaction path) without perturbing the order or exactness of what
  // survives.
  Harness h;
  Rng rng(99);
  std::vector<size_t> armed;
  for (int round = 0; round < 50; ++round) {
    for (int t = 0; t < 20; ++t) {
      const Time when = 500000 + round * 1000 + t;  // ~0.5s out: overflow
      h.Push(when, round * 20 + t);
      armed.push_back(h.scheduled() - 1);
    }
    // Cancel ~90% of what's armed, like timeouts disarmed by replies.
    while (armed.size() > 2) {
      const size_t pick = rng.NextBounded(armed.size());
      h.CancelNth(armed[pick]);
      armed.erase(armed.begin() + static_cast<ptrdiff_t>(pick));
    }
    h.CheckPending();
  }
  EXPECT_GT(h.queue().stats().compactions, 0u)
      << "cancel-heavy overflow load never triggered a tombstone sweep";
  h.DrainAndCheck();
}

TEST(CalendarQueueTest, FuzzAgainstModelAcrossRegimes) {
  // Mixed push/pop/cancel traffic in three time regimes: clustered (wheel
  // fast path), spread (overflow + refill), and bimodal (both). The model
  // is the spec; every pop is cross-checked.
  struct Regime {
    uint64_t seed;
    Time spread;
  };
  const Regime regimes[] = {{1, 40}, {2, 100 * kWindow}, {3, 3 * kWindow}};
  for (const Regime& r : regimes) {
    Harness h;
    Rng rng(r.seed);
    Time now = 0;
    std::vector<size_t> live;
    for (int op = 0; op < 4000; ++op) {
      const uint64_t dice = rng.NextBounded(10);
      if (dice < 5 || h.queue().empty()) {
        const Time when = now + static_cast<Time>(rng.NextBounded(
                                    static_cast<uint64_t>(r.spread) + 1));
        h.Push(when, op);
        live.push_back(h.scheduled() - 1);
      } else if (dice < 8) {
        // Popping advances virtual time: later pushes must not be earlier
        // than the last executed event (the Simulator invariant).
        now = std::max(now, h.PopAndCheck());
      } else if (!live.empty()) {
        const size_t pick = rng.NextBounded(live.size());
        h.CancelNth(live[pick]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      }
      h.CheckPending();
    }
    h.DrainAndCheck();
  }
}

TEST(CalendarQueueTest, PopReturnsRunnableTaskExactlyOnce) {
  Slab slab;
  CalendarQueue q(&slab);
  int runs = 0;
  q.Push(1, Task(&slab, [&runs] { ++runs; }));
  Task t = q.PopMin();
  EXPECT_TRUE(t.valid());
  t.Run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(t.valid());  // consumed
}

}  // namespace
}  // namespace evc::sim
