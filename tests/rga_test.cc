#include "crdt/rga.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace evc::crdt {
namespace {

TEST(RgaTest, EmptySequence) {
  Rga rga(0);
  EXPECT_EQ(rga.live_size(), 0u);
  EXPECT_EQ(rga.Text(), "");
  EXPECT_TRUE(rga.IdAt(0).status().IsOutOfRange());
}

TEST(RgaTest, PushBackBuildsSequence) {
  Rga rga(0);
  rga.PushBack("h");
  rga.PushBack("i");
  rga.PushBack("!");
  EXPECT_EQ(rga.Text(), "hi!");
  EXPECT_EQ(rga.live_size(), 3u);
}

TEST(RgaTest, InsertAfterHeadPrepends) {
  Rga rga(0);
  rga.PushBack("b");
  rga.InsertAfter(kRgaHead, "a");
  EXPECT_EQ(rga.Text(), "ab");
}

TEST(RgaTest, InsertInMiddle) {
  Rga rga(0);
  const RgaId a = rga.PushBack("a");
  rga.PushBack("c");
  rga.InsertAfter(a, "b");
  EXPECT_EQ(rga.Text(), "abc");
}

TEST(RgaTest, EraseTombstones) {
  Rga rga(0);
  rga.PushBack("a");
  const RgaId b = rga.PushBack("b");
  rga.PushBack("c");
  EXPECT_TRUE(rga.Erase(b));
  EXPECT_EQ(rga.Text(), "ac");
  EXPECT_EQ(rga.live_size(), 2u);
  EXPECT_EQ(rga.node_count(), 3u);  // tombstone retained
  EXPECT_FALSE(rga.Erase(b));       // double erase
  EXPECT_FALSE(rga.Contains(b));
}

TEST(RgaTest, IdAtSkipsTombstones) {
  Rga rga(0);
  const RgaId a = rga.PushBack("a");
  rga.PushBack("b");
  rga.Erase(a);
  auto id0 = rga.IdAt(0);
  ASSERT_TRUE(id0.ok());
  EXPECT_TRUE(rga.Contains(*id0));
  EXPECT_EQ(rga.Text(), "b");
}

TEST(RgaTest, MergeDisjointAppends) {
  Rga a(0), b(1);
  a.PushBack("x");
  b.PushBack("y");
  a.MergeFrom(b);
  b.MergeFrom(a);
  EXPECT_EQ(a.Text(), b.Text());
  EXPECT_EQ(a.live_size(), 2u);
}

TEST(RgaTest, ConcurrentInsertsAtSamePositionConverge) {
  // Both replicas insert at the head concurrently; after exchange both see
  // the same deterministic order.
  Rga a(0), b(1);
  a.InsertAfter(kRgaHead, "A");
  b.InsertAfter(kRgaHead, "B");
  a.MergeFrom(b);
  b.MergeFrom(a);
  EXPECT_EQ(a.Text(), b.Text());
  EXPECT_EQ(a.live_size(), 2u);
}

TEST(RgaTest, ConcurrentInsertAndDeleteConverge) {
  Rga a(0), b(1);
  const RgaId x = a.PushBack("x");
  b.MergeFrom(a);
  a.Erase(x);          // a deletes x
  b.InsertAfter(x, "y");  // b concurrently inserts after x
  a.MergeFrom(b);
  b.MergeFrom(a);
  EXPECT_EQ(a.Text(), "y");  // x gone, y anchored correctly
  EXPECT_EQ(a.Text(), b.Text());
}

TEST(RgaTest, CollaborativeEditingScenario) {
  // Two editors type interleaved words into a shared document.
  Rga alice(0), bob(1);
  RgaId last = kRgaHead;
  for (const char* c : {"t", "h", "e", " "}) last = alice.InsertAfter(last, c);
  bob.MergeFrom(alice);
  // Alice continues "cat", Bob concurrently appends "dog" after " ".
  RgaId a_last = last;
  for (const char* c : {"c", "a", "t"}) a_last = alice.InsertAfter(a_last, c);
  RgaId b_last = last;
  for (const char* c : {"d", "o", "g"}) b_last = bob.InsertAfter(b_last, c);
  alice.MergeFrom(bob);
  bob.MergeFrom(alice);
  EXPECT_EQ(alice.Text(), bob.Text());
  // Both words are intact (no character interleaving within a word).
  const std::string text = alice.Text();
  EXPECT_TRUE(text == "the catdog" || text == "the dogcat") << text;
}

TEST(RgaTest, ApplyRemoteDuplicateInsertIgnored) {
  Rga a(0), b(1);
  a.PushBack("x");
  const RgaOp op = a.Log()[0];
  EXPECT_TRUE(b.ApplyRemote(op));
  EXPECT_TRUE(b.ApplyRemote(op));  // duplicate: accepted, no effect
  EXPECT_EQ(b.live_size(), 1u);
}

TEST(RgaTest, ApplyRemoteOutOfOrderBuffers) {
  Rga a(0), b(1);
  const RgaId first = a.PushBack("1");
  a.InsertAfter(first, "2");
  const RgaOp dependent = a.Log()[1];
  const RgaOp root = a.Log()[0];
  EXPECT_FALSE(b.ApplyRemote(dependent));  // ref unknown yet
  EXPECT_TRUE(b.ApplyRemote(root));
  EXPECT_TRUE(b.ApplyRemote(dependent));
  EXPECT_EQ(b.Text(), "12");
}

TEST(RgaTest, DeleteBeforeInsertArrivesBuffers) {
  Rga a(0), b(1);
  const RgaId x = a.PushBack("x");
  a.Erase(x);
  const RgaOp ins = a.Log()[0];
  const RgaOp del = a.Log()[1];
  EXPECT_FALSE(b.ApplyRemote(del));
  EXPECT_TRUE(b.ApplyRemote(ins));
  EXPECT_TRUE(b.ApplyRemote(del));
  EXPECT_EQ(b.Text(), "");
}

class RgaConvergencePropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RgaConvergencePropertyTest, RandomConcurrentEditingConverges) {
  Rng rng(GetParam());
  Rga replicas[3] = {Rga(0), Rga(1), Rga(2)};
  for (int step = 0; step < 150; ++step) {
    Rga& r = replicas[rng.NextBounded(3)];
    const double dice = rng.NextDouble();
    if (dice < 0.55 || r.live_size() == 0) {
      // Insert at a random live position (or head).
      RgaId ref = kRgaHead;
      if (r.live_size() > 0 && rng.NextBool(0.7)) {
        auto id = r.IdAt(rng.NextBounded(r.live_size()));
        ASSERT_TRUE(id.ok());
        ref = *id;
      }
      r.InsertAfter(ref, std::string(1, static_cast<char>(
                                            'a' + rng.NextBounded(26))));
    } else if (dice < 0.75) {
      auto id = r.IdAt(rng.NextBounded(r.live_size()));
      ASSERT_TRUE(id.ok());
      r.Erase(*id);
    } else {
      r.MergeFrom(replicas[rng.NextBounded(3)]);
    }
  }
  for (int round = 0; round < 2; ++round) {
    for (auto& x : replicas) {
      for (auto& y : replicas) x.MergeFrom(y);
    }
  }
  EXPECT_EQ(replicas[0].Text(), replicas[1].Text());
  EXPECT_EQ(replicas[1].Text(), replicas[2].Text());
  EXPECT_EQ(replicas[0].node_count(), replicas[1].node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RgaConvergencePropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace evc::crdt
