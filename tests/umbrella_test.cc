// Compiles the umbrella header as one unit and covers the small leftovers:
// the logging filter and the five-region WAN topology.

#include "evc.h"

#include <gtest/gtest.h>

namespace evc {
namespace {

TEST(UmbrellaTest, PublicSurfaceCompilesAndLinks) {
  // Touch one symbol from each corner of the API so the linker pulls in
  // everything the umbrella exports.
  Status s = Status::OK();
  VersionVector vv;
  crdt::GCounter counter;
  counter.Increment(0);
  verify::CheckResult check = verify::CheckLinearizable({});
  workload::WorkloadConfig wl = workload::WorkloadConfig::YcsbA();
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(vv.empty());
  EXPECT_EQ(counter.Value(), 1u);
  EXPECT_TRUE(check.linearizable);
  EXPECT_DOUBLE_EQ(wl.read_proportion, 0.5);
}

TEST(LoggingTest, LevelFilterGates) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  EVC_LOG_ERROR("suppressed %d", 1);  // must not crash, prints nothing
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kError));
  SetLogLevel(saved);
}

TEST(WanFiveRegionTest, MatrixIsSymmetricWithIntraDcDiagonal) {
  const auto base = sim::WanMatrixLatency::FiveRegionBaseUs();
  ASSERT_EQ(base.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(base[i].size(), 5u);
    EXPECT_LT(base[i][i], 1000);  // intra-DC sub-millisecond
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(base[i][j], base[j][i]) << i << "," << j;
      if (i != j) {
        EXPECT_GT(base[i][j], 10000);  // WAN links >= 10 ms
      }
    }
  }
}

TEST(WanFiveRegionTest, FiveDatacenterStoreWorks) {
  core::StoreOptions options;
  options.level = core::ConsistencyLevel::kEventual;
  options.datacenters = 5;
  core::ReplicatedStore store(options);
  const sim::NodeId client = store.AddClient(4);  // Australia
  bool put_ok = false;
  store.Put(client, "k", "v", [&](Status s) { put_ok = s.ok(); });
  store.RunFor(10 * sim::kSecond);
  EXPECT_TRUE(put_ok);
  std::optional<std::string> value;
  store.Get(client, "k", [&](Result<std::string> r) {
    if (r.ok()) value = *r;
  });
  store.RunFor(10 * sim::kSecond);
  EXPECT_EQ(value, std::optional<std::string>("v"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (int c = 0; c <= 11; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

}  // namespace
}  // namespace evc
