#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace evc {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedDifferentStream) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, GaussianMeanAndStddev) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(42), parent2(42);
  Rng child1 = parent1.Fork(5);
  Rng child2 = parent2.Fork(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child1.NextU64(), child2.NextU64());
  }
  Rng parent3(42);
  Rng other = parent3.Fork(6);
  Rng parent4(42);
  Rng base = parent4.Fork(5);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (other.NextU64() == base.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), a);
  EXPECT_EQ(SplitMix64(state2), b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace evc
