// Client resilience layer: retry/backoff, deadline propagation, hedged
// requests, phi-accrual failure detection, and the circuit breaker.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "resilience/admission.h"
#include "resilience/resilient_rpc.h"
#include "sim/latency.h"

namespace evc::resilience {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicy, ExponentialGrowthCappedWithoutJitter) {
  RetryOptions opts;
  opts.initial_backoff = 25 * kMillisecond;
  opts.max_backoff = 100 * kMillisecond;
  opts.multiplier = 2.0;
  opts.jitter = 0.0;
  RetryPolicy policy(opts, 1);
  EXPECT_EQ(policy.BackoffBefore(1), 25 * kMillisecond);
  EXPECT_EQ(policy.BackoffBefore(2), 50 * kMillisecond);
  EXPECT_EQ(policy.BackoffBefore(3), 100 * kMillisecond);
  EXPECT_EQ(policy.BackoffBefore(4), 100 * kMillisecond);  // capped
  EXPECT_EQ(policy.BackoffBefore(10), 100 * kMillisecond);
}

TEST(RetryPolicy, JitterStaysInBandAndIsSeedDeterministic) {
  RetryOptions opts;
  opts.initial_backoff = 100 * kMillisecond;
  opts.max_backoff = kSecond;
  opts.jitter = 0.2;
  opts.jitter_mode = JitterMode::kEqual;  // the legacy +/-20% band
  RetryPolicy a(opts, 99);
  RetryPolicy b(opts, 99);
  RetryPolicy c(opts, 100);
  bool any_diff_from_c = false;
  for (int retry = 1; retry <= 8; ++retry) {
    const sim::Time backoff = a.BackoffBefore(retry);
    EXPECT_EQ(backoff, b.BackoffBefore(retry));  // same seed, same draws
    const double nominal =
        std::min(static_cast<double>(opts.max_backoff),
                 static_cast<double>(opts.initial_backoff) *
                     std::pow(opts.multiplier, retry - 1));
    EXPECT_GE(backoff, static_cast<sim::Time>(nominal * 0.8) - 1);
    EXPECT_LE(backoff, static_cast<sim::Time>(nominal * 1.2) + 1);
    if (backoff != c.BackoffBefore(retry)) any_diff_from_c = true;
  }
  EXPECT_TRUE(any_diff_from_c);  // different seed, different jitter
}

// Satellite S1: the default jitter mode is FULL — each sleep is uniform in
// (0, capped_backoff], not a narrow band around the nominal value.
TEST(RetryPolicy, FullJitterDrawsSpanTheWholeWindow) {
  RetryOptions opts;
  opts.initial_backoff = 100 * kMillisecond;
  opts.max_backoff = kSecond;
  ASSERT_EQ(opts.jitter_mode, JitterMode::kFull);  // the default
  RetryPolicy policy(opts, 7);
  sim::Time lo = opts.max_backoff;
  sim::Time hi = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::Time b = policy.BackoffBefore(1);  // nominal 100ms
    EXPECT_GE(b, 1);
    EXPECT_LE(b, 100 * kMillisecond);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  // 200 uniform draws cover the window: something landed in the bottom and
  // top quarters, which the +/-20% band can never reach.
  EXPECT_LT(lo, 25 * kMillisecond);
  EXPECT_GT(hi, 75 * kMillisecond);
}

// Satellite S1 regression: N clients whose first attempts failed at the same
// instant. Equal jitter re-arrives them inside a 40%-wide burst window — the
// synchronized wave that feeds a metastable collapse. Full jitter spreads
// the same wave over the whole backoff window.
TEST(RetryPolicy, FullJitterBreaksUpSynchronizedRetryWave) {
  constexpr int kClients = 64;
  const auto spread_of = [](JitterMode mode) {
    RetryOptions opts;
    opts.initial_backoff = 100 * kMillisecond;
    opts.max_backoff = kSecond;
    opts.jitter = 0.2;
    opts.jitter_mode = mode;
    sim::Time lo = opts.max_backoff;
    sim::Time hi = 0;
    for (int c = 0; c < kClients; ++c) {
      RetryPolicy policy(opts, 1000 + static_cast<uint64_t>(c));
      const sim::Time b = policy.BackoffBefore(1);
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    return std::make_pair(lo, hi);
  };
  const auto [equal_lo, equal_hi] = spread_of(JitterMode::kEqual);
  const auto [full_lo, full_hi] = spread_of(JitterMode::kFull);
  // The legacy band: every re-arrival inside [80ms, 120ms].
  EXPECT_GE(equal_lo, 80 * kMillisecond - 1);
  EXPECT_LE(equal_hi, 120 * kMillisecond + 1);
  // Full jitter: the same cohort lands across (0, 100ms], at least twice as
  // wide as the band and reaching far below it.
  EXPECT_LT(full_lo, 40 * kMillisecond);
  EXPECT_GT(full_hi - full_lo, 2 * (equal_hi - equal_lo));
}

// ---------------------------------------------------------------------------
// PhiAccrualDetector
// ---------------------------------------------------------------------------

TEST(PhiAccrualDetector, RegularHeartbeatsKeepPhiLowSilenceRaisesIt) {
  PhiAccrualDetector det;
  sim::Time now = 0;
  for (int i = 0; i < 30; ++i) {
    now += 100 * kMillisecond;
    det.OnArrival(7, now);
  }
  // Right after an arrival, phi is ~0 and the peer is trusted.
  EXPECT_LT(det.Phi(7, now + 50 * kMillisecond), 1.0);
  EXPECT_FALSE(det.IsSuspected(7, now + 50 * kMillisecond));
  // After 20x the usual interval of silence, suspicion is overwhelming.
  EXPECT_GE(det.Phi(7, now + 2 * kSecond), det.options().suspect_threshold);
  EXPECT_TRUE(det.IsSuspected(7, now + 2 * kSecond));
  // A fresh arrival clears the suspicion.
  det.OnArrival(7, now + 2 * kSecond);
  EXPECT_FALSE(det.IsSuspected(7, now + 2 * kSecond + 50 * kMillisecond));
}

TEST(PhiAccrualDetector, UnknownPeerIsNotSuspected) {
  PhiAccrualDetector det;
  EXPECT_EQ(det.Phi(3, kSecond), 0.0);
  EXPECT_FALSE(det.IsSuspected(3, kSecond));
}

TEST(PhiAccrualDetector, ConsecutiveFailureFallbackFiresWithoutHistory) {
  DetectorOptions opts;
  opts.consecutive_failures_to_suspect = 3;
  PhiAccrualDetector det(opts);
  det.OnFailure(5, kSecond);
  det.OnFailure(5, 2 * kSecond);
  EXPECT_FALSE(det.IsSuspected(5, 2 * kSecond));
  det.OnFailure(5, 3 * kSecond);
  EXPECT_TRUE(det.IsSuspected(5, 3 * kSecond));
  // An arrival resets the failure streak.
  det.OnArrival(5, 4 * kSecond);
  EXPECT_FALSE(det.IsSuspected(5, 4 * kSecond));
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreaker, TripsOpensProbesAndRecloses) {
  BreakerOptions opts;
  opts.failure_threshold = 2;
  opts.open_duration = 100 * kMillisecond;
  CircuitBreaker breaker(opts);

  EXPECT_TRUE(breaker.AllowRequest(1, 0));
  breaker.OnFailure(1, 10 * kMillisecond);
  EXPECT_TRUE(breaker.AllowRequest(1, 20 * kMillisecond));
  breaker.OnFailure(1, 30 * kMillisecond);  // second failure: trip
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.StateOf(1, 40 * kMillisecond), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(1, 40 * kMillisecond));
  EXPECT_EQ(breaker.rejects(), 1u);

  // Cool-down elapsed: exactly one half-open probe slot.
  const sim::Time later = 30 * kMillisecond + opts.open_duration;
  EXPECT_EQ(breaker.StateOf(1, later), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(1, later));
  EXPECT_FALSE(breaker.AllowRequest(1, later));  // probe slot taken

  breaker.OnSuccess(1);
  EXPECT_EQ(breaker.StateOf(1, later + 1), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(1, later + 1));
}

TEST(CircuitBreaker, FailedProbeReopensWithFreshCoolDown) {
  BreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_duration = 100 * kMillisecond;
  CircuitBreaker breaker(opts);
  breaker.OnFailure(9, 0);  // trip
  EXPECT_TRUE(breaker.AllowRequest(9, 100 * kMillisecond));  // probe
  breaker.OnFailure(9, 110 * kMillisecond);                  // probe failed
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.AllowRequest(9, 150 * kMillisecond));
  EXPECT_TRUE(breaker.AllowRequest(9, 210 * kMillisecond));
}

// ---------------------------------------------------------------------------
// ResilientRpc
// ---------------------------------------------------------------------------

struct EchoReq {
  std::string text;
};

class ResilientRpcTest : public ::testing::Test {
 protected:
  ResilientRpcTest()
      : sim_(11),
        net_(&sim_,
             std::make_unique<sim::ConstantLatency>(5 * kMillisecond)),
        rpc_(&net_) {
    client_ = net_.AddNode();
    server_ = net_.AddNode();
    server2_ = net_.AddNode();
    RegisterEcho(server_, "s1:");
    RegisterEcho(server2_, "s2:");
  }

  void RegisterEcho(sim::NodeId node, const std::string& tag) {
    rpc_.RegisterHandler(
        node, "echo",
        [tag](sim::NodeId, sim::Payload req, sim::RpcResponder respond) {
          auto r = std::move(req).Take<EchoReq>();
          respond(tag + r.text);
        });
  }

  std::unique_ptr<ResilientRpc> MakeClient(ResilienceOptions options = {}) {
    options.retry.jitter = 0.0;  // exact timing assertions below
    return std::make_unique<ResilientRpc>(&rpc_, client_, options, 1234);
  }

  sim::Simulator sim_;
  sim::Network net_;
  sim::Rpc rpc_;
  sim::NodeId client_ = 0;
  sim::NodeId server_ = 0;
  sim::NodeId server2_ = 0;
};

TEST_F(ResilientRpcTest, RetriesThroughTransientBlackoutAndSucceeds) {
  ResilienceOptions options;
  options.retry.initial_backoff = 50 * kMillisecond;
  auto client = MakeClient(options);

  // The link eats everything until it heals at 120ms.
  net_.SetLinkDropRate(client_, server_, 1.0);
  sim_.ScheduleAfter(120 * kMillisecond,
                     [&] { net_.SetLinkDropRate(client_, server_, 0.0); });

  CallOptions opts;
  opts.attempt_timeout = 100 * kMillisecond;
  opts.max_attempts = 3;
  std::string reply;
  int fires = 0;
  client->Call(server_, "echo", EchoReq{"hi"}, opts,
               [&](Result<sim::Payload> r) {
                 ++fires;
                 ASSERT_TRUE(r.ok());
                 reply = std::move(*r).Take<std::string>();
               });
  sim_.Run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(reply, "s1:hi");
  EXPECT_EQ(client->stats().attempts, 2u);
  EXPECT_EQ(client->stats().retries, 1u);
}

// Satellite: deadline propagation. When the remaining budget cannot cover
// the next backoff, the call fails fast with DeadlineExceeded instead of
// sleeping past its deadline.
TEST_F(ResilientRpcTest, DeadlineFailsFastInsteadOfSleepingPastBudget) {
  ResilienceOptions options;
  options.retry.initial_backoff = 100 * kMillisecond;
  auto client = MakeClient(options);

  net_.SetLinkDropRate(client_, server_, 1.0);  // never heals

  CallOptions opts;
  opts.attempt_timeout = 100 * kMillisecond;
  opts.deadline = sim_.Now() + 150 * kMillisecond;
  opts.max_attempts = 3;
  Status status = Status::OK();
  sim::Time completed_at = -1;
  client->Call(server_, "echo", EchoReq{"hi"}, opts,
               [&](Result<sim::Payload> r) {
                 status = r.status();
                 completed_at = sim_.Now();
               });
  sim_.Run();
  // First attempt times out at 100ms; 50ms of budget remain but the next
  // backoff is 100ms, so the call fails immediately — before the deadline.
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_EQ(completed_at, 100 * kMillisecond);
  EXPECT_EQ(client->stats().retries, 0u);
  EXPECT_EQ(client->stats().deadline_exceeded, 1u);
}

TEST_F(ResilientRpcTest, HedgeWinsAgainstSlowNodeAndLoserIsIgnored) {
  auto client = MakeClient();  // hedge default_delay = 50ms

  // Primary target processes everything 300ms late (gray failure: the
  // oracle still says it is reachable).
  net_.SetNodeProcessingDelay(server_, 300 * kMillisecond);

  CallOptions opts;
  opts.attempt_timeout = kSecond;
  opts.hedge = true;
  opts.hedge_to = server2_;
  std::string reply;
  int fires = 0;
  sim::Time completed_at = -1;
  client->Call(server_, "echo", EchoReq{"x"}, opts, [&](Result<sim::Payload> r) {
    ++fires;
    ASSERT_TRUE(r.ok());
    reply = std::move(*r).Take<std::string>();
    completed_at = sim_.Now();
  });
  sim_.Run();  // runs until the slow primary's reply has also landed
  EXPECT_EQ(fires, 1);  // duplicate reply dropped, callback fired once
  EXPECT_EQ(reply, "s2:x");
  EXPECT_EQ(client->stats().hedges_issued, 1u);
  EXPECT_EQ(client->stats().hedges_won, 1u);
  EXPECT_EQ(client->stats().hedges_lost, 0u);
  // Completed at hedge delay + round trip, far ahead of the slow primary.
  EXPECT_EQ(completed_at, 60 * kMillisecond);
}

TEST_F(ResilientRpcTest, FastPrimaryCancelsArmedHedge) {
  auto client = MakeClient();
  CallOptions opts;
  opts.attempt_timeout = kSecond;
  opts.hedge = true;
  opts.hedge_to = server2_;
  std::string reply;
  client->Call(server_, "echo", EchoReq{"y"}, opts, [&](Result<sim::Payload> r) {
    ASSERT_TRUE(r.ok());
    reply = std::move(*r).Take<std::string>();
  });
  sim_.Run();
  EXPECT_EQ(reply, "s1:y");  // primary answered at 10ms, before the 50ms hedge
  EXPECT_EQ(client->stats().hedges_issued, 0u);
  EXPECT_EQ(client->stats().hedges_won, 0u);
}

// Satellite S2: a hedge is an extra request, so an open breaker at the hedge
// destination suppresses it — hedges were sneaking past the breaker and
// adding load to a destination the client had already convicted.
TEST_F(ResilientRpcTest, HedgeSuppressedWhenBreakerOpenAtHedgeTarget) {
  ResilienceOptions options;
  options.breaker.failure_threshold = 1;
  options.breaker.open_duration = 10 * kSecond;
  auto client = MakeClient(options);

  client->breaker().OnFailure(server2_, 0);  // trip the hedge target's breaker
  net_.SetNodeProcessingDelay(server_, 300 * kMillisecond);  // slow primary

  CallOptions opts;
  opts.attempt_timeout = kSecond;
  opts.hedge = true;
  opts.hedge_to = server2_;
  std::string reply;
  client->Call(server_, "echo", EchoReq{"x"}, opts,
               [&](Result<sim::Payload> r) {
                 ASSERT_TRUE(r.ok());
                 reply = std::move(*r).Take<std::string>();
               });
  sim_.Run();
  // The hedge timer fired, saw the open breaker, and issued nothing; the
  // slow primary eventually answered.
  EXPECT_EQ(reply, "s1:x");
  EXPECT_EQ(client->stats().hedges_issued, 0u);
  EXPECT_EQ(client->stats().hedges_suppressed_breaker, 1u);
}

// Satellite S2: hedges debit the retry budget exactly like retries — under
// overload a hedge is a retry that didn't even wait for the failure. An
// exhausted budget suppresses the hedge instead of issuing it.
TEST_F(ResilientRpcTest, HedgeDebitsRetryBudgetAndExhaustionSuppresses) {
  ResilienceOptions options;
  options.retry_budget.enabled = true;
  options.retry_budget.initial_tokens = 1.0;
  options.retry_budget.max_tokens = 1.0;
  options.retry_budget.token_ratio = 0.0;  // no refill: isolate the debit
  auto client = MakeClient(options);

  net_.SetNodeProcessingDelay(server_, 300 * kMillisecond);  // hedges fire

  CallOptions opts;
  opts.attempt_timeout = kSecond;
  opts.hedge = true;
  opts.hedge_to = server2_;
  std::string first_reply;
  client->Call(server_, "echo", EchoReq{"a"}, opts,
               [&](Result<sim::Payload> r) {
                 ASSERT_TRUE(r.ok());
                 first_reply = std::move(*r).Take<std::string>();
               });
  sim_.Run();
  // The one token paid for the first hedge, which won.
  EXPECT_EQ(first_reply, "s2:a");
  EXPECT_EQ(client->stats().hedges_issued, 1u);
  EXPECT_EQ(client->budget_tokens(server2_), 0.0);

  std::string second_reply;
  client->Call(server_, "echo", EchoReq{"b"}, opts,
               [&](Result<sim::Payload> r) {
                 ASSERT_TRUE(r.ok());
                 second_reply = std::move(*r).Take<std::string>();
               });
  sim_.Run();
  // No tokens left: the hedge is suppressed and the slow primary answers.
  EXPECT_EQ(second_reply, "s1:b");
  EXPECT_EQ(client->stats().hedges_issued, 1u);
  EXPECT_EQ(client->stats().hedges_suppressed_budget, 1u);
}

// Tentpole: the per-destination retry budget fails calls fast once the
// token bucket drains, capping retry amplification no matter how large the
// per-call max_attempts is.
TEST_F(ResilientRpcTest, RetryBudgetExhaustionFailsFast) {
  ResilienceOptions options;
  options.retry.initial_backoff = 10 * kMillisecond;
  options.retry_budget.enabled = true;
  options.retry_budget.initial_tokens = 1.0;
  options.retry_budget.max_tokens = 1.0;
  options.retry_budget.token_ratio = 0.0;
  auto client = MakeClient(options);

  net_.SetLinkDropRate(client_, server_, 1.0);  // never heals

  CallOptions opts;
  opts.attempt_timeout = 20 * kMillisecond;
  opts.max_attempts = 5;
  Status status = Status::OK();
  client->Call(server_, "echo", EchoReq{"z"}, opts,
               [&](Result<sim::Payload> r) { status = r.status(); });
  sim_.Run();
  // Five attempts were allowed per call, but the budget paid for exactly one
  // retry: attempt 1 times out, the single token buys attempt 2, and the
  // third attempt is refused with the last real error.
  EXPECT_TRUE(status.IsTimedOut()) << status.ToString();
  EXPECT_EQ(client->stats().attempts, 2u);
  EXPECT_EQ(client->stats().retries, 1u);
  EXPECT_EQ(client->stats().budget_exhausted, 1u);
}

// Tentpole: AIMD adaptive concurrency — calls over the per-destination
// limit fail fast; successes grow the limit additively and overload signals
// shrink it multiplicatively.
TEST_F(ResilientRpcTest, AimdLimitRejectsOverConcurrencyAndAdapts) {
  ResilienceOptions options;
  options.aimd.enabled = true;
  options.aimd.initial_limit = 1.0;
  auto client = MakeClient(options);

  CallOptions opts;
  opts.attempt_timeout = kSecond;
  std::string reply;
  Status second = Status::OK();
  client->Call(server_, "echo", EchoReq{"p"}, opts,
               [&](Result<sim::Payload> r) {
                 ASSERT_TRUE(r.ok());
                 reply = std::move(*r).Take<std::string>();
               });
  // Issued while the first call is still in flight: over the limit of 1,
  // rejected instantly (max_attempts = 1, so no retry path).
  client->Call(server_, "echo", EchoReq{"q"}, opts,
               [&](Result<sim::Payload> r) { second = r.status(); });
  sim_.Run();
  EXPECT_EQ(reply, "s1:p");
  EXPECT_TRUE(second.IsUnavailable()) << second.ToString();
  EXPECT_EQ(client->stats().limit_rejects, 1u);
  // The success grew the limit additively: 1 + 1/1 = 2.
  EXPECT_DOUBLE_EQ(client->concurrency_limit(server_), 2.0);

  // An attempt timeout is an overload signal: multiplicative decrease.
  net_.SetLinkDropRate(client_, server_, 1.0);
  CallOptions short_opts;
  short_opts.attempt_timeout = 20 * kMillisecond;
  client->Call(server_, "echo", EchoReq{"r"}, short_opts,
               [&](Result<sim::Payload>) {});
  sim_.Run();
  EXPECT_DOUBLE_EQ(client->concurrency_limit(server_),
                   2.0 * options.aimd.backoff_ratio);
}

// Tentpole: a kResourceExhausted shed is retryable (the server explicitly
// asked the client to come back later) and its retry-after hint dominates
// the local backoff policy. The shed must NOT convict the peer: it is a
// live server managing load, not a dead one.
TEST_F(ResilientRpcTest, ResourceExhaustedRetriesAfterServerHint) {
  ResilienceOptions options;
  options.retry.initial_backoff = 1 * kMillisecond;
  auto client = MakeClient(options);

  int serve_count = 0;
  rpc_.RegisterHandler(
      server_, "shed.then.ok",
      [&](sim::NodeId, sim::Payload, sim::RpcResponder respond) {
        if (++serve_count == 1) {
          respond(ResourceExhaustedWithRetryAfter(200 * kMillisecond));
        } else {
          respond(std::string("served"));
        }
      });

  CallOptions opts;
  opts.attempt_timeout = kSecond;
  opts.max_attempts = 2;
  std::string reply;
  sim::Time completed_at = -1;
  client->Call(server_, "shed.then.ok", EchoReq{"w"}, opts,
               [&](Result<sim::Payload> r) {
                 ASSERT_TRUE(r.ok()) << r.status().ToString();
                 reply = std::move(*r).Take<std::string>();
                 completed_at = sim_.Now();
               });
  sim_.Run();
  EXPECT_EQ(reply, "served");
  EXPECT_EQ(client->stats().resource_exhausted_replies, 1u);
  EXPECT_EQ(client->stats().retries, 1u);
  // Shed reply lands at 10ms (5ms/hop); the retry waits the server's 200ms
  // hint (not the 1ms local backoff) and completes one round trip later.
  EXPECT_EQ(completed_at, 220 * kMillisecond);
  // The shed fed the breaker/detector as a SUCCESS: the peer stays usable.
  EXPECT_TRUE(client->PeerUsable(server_));
}

TEST_F(ResilientRpcTest, BreakerRejectsAfterRepeatedTimeouts) {
  ResilienceOptions options;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration = 10 * kSecond;
  options.detector.consecutive_failures_to_suspect = 100;  // isolate breaker
  auto client = MakeClient(options);

  net_.SetLinkDropRate(client_, server_, 1.0);

  CallOptions opts;
  opts.attempt_timeout = 50 * kMillisecond;
  int failures = 0;
  sim::Time third_issue = 0;
  sim::Time third_done = -1;
  auto issue = [&](auto&& self) -> void {
    client->Call(server_, "echo", EchoReq{"z"}, opts,
                 [&, self](Result<sim::Payload> r) {
                   EXPECT_FALSE(r.ok());
                   if (++failures < 3) {
                     third_issue = sim_.Now();
                     self(self);
                   } else {
                     third_done = sim_.Now();
                   }
                 });
  };
  issue(issue);
  sim_.Run();
  EXPECT_EQ(failures, 3);
  // Third call hit the open breaker: rejected instantly, no attempt issued.
  EXPECT_EQ(third_done, third_issue);
  EXPECT_EQ(client->stats().breaker_rejects, 1u);
  EXPECT_EQ(client->stats().attempts, 2u);
  EXPECT_FALSE(client->PeerUsable(server_));
}

TEST_F(ResilientRpcTest, HeartbeatsSuspectDeadPeerAndClearHealedPeer) {
  ResilienceOptions options;
  options.heartbeat_interval = 100 * kMillisecond;
  options.heartbeat_timeout = 80 * kMillisecond;
  auto a = MakeClient(options);
  // The peer answers pings through its own ResilientRpc instance.
  ResilientRpc b(&rpc_, server_, options, 4321);

  a->StartHeartbeats({server_});
  sim_.RunFor(3 * kSecond);
  EXPECT_TRUE(a->PeerUsable(server_));
  EXPECT_GT(a->stats().heartbeats_sent, 20u);

  // Kill the peer: probes time out, phi accrues, suspicion rises.
  net_.SetNodeUp(server_, false);
  sim_.RunFor(3 * kSecond);
  EXPECT_FALSE(a->PeerUsable(server_));
  EXPECT_GE(a->stats().suspect_transitions, 1u);
  // The oracle agreed the peer was down: no false positive.
  EXPECT_EQ(a->stats().false_positives, 0u);

  // Heal: probes succeed again and the suspicion clears.
  net_.SetNodeUp(server_, true);
  sim_.RunFor(3 * kSecond);
  EXPECT_TRUE(a->PeerUsable(server_));
}

TEST_F(ResilientRpcTest, FlakyLinkSuspicionCountsAsOracleDisagreement) {
  ResilienceOptions options;
  options.heartbeat_interval = 100 * kMillisecond;
  options.heartbeat_timeout = 80 * kMillisecond;
  auto a = MakeClient(options);
  ResilientRpc b(&rpc_, server_, options, 4321);

  a->StartHeartbeats({server_});
  sim_.RunFor(2 * kSecond);
  // A 100% flaky link is de facto dead, but CanCommunicate cannot see it —
  // the suspicion is "false" only by the blind oracle's account. This is
  // exactly the disagreement the false-positive counter measures.
  net_.SetLinkDropRate(client_, server_, 1.0);
  ASSERT_TRUE(net_.CanCommunicate(client_, server_));
  sim_.RunFor(3 * kSecond);
  EXPECT_FALSE(a->PeerUsable(server_));
  EXPECT_GE(a->stats().false_positives, 1u);
  EXPECT_EQ(
      sim_.metrics()
          .global()
          .CounterFor("resilience.detector.false_positives")
          .value(),
      a->stats().false_positives);
}

// Satellite: a reply landing after its caller timed out is now visible as
// rpc.late_replies instead of vanishing silently.
TEST_F(ResilientRpcTest, LateReplyAfterTimeoutIsCounted) {
  bool timed_out = false;
  rpc_.Call(client_, server_, "echo", EchoReq{"slow"}, 8 * kMillisecond,
            [&](Result<sim::Payload> r) { timed_out = r.status().IsTimedOut(); });
  sim_.Run();  // reply arrives at 10ms, 2ms after the timeout fired
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(
      sim_.metrics().global().CounterFor("rpc.late_replies").value(), 1u);
}

}  // namespace
}  // namespace evc::resilience
