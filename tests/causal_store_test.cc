#include "causal/causal_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace evc::causal {
namespace {

using sim::kMillisecond;
using sim::kSecond;

class CausalStoreTest : public ::testing::Test {
 protected:
  void Build(int dc_count = 3, uint64_t seed = 17) {
    sim_ = std::make_unique<sim::Simulator>(seed);
    auto latency = std::make_unique<sim::WanMatrixLatency>(
        sim::WanMatrixLatency::ThreeRegionBaseUs());
    wan_ = latency.get();
    net_ = std::make_unique<sim::Network>(sim_.get(), std::move(latency));
    rpc_ = std::make_unique<sim::Rpc>(net_.get());
    cluster_ = std::make_unique<CausalCluster>(rpc_.get(), CausalOptions{});
    dcs_ = cluster_->AddDatacenters(dc_count);
    for (int i = 0; i < dc_count; ++i) {
      wan_->AssignNode(dcs_[i], i % 3);
    }
  }

  CausalClient MakeClient(int dc) {
    const sim::NodeId node = net_->AddNode();
    wan_->AssignNode(node, dc % 3);
    return CausalClient(cluster_.get(), node, dcs_[dc]);
  }

  Result<WriteId> PutSync(CausalClient* client, const std::string& key,
                          const std::string& value) {
    std::optional<Result<WriteId>> out;
    client->Put(key, value, [&](Result<WriteId> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  Result<CausalRead> GetSync(CausalClient* client, const std::string& key) {
    std::optional<Result<CausalRead>> out;
    client->Get(key, [&](Result<CausalRead> r) { out = std::move(r); });
    sim_->RunFor(5 * kSecond);
    EVC_CHECK(out.has_value());
    return *out;
  }

  std::unique_ptr<sim::Simulator> sim_;
  sim::WanMatrixLatency* wan_ = nullptr;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<sim::Rpc> rpc_;
  std::unique_ptr<CausalCluster> cluster_;
  std::vector<sim::NodeId> dcs_;
};

TEST_F(CausalStoreTest, LocalPutGetRoundTrip) {
  Build();
  CausalClient client = MakeClient(0);
  auto put = PutSync(&client, "k", "v");
  ASSERT_TRUE(put.ok());
  auto get = GetSync(&client, "k");
  ASSERT_TRUE(get.ok());
  EXPECT_TRUE(get->found);
  EXPECT_EQ(get->value, "v");
  EXPECT_EQ(get->id, *put);
}

TEST_F(CausalStoreTest, ReplicatesToAllDatacenters) {
  Build();
  CausalClient client = MakeClient(0);
  ASSERT_TRUE(PutSync(&client, "k", "v").ok());
  sim_->RunFor(2 * kSecond);
  for (const sim::NodeId dc : dcs_) {
    const CausalRead read = cluster_->LocalRead(dc, "k");
    EXPECT_TRUE(read.found);
    EXPECT_EQ(read.value, "v");
  }
  EXPECT_TRUE(cluster_->Converged("k"));
}

TEST_F(CausalStoreTest, WriteVisibleLocallyBeforeRemotely) {
  Build();
  CausalClient client = MakeClient(0);
  std::optional<Result<WriteId>> put;
  client.Put("k", "v", [&](Result<WriteId> r) { put = std::move(r); });
  // Local DC round trip is sub-millisecond; the WAN hop is ~40-90 ms.
  sim_->RunFor(5 * kMillisecond);
  ASSERT_TRUE(put.has_value() && put->ok());  // acked locally already
  EXPECT_TRUE(cluster_->LocalRead(dcs_[0], "k").found);
  EXPECT_FALSE(cluster_->LocalRead(dcs_[1], "k").found);  // still in flight
  sim_->RunFor(kSecond);
  EXPECT_TRUE(cluster_->LocalRead(dcs_[1], "k").found);
}

TEST_F(CausalStoreTest, DependentWriteWaitsForDependency) {
  // The photo/comment scenario: dc0's client uploads a photo, reads it,
  // comments. If the comment's replication overtakes the photo's at dc1,
  // dc1 must buffer the comment until the photo lands.
  Build();
  CausalClient alice = MakeClient(0);
  ASSERT_TRUE(PutSync(&alice, "photo", "cat.jpg").ok());
  ASSERT_TRUE(GetSync(&alice, "photo").ok());
  ASSERT_TRUE(PutSync(&alice, "comment", "cute!").ok());
  sim_->RunFor(2 * kSecond);
  // After everything drains, both are visible everywhere...
  for (const sim::NodeId dc : dcs_) {
    EXPECT_TRUE(cluster_->LocalRead(dc, "photo").found);
    EXPECT_TRUE(cluster_->LocalRead(dc, "comment").found);
  }
}

TEST_F(CausalStoreTest, CommentNeverVisibleBeforePhotoAnywhere) {
  // Drive the same scenario but sample remote DCs at fine time steps: at no
  // instant may a DC show the comment without the photo.
  Build();
  CausalClient alice = MakeClient(0);
  ASSERT_TRUE(PutSync(&alice, "photo", "cat.jpg").ok());
  auto photo = GetSync(&alice, "photo");
  ASSERT_TRUE(photo.ok());
  std::optional<Result<WriteId>> comment;
  alice.Put("comment", "cute!",
            [&](Result<WriteId> r) { comment = std::move(r); });
  for (int step = 0; step < 2000; ++step) {
    sim_->RunFor(kMillisecond);
    for (const sim::NodeId dc : dcs_) {
      if (cluster_->LocalRead(dc, "comment").found) {
        EXPECT_TRUE(cluster_->LocalRead(dc, "photo").found)
            << "causality violated at dc " << dc << " t=" << sim_->Now();
      }
    }
  }
  ASSERT_TRUE(comment.has_value() && comment->ok());
}

TEST_F(CausalStoreTest, DeferredWritesAreCountedAndDrain) {
  // Force out-of-order arrival: dependency chains across datacenters with
  // asymmetric WAN latencies produce deferrals naturally. Create a chain:
  // dc0 writes a, dc2's client reads a (via dc2) and writes b.
  Build();
  CausalClient alice = MakeClient(0);
  ASSERT_TRUE(PutSync(&alice, "a", "1").ok());
  sim_->RunFor(2 * kSecond);  // a reaches everyone

  CausalClient carol = MakeClient(2);
  ASSERT_TRUE(GetSync(&carol, "a").ok());
  // Overwrite a at dc0 concurrently with carol's dependent write at dc2:
  // dc1 may receive carol's b (dep: a@v1) before or after. Either way no
  // causality violation and everything drains.
  ASSERT_TRUE(PutSync(&carol, "b", "2").ok());
  sim_->RunFor(3 * kSecond);
  for (const sim::NodeId dc : dcs_) {
    EXPECT_TRUE(cluster_->LocalRead(dc, "b").found);
    EXPECT_EQ(cluster_->PendingAt(dc), 0u);
  }
}

TEST_F(CausalStoreTest, ConcurrentWritesConvergeLww) {
  Build();
  CausalClient a = MakeClient(0);
  CausalClient b = MakeClient(1);
  std::optional<Result<WriteId>> ra, rb;
  a.Put("k", "from-a", [&](Result<WriteId> r) { ra = std::move(r); });
  b.Put("k", "from-b", [&](Result<WriteId> r) { rb = std::move(r); });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(ra.has_value() && ra->ok());
  ASSERT_TRUE(rb.has_value() && rb->ok());
  EXPECT_TRUE(cluster_->Converged("k"));
  // All DCs resolved to the same winner (the max (lamport, dc) id).
  const std::string winner = cluster_->LocalRead(dcs_[0], "k").value;
  EXPECT_TRUE(winner == "from-a" || winner == "from-b");
  for (const sim::NodeId dc : dcs_) {
    EXPECT_EQ(cluster_->LocalRead(dc, "k").value, winner);
  }
}

TEST_F(CausalStoreTest, NearestDependencyCollapseAfterWrite) {
  Build();
  CausalClient client = MakeClient(0);
  ASSERT_TRUE(PutSync(&client, "x", "1").ok());
  ASSERT_TRUE(GetSync(&client, "x").ok());
  ASSERT_TRUE(PutSync(&client, "y", "2").ok());
  // After the write to y, the context is just {y}: x is transitively
  // covered.
  EXPECT_EQ(client.context().size(), 1u);
  EXPECT_EQ(client.context().begin()->first, "y");
}

TEST_F(CausalStoreTest, ReadsAreAlwaysLocalAndFast) {
  Build();
  CausalClient client = MakeClient(1);
  const sim::Time start = sim_->Now();
  sim::Time completed_at = -1;
  std::optional<Result<CausalRead>> get;
  client.Get("anything", [&](Result<CausalRead> r) {
    completed_at = sim_->Now();
    get = std::move(r);
  });
  sim_->RunFor(5 * kSecond);
  ASSERT_TRUE(get.has_value() && get->ok());
  EXPECT_FALSE((*get)->found);
  // One local round trip, far below WAN latency.
  EXPECT_LT(completed_at - start, 10 * kMillisecond);
}

TEST_F(CausalStoreTest, DependencyChainAcrossThreeDatacenters) {
  Build();
  CausalClient a = MakeClient(0);
  CausalClient b = MakeClient(1);
  CausalClient c = MakeClient(2);
  ASSERT_TRUE(PutSync(&a, "k1", "v1").ok());
  sim_->RunFor(2 * kSecond);
  ASSERT_TRUE(GetSync(&b, "k1").ok());
  ASSERT_TRUE(PutSync(&b, "k2", "v2").ok());
  sim_->RunFor(2 * kSecond);
  ASSERT_TRUE(GetSync(&c, "k2").ok());
  ASSERT_TRUE(PutSync(&c, "k3", "v3").ok());
  sim_->RunFor(3 * kSecond);
  // Everywhere, k3 implies k2 implies k1.
  for (const sim::NodeId dc : dcs_) {
    ASSERT_TRUE(cluster_->LocalRead(dc, "k3").found);
    EXPECT_TRUE(cluster_->LocalRead(dc, "k2").found);
    EXPECT_TRUE(cluster_->LocalRead(dc, "k1").found);
  }
}

}  // namespace
}  // namespace evc::causal
